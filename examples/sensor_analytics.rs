//! A realistic analytics scenario beyond TPC-H: IoT sensor telemetry.
//!
//! Shows the storage features of §4.3 working together on a
//! non-benchmark workload: enumeration-typed device columns, a summary
//! index over the (clustered) timestamp for range pruning, delta-based
//! updates, and reorganization — plus a vectorized dashboard query on
//! top.
//!
//! ```sh
//! cargo run --release --example sensor_analytics
//! ```

use monetdb_x100::engine::expr::*;
use monetdb_x100::engine::ops::OrdExp;
use monetdb_x100::engine::plan::Plan;
use monetdb_x100::engine::session::{execute, Database, ExecOptions};
use monetdb_x100::engine::AggExpr;
use monetdb_x100::storage::{ColumnData, TableBuilder};
use monetdb_x100::vector::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 500_000usize;
    let devices = ["furnace-a", "furnace-b", "press-1", "press-2", "mixer"];

    // Readings arrive in timestamp order → the summary index prunes.
    let ts: Vec<i32> = (0..n as i32).collect();
    let device: Vec<String> = (0..n)
        .map(|_| devices[rng.gen_range(0..devices.len())].to_owned())
        .collect();
    let temperature: Vec<f64> = (0..n).map(|_| 20.0 + rng.gen_range(0.0..80.0)).collect();

    let mut table = TableBuilder::new("readings")
        .column("ts", ColumnData::I32(ts))
        .with_summary()
        .auto_enum_str("device", device)
        .column("temperature", ColumnData::F64(temperature))
        .build();

    // Late-arriving corrections: updates go to the delta structures;
    // the immutable fragments stay untouched (paper Fig. 8).
    table.delete(100);
    table.insert(&[
        Value::I32(n as i32),
        Value::Str("mixer".into()),
        Value::F64(99.5),
    ]);
    println!(
        "after updates: {} live rows, delta fraction {:.6}",
        table.live_rows(),
        table.delta_fraction()
    );
    // Periodic maintenance merges deltas back into fragments.
    table.reorganize();
    println!(
        "after reorganize: {} fragment rows, deltas empty\n",
        table.fragment_rows()
    );

    let mut db = Database::new();
    db.register(table);

    // Dashboard query: per-device temperature profile over one window,
    // hottest devices first.
    let (lo, hi) = (200_000, 300_000);
    let plan = Plan::scan("readings", &["ts", "device", "temperature"])
        .pruned("ts", Some(lo as i64), Some(hi as i64 - 1))
        .select(and(ge(col("ts"), lit_i32(lo)), lt(col("ts"), lit_i32(hi))))
        .aggr(
            vec![("device", col("device"))],
            vec![
                AggExpr::count("readings"),
                AggExpr::avg("avg_temp", col("temperature")),
                AggExpr::max("max_temp", col("temperature")),
            ],
        )
        .order(vec![OrdExp::desc("max_temp")]);

    let (result, prof) =
        execute(&db, &plan, &ExecOptions::default().profiled()).expect("dashboard");
    println!("{}", result.to_table_string());

    let scanned = prof
        .operators()
        .find(|(k, _)| *k == "Scan")
        .map(|(_, s)| s.tuples)
        .expect("scan trace");
    println!("summary index pruned the scan to {scanned} of 500000 rows");
}
