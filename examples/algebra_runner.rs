//! Run textual X100 algebra (the paper's Figs. 6/9 syntax) against a
//! generated TPC-H database — the "X100 Parser" box of Figure 5.
//!
//! ```sh
//! cargo run --release --example algebra_runner                 # built-in demo plan
//! cargo run --release --example algebra_runner -- plan.x100   # your own plan file
//! ```

use monetdb_x100::engine::parser::parse_plan;
use monetdb_x100::engine::session::{execute, ExecOptions};
use monetdb_x100::tpch::gen::{generate, GenConfig};

/// The paper's Figure 6 simplified Q1, almost verbatim.
const DEMO: &str = "
Aggr(
  Project(
    Select(
      Scan(lineitem, [l_shipdate, l_returnflag, l_discount, l_extendedprice]),
      <(l_shipdate, date('1998-09-03'))),
    [ l_returnflag = l_returnflag,
      discountprice = *( -( flt('1.0'), l_discount), l_extendedprice) ]),
  [ l_returnflag ],
  [ sum_disc_price = sum(discountprice) ])";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => DEMO.to_owned(),
    };

    println!("parsing X100 algebra:\n{text}\n");
    let plan = match parse_plan(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse failed: {e}");
            std::process::exit(1);
        }
    };

    println!("generating TPC-H (SF=0.01)…");
    let data = generate(&GenConfig::new(0.01));
    let db = monetdb_x100::tpch::build_x100_db(&data);

    match execute(&db, &plan, &ExecOptions::default().profiled()) {
        Ok((result, prof)) => {
            println!("\n{}", result.to_table_string());
            println!("--- trace ---\n{}", prof.render_table5());
        }
        Err(e) => {
            eprintln!("plan failed to bind/run: {e}");
            std::process::exit(1);
        }
    }
}
