//! Quickstart: build a table, run a vectorized query, read the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use monetdb_x100::engine::expr::*;
use monetdb_x100::engine::plan::Plan;
use monetdb_x100::engine::session::{execute, Database, ExecOptions};
use monetdb_x100::engine::AggExpr;
use monetdb_x100::storage::{ColumnData, TableBuilder};

fn main() {
    // 1. Build a vertically fragmented table. Low-cardinality columns
    //    can be stored as enumeration types (dictionary codes).
    let n = 10_000i64;
    let table = TableBuilder::new("trades")
        .column("id", ColumnData::I64((0..n).collect()))
        .auto_enum_str(
            "symbol",
            (0..n)
                .map(|i| ["ABC", "MEGA", "TINY"][(i % 3) as usize].to_owned())
                .collect(),
        )
        .column(
            "price",
            ColumnData::F64((0..n).map(|i| 50.0 + (i % 100) as f64).collect()),
        )
        .column(
            "qty",
            ColumnData::F64((0..n).map(|i| (1 + i % 9) as f64).collect()),
        )
        .build();

    let mut db = Database::new();
    db.register(table);

    // 2. Compose an X100 algebra plan:
    //    SELECT symbol, SUM(price*qty) AS volume, COUNT(*) AS trades
    //    FROM trades WHERE price >= 100 GROUP BY symbol
    let plan = Plan::scan("trades", &["symbol", "price", "qty"])
        .select(ge(col("price"), lit_f64(100.0)))
        .aggr(
            vec![("symbol", col("symbol"))],
            vec![
                AggExpr::sum("volume", mul(col("price"), col("qty"))),
                AggExpr::count("trades"),
            ],
        );

    // 3. Execute: the pipeline runs vector-at-a-time (1024 values per
    //    vector by default), with zero-copy selection vectors.
    let (result, _) = execute(&db, &plan, &ExecOptions::default()).expect("query runs");
    println!("{}", result.to_table_string());

    // 4. Rerun with tracing to see the vectorized primitives at work.
    let (_, prof) = execute(&db, &plan, &ExecOptions::default().profiled()).expect("query runs");
    println!("--- primitive trace ---");
    println!("{}", prof.render_table5());
}
