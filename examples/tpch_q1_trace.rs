//! TPC-H Query 1 with the paper's Table 5-style primitive trace, plus
//! the same query on the three baseline engines for comparison.
//!
//! ```sh
//! cargo run --release --example tpch_q1_trace
//! ```

use monetdb_x100::engine::session::{execute, ExecOptions};
use monetdb_x100::tpch::gen::{generate_lineitem_q1, GenConfig};
use monetdb_x100::tpch::queries::q01;
use std::time::Instant;

fn main() {
    let sf = 0.05;
    println!("generating lineitem at SF={sf}…");
    let li = generate_lineitem_q1(&GenConfig::new(sf));
    let hi = q01::q1_hi_date();

    // X100: run once cold, then traced.
    let db = monetdb_x100::tpch::build_x100_q1_db(&li);
    let plan = q01::x100_plan();
    let t0 = Instant::now();
    let (res, _) = execute(&db, &plan, &ExecOptions::default()).expect("q1");
    let x100_t = t0.elapsed();
    println!("\nX100 answer ({} groups):", res.num_rows());
    println!("{}", res.to_table_string());

    let (_, prof) = execute(&db, &plan, &ExecOptions::default().profiled()).expect("q1 traced");
    println!("--- X100 primitive trace (paper Table 5) ---");
    println!("{}", prof.render_table5());

    // MIL with its statement trace (paper Table 3).
    let bats = monetdb_x100::tpch::mil_bats(&li);
    let t0 = Instant::now();
    let (_, mil_session) = q01::mil_q1(&bats, hi);
    let mil_t = t0.elapsed();
    println!("--- MonetDB/MIL statement trace (paper Table 3) ---");
    println!("{}", mil_session.render_table3());

    // Volcano with its routine counters (paper Table 2).
    let vt = monetdb_x100::tpch::build_volcano_lineitem(&li);
    let t0 = Instant::now();
    let (_, counters) = q01::volcano_q1(&vt, hi);
    let volcano_t = t0.elapsed();
    println!("--- tuple-at-a-time routine calls (paper Table 2) ---");
    for (name, calls) in counters.rows() {
        println!("{calls:>12}  {name}");
    }
    println!(
        "\nwork fraction of calls: {:.1}%  (the paper's MySQL: <10% of time)",
        100.0 * counters.work_fraction()
    );

    println!("\ntimes: volcano {volcano_t:?}, MIL {mil_t:?}, X100 {x100_t:?}");
}
