//! Vector-size tuning on your own workload (the paper's Figure 10
//! experiment, as an API walkthrough).
//!
//! The vector size trades interpretation overhead (too small) against
//! cache residency (too large). This example sweeps it for a custom
//! aggregation query and reports the sweet spot.
//!
//! ```sh
//! cargo run --release --example vector_tuning
//! ```

use monetdb_x100::engine::expr::*;
use monetdb_x100::engine::plan::Plan;
use monetdb_x100::engine::session::{execute, Database, ExecOptions};
use monetdb_x100::engine::AggExpr;
use monetdb_x100::storage::{ColumnData, TableBuilder};
use std::time::Instant;

fn main() {
    let n = 2_000_000i64;
    let mut db = Database::new();
    db.register(
        TableBuilder::new("events")
            .column(
                "kind",
                ColumnData::U8((0..n).map(|i| (i % 17) as u8).collect()),
            )
            .column(
                "a",
                ColumnData::F64((0..n).map(|i| (i % 1000) as f64).collect()),
            )
            .column(
                "b",
                ColumnData::F64((0..n).map(|i| ((i * 7) % 1000) as f64 / 10.0).collect()),
            )
            .build(),
    );
    let plan = Plan::scan("events", &["kind", "a", "b"])
        .select(lt(col("a"), lit_f64(900.0)))
        .project(vec![
            ("kind", col("kind")),
            ("score", mul(sub(lit_f64(1.0), col("b")), col("a"))),
        ])
        .aggr(
            vec![("kind", col("kind"))],
            vec![AggExpr::sum("total", col("score")), AggExpr::count("n")],
        );

    println!("{:>12} {:>10}", "vector size", "time (ms)");
    let mut best = (0usize, f64::MAX);
    for vs in [1usize, 16, 256, 1024, 4096, 65536, 1 << 20] {
        let opts = ExecOptions::with_vector_size(vs);
        // Warm-up, then best-of-3.
        let _ = execute(&db, &plan, &opts).expect("run");
        let mut t_best = f64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (res, _) = execute(&db, &plan, &opts).expect("run");
            assert_eq!(res.num_rows(), 17);
            t_best = t_best.min(t0.elapsed().as_secs_f64());
        }
        println!("{:>12} {:>10.2}", vs, t_best * 1e3);
        if t_best < best.1 {
            best = (vs, t_best);
        }
    }
    println!(
        "\nbest vector size for this workload: {} ({:.2} ms)",
        best.0,
        best.1 * 1e3
    );
    println!("(the paper's default of 1024 should be at or near the optimum)");
}
