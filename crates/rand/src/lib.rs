//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen_range` / `gen_bool` / `gen_ratio` / `gen`.
//!
//! The generator is SplitMix64 — statistically solid for data
//! generation and tests, deterministic for a given seed. It does *not*
//! reproduce the upstream `StdRng` stream; everything in this workspace
//! derives expected values from the generated data rather than from
//! hard-coded upstream streams, so only self-consistency matters.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampleable value types (subset of `rand::distributions::Standard`
/// coverage).
pub trait Standard: Sized {
    /// Draw a uniform value over the type's full domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The user-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias < 2^-64 per draw,
    // irrelevant for data generation and tests.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_ranges {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_ranges!(f32 => 24, f64 => 53);

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = r.gen_range(1usize..=7);
            assert!((1..=7).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_ratio(0, 5)));
        assert!((0..100).all(|_| r.gen_ratio(5, 5)));
    }
}
