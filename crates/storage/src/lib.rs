//! # x100-storage — vertically fragmented columnar storage
//!
//! The storage layer of the MonetDB/X100 reproduction (paper §4.3):
//!
//! * [`ColumnData`] — immutable vertical fragments (`BAT[void,T]`:
//!   virtual dense `#rowId` head, value tail).
//! * [`Table`] / [`TableBuilder`] — schemas over fragments, with
//!   delta-based updates: a [`DeleteList`] plus uncompressed
//!   [`InsertDelta`] columns, merged back by [`Table::reorganize`].
//! * [`EnumDict`] & the `encode_*` helpers — enumeration types: one- or
//!   two-byte codes referencing a mapping table, decompressed on use via
//!   an automatically inserted `Fetch1Join` (done by the engine crate).
//! * [`SummaryIndex`] — coarse running-max / reverse-running-min
//!   indices for `#rowId` range derivation on clustered columns.
//! * [`ColumnBM`] — a simulation of the chunked column buffer manager,
//!   accounting chunk loads, cache hits and bandwidth amplification.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod column;
pub mod columnbm;
pub mod compress;
pub mod delta;
pub mod durable;
pub mod enumcol;
pub mod morsel;
pub mod summary;
pub mod table;

pub use column::ColumnData;
pub use columnbm::{
    retry_with_backoff, BmStats, ChunkReadError, ColumnBM, FaultPlan, FaultSite, FaultState,
    PinnedFault, StorageFaultError, TornWrite, DEFAULT_CHUNK_BYTES,
};
pub use compress::{
    choose_and_compress, compress_column_as, fold_checksum, ChunkFormat, ChunkHeader,
    CompressedColumn, DecodeCursor, DecodeStats, PushOp, Pushdown, CHUNK_ROWS, HEADER_BYTES,
};
pub use delta::{DeleteList, InsertDelta};
pub use durable::{DurableError, DurableOptions, DurableSource};
pub use enumcol::{encode_f64, encode_i64, encode_str, Encoded, EnumDict, MAX_ENUM_CARD};
pub use morsel::{plan_morsels, Morsel};
pub use summary::{SummaryIndex, DEFAULT_GRANULARITY};
pub use table::{ColumnStats, Field, StoredColumn, Table, TableBuilder};
