//! ColumnBM: the chunked column buffer manager (paper §4, "Disk").
//!
//! The paper's ColumnBM I/O subsystem partitions each vertical fragment
//! into large (>1 MB) chunks and streams them sequentially, because
//! I/O bandwidth — not latency — is the scarce resource for scans.
//! The real ColumnBM was "still under development" in the paper (all
//! experiments ran on in-memory BATs); we reproduce it as an in-memory
//! *simulation* that models exactly what the paper describes:
//!
//! * fixed-size chunks per column,
//! * an LRU chunk cache of bounded capacity,
//! * per-scan accounting of logical bytes requested vs chunks "read"
//!   (cache misses), so bandwidth amplification is observable.
//!
//! This preserves the paper-relevant behaviour — sequential scans touch
//! each chunk once; vertical fragmentation means unread columns cost no
//! I/O — without requiring an actual disk.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] describes chunk reads that should fail: a uniform
//! probability per read attempt, plus pinned `(col, chunk)` slots that
//! fail a fixed number of times before succeeding (deterministic
//! "transient error" scenarios). The chunk reader retries a failed read
//! up to [`FaultPlan::max_retries`] times with exponential backoff and
//! surfaces a typed [`ChunkReadError`] only once retries are exhausted.
//! Mutable injection state ([`FaultState`]: RNG position, remaining
//! pinned failures, retry counters) is per *query*, not per buffer
//! manager, so concurrent queries don't consume each other's faults.
//! The types always compile; the injection behaviour itself is gated
//! behind the `fault-inject` cargo feature so production builds carry
//! zero probability checks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default chunk size: 1 MiB, the paper's ">1MB chunks".
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Identifies one chunk of one column: `(column id, chunk index)`.
pub type ChunkId = (u32, u32);

/// Counters exposed by the buffer manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BmStats {
    /// Logical bytes requested by scans.
    pub bytes_requested: u64,
    /// Chunk-granular bytes actually "read" (cache misses × chunk size).
    pub bytes_read: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (chunk loads).
    pub misses: u64,
    /// Chunks evicted.
    pub evictions: u64,
}

/// Which storage access path a fault targets.
///
/// Chunk reads were the original injection site; delta-insert reads and
/// enum dictionary lookups fail independently (different code paths,
/// different recovery characteristics), each with its own rate knob on
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Chunked column reads through the buffer manager.
    ChunkRead,
    /// Insert-delta reads appended after the fragments during a scan.
    DeltaRead,
    /// Enum dictionary value lookups (code → value gather).
    DictLookup,
    /// Compressed-chunk reads/decodes (PFOR / PDICT / PFOR-DELTA
    /// expansion inside the scan).
    CompressedRead,
    /// Compressed-chunk writes during checkpoint / reorganize.
    CheckpointWrite,
    /// Spill-run writes: a memory-pressured operator flushing a sorted
    /// run or a partitioned aggregate table to its temp file.
    SpillWrite,
    /// Spill-run reads: re-ingesting a run during the external merge.
    SpillRead,
    /// Durable-checkpoint manifest writes (temp write, fsync, or the
    /// committing rename).
    ManifestWrite,
    /// Durable-checkpoint manifest reads during `Table::open` recovery.
    ManifestRead,
    /// Durable chunk-file reads: loading a replica copy at open or
    /// during a mid-query heal.
    DurableChunkRead,
    /// Durable chunk-file writes: replica writes during a disk-backed
    /// checkpoint, or rewriting a bad copy while healing.
    DurableChunkWrite,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::ChunkRead => write!(f, "chunk read"),
            FaultSite::DeltaRead => write!(f, "delta read"),
            FaultSite::DictLookup => write!(f, "dictionary lookup"),
            FaultSite::CompressedRead => write!(f, "compressed chunk read"),
            FaultSite::CheckpointWrite => write!(f, "checkpoint write"),
            FaultSite::SpillWrite => write!(f, "spill run write"),
            FaultSite::SpillRead => write!(f, "spill run read"),
            FaultSite::ManifestWrite => write!(f, "manifest write"),
            FaultSite::ManifestRead => write!(f, "manifest read"),
            FaultSite::DurableChunkRead => write!(f, "durable chunk read"),
            FaultSite::DurableChunkWrite => write!(f, "durable chunk write"),
        }
    }
}

/// A non-chunk storage access that kept failing after the full retry
/// budget (see [`FaultState::check_site`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFaultError {
    /// The access path that failed.
    pub site: FaultSite,
    /// Column the access touched.
    pub col: u32,
    /// Attempts made (1 initial + retries).
    pub attempts: u32,
}

impl std::fmt::Display for StorageFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed: column {} after {} attempts",
            self.site, self.col, self.attempts
        )
    }
}

impl std::error::Error for StorageFaultError {}

/// Run `op` with bounded exponential backoff: up to `max_retries`
/// retries after the first failed attempt, sleeping
/// `backoff_base_us << min(attempt, 5)` microseconds between attempts
/// (zero base disables sleeping, for tests). `op` receives the
/// zero-based attempt number. On success returns the value together
/// with the number of retries it took; once the budget is exhausted,
/// the last error together with the total attempts made
/// (`max_retries + 1`).
///
/// This is the single retry loop behind every [`FaultSite`]:
/// probability draws ([`FaultState::check_site`]), pinned chunk faults
/// ([`ColumnBM::try_access`]), spill-run I/O, and the durable
/// checkpoint/recovery paths all feed it their fallible step.
/// (Re-exported by the engine as `govern::retry_with_backoff`.)
pub fn retry_with_backoff<T, E>(
    max_retries: u32,
    backoff_base_us: u64,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<(T, u32), (E, u32)> {
    let mut attempt: u32 = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok((v, attempt)),
            Err(e) => {
                if attempt >= max_retries {
                    return Err((e, attempt + 1));
                }
                if backoff_base_us > 0 {
                    let shift = attempt.min(5);
                    let us = backoff_base_us << shift;
                    std::thread::sleep(std::time::Duration::from_micros(us));
                }
                attempt += 1;
            }
        }
    }
}

/// One torn write: after a checkpoint compresses column `col`, byte
/// `byte` of chunk `chunk`'s payload is silently flipped. Unlike an
/// erroring read, the write *appears* to succeed — the corruption is
/// only caught by the per-chunk checksum on the next compressed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// Column id the torn write hits.
    pub col: u32,
    /// Chunk index within the column's compressed rewrite.
    pub chunk: u32,
    /// Payload byte offset to flip.
    pub byte: u32,
}

/// One pinned fault: reads of chunk `(col, chunk)` fail their next
/// `failures` attempts, then succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinnedFault {
    /// Column id the fault is pinned to.
    pub col: u32,
    /// Chunk index within the column.
    pub chunk: u32,
    /// How many read attempts fail before the chunk reads cleanly.
    pub failures: u32,
}

/// Declarative description of chunk-read faults to inject.
///
/// Carried by the engine's `ExecOptions`; consulted by
/// [`ColumnBM::try_access`] on every chunk touch. With the
/// `fault-inject` feature disabled the plan is inert.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any single chunk-read attempt fails.
    pub fault_rate: f64,
    /// Probability in `[0, 1]` that one delta-read attempt fails.
    pub delta_fault_rate: f64,
    /// Probability in `[0, 1]` that one dictionary-lookup attempt fails.
    pub dict_fault_rate: f64,
    /// Probability in `[0, 1]` that one compressed-chunk read/decode
    /// attempt fails.
    pub compressed_fault_rate: f64,
    /// Probability in `[0, 1]` that one compressed-chunk write during
    /// checkpoint/reorganize fails.
    pub checkpoint_fault_rate: f64,
    /// Probability in `[0, 1]` that one spill-run write attempt fails.
    pub spill_write_fault_rate: f64,
    /// Probability in `[0, 1]` that one spill-run read attempt fails.
    pub spill_read_fault_rate: f64,
    /// Probability in `[0, 1]` that one durable-manifest write step
    /// (temp write / fsync / committing rename) fails.
    pub manifest_write_fault_rate: f64,
    /// Probability in `[0, 1]` that one durable-manifest read fails.
    pub manifest_read_fault_rate: f64,
    /// Probability in `[0, 1]` that one durable chunk-file read fails.
    pub durable_read_fault_rate: f64,
    /// Probability in `[0, 1]` that one durable chunk-file write step
    /// fails.
    pub durable_write_fault_rate: f64,
    /// Seed for the deterministic xorshift RNG driving the rates.
    pub seed: u64,
    /// Chunks that fail a fixed number of times before succeeding.
    pub pinned: Vec<PinnedFault>,
    /// Checkpoint writes that silently corrupt one payload byte (each
    /// fires at most once; caught by checksum, not by the write path).
    pub torn_writes: Vec<TornWrite>,
    /// Hard kill-points: `(site, nth)` — the `nth` (0-based) check of
    /// `site` fails without any retry, modelling the process dying at
    /// exactly that write step. The crash-consistency suite iterates
    /// every durable write step through this.
    pub site_pins: Vec<(FaultSite, u32)>,
    /// Retry budget per chunk read before giving up with an error.
    pub max_retries: u32,
    /// Base backoff sleep in microseconds (doubles per attempt, capped
    /// at 32×). Zero disables sleeping, for tests.
    pub backoff_base_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            fault_rate: 0.0,
            delta_fault_rate: 0.0,
            dict_fault_rate: 0.0,
            compressed_fault_rate: 0.0,
            checkpoint_fault_rate: 0.0,
            spill_write_fault_rate: 0.0,
            spill_read_fault_rate: 0.0,
            manifest_write_fault_rate: 0.0,
            manifest_read_fault_rate: 0.0,
            durable_read_fault_rate: 0.0,
            durable_write_fault_rate: 0.0,
            seed: 0x9E37_79B9_7F4A_7C15,
            pinned: Vec::new(),
            torn_writes: Vec::new(),
            site_pins: Vec::new(),
            max_retries: 6,
            backoff_base_us: 20,
        }
    }
}

impl FaultPlan {
    /// A plan failing a uniform fraction of chunk-read attempts.
    pub fn with_rate(fault_rate: f64, seed: u64) -> Self {
        FaultPlan {
            fault_rate,
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the probability that a delta-insert read attempt fails.
    pub fn delta_rate(mut self, rate: f64) -> Self {
        self.delta_fault_rate = rate;
        self
    }

    /// Set the probability that a dictionary-lookup attempt fails.
    pub fn dict_rate(mut self, rate: f64) -> Self {
        self.dict_fault_rate = rate;
        self
    }

    /// Set the probability that a compressed-chunk read/decode fails.
    pub fn compressed_rate(mut self, rate: f64) -> Self {
        self.compressed_fault_rate = rate;
        self
    }

    /// Set the probability that a checkpoint/reorganize chunk write fails.
    pub fn checkpoint_rate(mut self, rate: f64) -> Self {
        self.checkpoint_fault_rate = rate;
        self
    }

    /// Set the probability that a spill-run write attempt fails.
    pub fn spill_write_rate(mut self, rate: f64) -> Self {
        self.spill_write_fault_rate = rate;
        self
    }

    /// Set the probability that a spill-run read attempt fails.
    pub fn spill_read_rate(mut self, rate: f64) -> Self {
        self.spill_read_fault_rate = rate;
        self
    }

    /// Set the probability that a durable-manifest write step fails.
    pub fn manifest_write_rate(mut self, rate: f64) -> Self {
        self.manifest_write_fault_rate = rate;
        self
    }

    /// Set the probability that a durable-manifest read fails.
    pub fn manifest_read_rate(mut self, rate: f64) -> Self {
        self.manifest_read_fault_rate = rate;
        self
    }

    /// Set the probability that a durable chunk-file read fails.
    pub fn durable_read_rate(mut self, rate: f64) -> Self {
        self.durable_read_fault_rate = rate;
        self
    }

    /// Set the probability that a durable chunk-file write step fails.
    pub fn durable_write_rate(mut self, rate: f64) -> Self {
        self.durable_write_fault_rate = rate;
        self
    }

    /// Set every durable-path rate (manifest read/write, chunk-file
    /// read/write) at once — the CI kill-and-restart smoke runs all
    /// four sites at the same rate.
    pub fn durable_rates(self, rate: f64) -> Self {
        self.manifest_write_rate(rate)
            .manifest_read_rate(rate)
            .durable_read_rate(rate)
            .durable_write_rate(rate)
    }

    /// Add a pinned fault: `(col, chunk)` fails its next `failures`
    /// read attempts, then succeeds.
    pub fn pin(mut self, col: u32, chunk: u32, failures: u32) -> Self {
        self.pinned.push(PinnedFault {
            col,
            chunk,
            failures,
        });
        self
    }

    /// Add a torn write: the next checkpoint of column `col` silently
    /// flips payload byte `byte` of compressed chunk `chunk`.
    pub fn tear(mut self, col: u32, chunk: u32, byte: u32) -> Self {
        self.torn_writes.push(TornWrite { col, chunk, byte });
        self
    }

    /// Pin a hard kill-point: the `nth` (0-based) check of `site` fails
    /// immediately, with no retry — modelling the process dying at that
    /// exact write step of a durable checkpoint.
    pub fn pin_site(mut self, site: FaultSite, nth: u32) -> Self {
        self.site_pins.push((site, nth));
        self
    }
}

/// Per-query mutable injection state instantiated from a [`FaultPlan`].
///
/// Thread-safe: morsel workers share one `FaultState` per query, so the
/// retry/injection counters aggregate across threads and pinned-fault
/// budgets are consumed exactly once query-wide.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: AtomicU64,
    pinned_left: Mutex<Vec<PinnedFault>>,
    torn_left: Mutex<Vec<TornWrite>>,
    /// Per-site check counters, consulted only when `plan.site_pins`
    /// is non-empty (the deterministic crash-consistency suite).
    site_counts: Mutex<Vec<(FaultSite, u64)>>,
    retries: AtomicU64,
    injected: AtomicU64,
}

impl FaultState {
    /// Fresh injection state for one query execution.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            rng: AtomicU64::new(plan.seed | 1),
            pinned_left: Mutex::new(plan.pinned.clone()),
            torn_left: Mutex::new(plan.torn_writes.clone()),
            site_counts: Mutex::new(Vec::new()),
            retries: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            plan,
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total retried chunk-read attempts so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total faults injected so far (each retry was preceded by one).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Drain the torn writes planned for column `col`: each entry fires
    /// at most once, when the checkpoint that rewrites the column
    /// consumes it. Always empty without the `fault-inject` feature.
    pub fn take_torn(&self, col: u32) -> Vec<TornWrite> {
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = col;
            Vec::new()
        }
        #[cfg(feature = "fault-inject")]
        {
            let mut torn = self.torn_left.lock().unwrap_or_else(|e| e.into_inner());
            let (hit, left) = torn.drain(..).partition(|t| t.col == col);
            *torn = left;
            if !hit.is_empty() {
                self.injected.fetch_add(hit.len() as u64, Ordering::Relaxed);
            }
            hit
        }
    }

    /// Decide whether this read attempt of `(col, chunk)` fails.
    #[cfg(feature = "fault-inject")]
    fn should_fail(&self, col: u32, chunk: u32) -> bool {
        {
            let mut pins = self.pinned_left.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = pins
                .iter_mut()
                .find(|p| p.col == col && p.chunk == chunk && p.failures > 0)
            {
                p.failures -= 1;
                return true;
            }
        }
        self.draw(self.plan.fault_rate)
    }

    /// One Bernoulli draw at `rate` from the shared RNG stream:
    /// xorshift64* over an atomic word, deterministic for a given seed
    /// and total draw count, lock-free across workers.
    #[cfg(feature = "fault-inject")]
    fn draw(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut x = self.rng.load(Ordering::Relaxed);
        loop {
            let mut y = x;
            y ^= y << 13;
            y ^= y >> 7;
            y ^= y << 17;
            match self
                .rng
                .compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    let unit = (y >> 11) as f64 / (1u64 << 53) as f64;
                    return unit < rate;
                }
                Err(cur) => x = cur,
            }
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn should_fail(&self, _col: u32, _chunk: u32) -> bool {
        // Keep the state fields "live" for builds without the feature.
        let _ = (
            &self.rng,
            &self.pinned_left,
            &self.torn_left,
            &self.site_counts,
        );
        false
    }

    /// Consult the plan before one non-chunk storage access (a delta
    /// read or a dictionary lookup of column `col`): injected failures
    /// retry with the same exponential-backoff budget as chunk reads and
    /// surface a typed [`StorageFaultError`] once it is exhausted.
    /// Inert (always `Ok`) without the `fault-inject` feature.
    pub fn check_site(&self, site: FaultSite, col: u32) -> Result<(), StorageFaultError> {
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = (site, col);
            Ok(())
        }
        #[cfg(feature = "fault-inject")]
        {
            let rate = match site {
                FaultSite::ChunkRead => self.plan.fault_rate,
                FaultSite::DeltaRead => self.plan.delta_fault_rate,
                FaultSite::DictLookup => self.plan.dict_fault_rate,
                FaultSite::CompressedRead => self.plan.compressed_fault_rate,
                FaultSite::CheckpointWrite => self.plan.checkpoint_fault_rate,
                FaultSite::SpillWrite => self.plan.spill_write_fault_rate,
                FaultSite::SpillRead => self.plan.spill_read_fault_rate,
                FaultSite::ManifestWrite => self.plan.manifest_write_fault_rate,
                FaultSite::ManifestRead => self.plan.manifest_read_fault_rate,
                FaultSite::DurableChunkRead => self.plan.durable_read_fault_rate,
                FaultSite::DurableChunkWrite => self.plan.durable_write_fault_rate,
            };
            if !self.plan.site_pins.is_empty() {
                let n = {
                    let mut counts = self.site_counts.lock().unwrap_or_else(|e| e.into_inner());
                    match counts.iter_mut().find(|(s, _)| *s == site) {
                        Some((_, c)) => {
                            let n = *c;
                            *c += 1;
                            n
                        }
                        None => {
                            counts.push((site, 1));
                            0
                        }
                    }
                };
                if self
                    .plan
                    .site_pins
                    .iter()
                    .any(|&(s, k)| s == site && u64::from(k) == n)
                {
                    // A kill-point models the process dying, not a
                    // transient IO error — no retry can help, so fail
                    // without burning the backoff budget.
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Err(StorageFaultError {
                        site,
                        col,
                        attempts: 1,
                    });
                }
            }
            let step = |_attempt: u32| {
                if self.draw(rate) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    Err(())
                } else {
                    Ok(())
                }
            };
            match retry_with_backoff(self.plan.max_retries, self.plan.backoff_base_us, step) {
                Ok(((), retries)) => {
                    self.retries.fetch_add(retries as u64, Ordering::Relaxed);
                    Ok(())
                }
                Err(((), attempts)) => {
                    self.retries
                        .fetch_add((attempts - 1) as u64, Ordering::Relaxed);
                    Err(StorageFaultError {
                        site,
                        col,
                        attempts,
                    })
                }
            }
        }
    }
}

/// A chunk read that kept failing after the full retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkReadError {
    /// Column whose chunk failed.
    pub col: u32,
    /// Chunk index within the column.
    pub chunk: u32,
    /// Read attempts made (1 initial + retries).
    pub attempts: u32,
}

impl std::fmt::Display for ChunkReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunk read failed: column {} chunk {} after {} attempts",
            self.col, self.chunk, self.attempts
        )
    }
}

impl std::error::Error for ChunkReadError {}

/// The simulated buffer manager. Thread-safe; shared by reference.
#[derive(Debug)]
pub struct ColumnBM {
    chunk_bytes: usize,
    capacity_chunks: usize,
    state: Mutex<BmState>,
}

#[derive(Debug, Default)]
struct BmState {
    /// LRU queue of resident chunks (front = least recently used).
    lru: VecDeque<ChunkId>,
    stats: BmStats,
}

impl ColumnBM {
    /// A buffer manager with `capacity_chunks` resident chunks of
    /// [`DEFAULT_CHUNK_BYTES`] each.
    pub fn new(capacity_chunks: usize) -> Self {
        Self::with_chunk_bytes(capacity_chunks, DEFAULT_CHUNK_BYTES)
    }

    /// A buffer manager with custom chunk size (tests use small chunks).
    pub fn with_chunk_bytes(capacity_chunks: usize, chunk_bytes: usize) -> Self {
        assert!(capacity_chunks > 0 && chunk_bytes > 0);
        ColumnBM {
            chunk_bytes,
            capacity_chunks,
            state: Mutex::new(BmState::default()),
        }
    }

    /// Chunk size in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Record a scan touching `[offset, offset+len)` bytes of column
    /// `col`. Faults in the covering chunks through the LRU cache.
    /// Infallible: no fault plan is consulted.
    pub fn access(&self, col: u32, offset: u64, len: u64) {
        let ok = self.try_access(col, offset, len, None);
        debug_assert!(ok.is_ok(), "access without a fault plan cannot fail");
    }

    /// Fallible variant of [`ColumnBM::access`]: each covering chunk is
    /// read under `fault` (if any), retrying failed attempts with
    /// exponential backoff up to the plan's retry budget. Returns the
    /// first chunk whose retries were exhausted.
    pub fn try_access(
        &self,
        col: u32,
        offset: u64,
        len: u64,
        fault: Option<&FaultState>,
    ) -> Result<(), ChunkReadError> {
        if len == 0 {
            return Ok(());
        }
        let first = (offset / self.chunk_bytes as u64) as u32;
        let last = ((offset + len - 1) / self.chunk_bytes as u64) as u32;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.stats.bytes_requested += len;
        }
        for chunk in first..=last {
            self.read_chunk_retrying(col, chunk, fault)?;
        }
        Ok(())
    }

    /// Attempt one chunk read, retrying injected failures. The LRU is
    /// only touched once the read succeeds; backoff sleeps happen
    /// outside the state lock.
    fn read_chunk_retrying(
        &self,
        col: u32,
        chunk: u32,
        fault: Option<&FaultState>,
    ) -> Result<(), ChunkReadError> {
        let Some(f) = fault else {
            self.touch_chunk((col, chunk));
            return Ok(());
        };
        let step = |_attempt: u32| {
            if f.should_fail(col, chunk) {
                f.injected.fetch_add(1, Ordering::Relaxed);
                Err(())
            } else {
                Ok(())
            }
        };
        match retry_with_backoff(f.plan.max_retries, f.plan.backoff_base_us, step) {
            Ok(((), retries)) => {
                f.retries.fetch_add(retries as u64, Ordering::Relaxed);
                self.touch_chunk((col, chunk));
                Ok(())
            }
            Err(((), attempts)) => {
                f.retries
                    .fetch_add((attempts - 1) as u64, Ordering::Relaxed);
                Err(ChunkReadError {
                    col,
                    chunk,
                    attempts,
                })
            }
        }
    }

    /// Pull one chunk through the LRU cache, updating the counters.
    fn touch_chunk(&self, id: ChunkId) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = st.lru.iter().position(|&c| c == id) {
            st.lru.remove(pos);
            st.lru.push_back(id);
            st.stats.hits += 1;
        } else {
            st.stats.misses += 1;
            st.stats.bytes_read += self.chunk_bytes as u64;
            if st.lru.len() == self.capacity_chunks {
                st.lru.pop_front();
                st.stats.evictions += 1;
            }
            st.lru.push_back(id);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> BmStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// Number of chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lru
            .len()
    }

    /// Reset counters and drop all resident chunks.
    pub fn reset(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.lru.clear();
        st.stats = BmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_reads_each_chunk_once() {
        let bm = ColumnBM::with_chunk_bytes(16, 1024);
        // Scan 8 KiB in 1 KiB steps: 8 chunks, each missed exactly once.
        for i in 0..8u64 {
            bm.access(0, i * 1024, 1024);
        }
        let s = bm.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 0);
        assert_eq!(s.bytes_read, 8 * 1024);
        assert_eq!(s.bytes_requested, 8 * 1024);
        // Rescan: all hits now.
        for i in 0..8u64 {
            bm.access(0, i * 1024, 1024);
        }
        let s = bm.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn vertical_fragmentation_saves_io() {
        // Touching only 2 of 16 columns costs only those columns' chunks.
        let bm = ColumnBM::with_chunk_bytes(64, 1024);
        bm.access(3, 0, 4096);
        bm.access(7, 0, 4096);
        assert_eq!(bm.stats().misses, 8);
        assert_eq!(bm.resident_chunks(), 8);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let bm = ColumnBM::with_chunk_bytes(2, 100);
        bm.access(0, 0, 100); // chunk 0
        bm.access(0, 100, 100); // chunk 1
        bm.access(0, 200, 100); // chunk 2 evicts chunk 0
        let s = bm.stats();
        assert_eq!(s.evictions, 1);
        bm.access(0, 0, 100); // chunk 0 is a miss again
        assert_eq!(bm.stats().misses, 4);
    }

    #[test]
    fn sub_vector_requests_amplify_to_chunk_reads() {
        // Reading 8 bytes still faults a whole 1 KiB chunk: bandwidth
        // amplification the chunked layout trades for sequentiality.
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        bm.access(0, 512, 8);
        let s = bm.stats();
        assert_eq!(s.bytes_requested, 8);
        assert_eq!(s.bytes_read, 1024);
    }

    #[test]
    fn range_spanning_chunks() {
        let bm = ColumnBM::with_chunk_bytes(8, 1000);
        bm.access(0, 900, 200); // spans chunks 0 and 1
        assert_eq!(bm.stats().misses, 2);
        bm.access(0, 0, 0); // zero-length: no-op
        assert_eq!(bm.stats().misses, 2);
    }

    #[test]
    fn try_access_without_fault_state_is_infallible() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        assert!(bm.try_access(0, 0, 4096, None).is_ok());
        assert_eq!(bm.stats().misses, 4);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn pinned_fault_fails_then_succeeds_under_retry() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        let plan = FaultPlan {
            backoff_base_us: 0,
            ..FaultPlan::default()
        }
        .pin(0, 0, 2);
        let fs = FaultState::new(plan);
        // Two injected failures, two retries, then the read lands.
        assert!(bm.try_access(0, 0, 1024, Some(&fs)).is_ok());
        assert_eq!(fs.injected(), 2);
        assert_eq!(fs.retries(), 2);
        assert_eq!(bm.stats().misses, 1);
        // The pinned budget is consumed: the next read is clean.
        assert!(bm.try_access(0, 0, 1024, Some(&fs)).is_ok());
        assert_eq!(fs.injected(), 2);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        let plan = FaultPlan {
            max_retries: 3,
            backoff_base_us: 0,
            ..FaultPlan::default()
        }
        .pin(2, 1, 100);
        let fs = FaultState::new(plan);
        let err = bm.try_access(2, 1024, 512, Some(&fs)).unwrap_err();
        assert_eq!(
            err,
            ChunkReadError {
                col: 2,
                chunk: 1,
                attempts: 4
            }
        );
        // The failed chunk never entered the cache.
        assert_eq!(bm.stats().misses, 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_rate_is_deterministic_per_seed() {
        let bm = ColumnBM::with_chunk_bytes(1024, 64);
        let draws = |seed: u64| {
            let fs = FaultState::new(FaultPlan {
                backoff_base_us: 0,
                ..FaultPlan::with_rate(0.2, seed)
            });
            for c in 0..512u64 {
                bm.try_access(0, c * 64, 64, Some(&fs)).unwrap();
            }
            fs.injected()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed, same injected fault count");
        assert!(a > 0, "20% rate over 512 chunk reads injects something");
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn fault_plan_is_inert_without_the_feature() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        let fs = FaultState::new(FaultPlan::with_rate(1.0, 7).pin(0, 0, 9));
        assert!(bm.try_access(0, 0, 4096, Some(&fs)).is_ok());
        assert_eq!(fs.injected(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        bm.access(0, 0, 4096);
        bm.reset();
        assert_eq!(bm.stats(), BmStats::default());
        assert_eq!(bm.resident_chunks(), 0);
    }
}
