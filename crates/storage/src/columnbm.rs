//! ColumnBM: the chunked column buffer manager (paper §4, "Disk").
//!
//! The paper's ColumnBM I/O subsystem partitions each vertical fragment
//! into large (>1 MB) chunks and streams them sequentially, because
//! I/O bandwidth — not latency — is the scarce resource for scans.
//! The real ColumnBM was "still under development" in the paper (all
//! experiments ran on in-memory BATs); we reproduce it as an in-memory
//! *simulation* that models exactly what the paper describes:
//!
//! * fixed-size chunks per column,
//! * an LRU chunk cache of bounded capacity,
//! * per-scan accounting of logical bytes requested vs chunks "read"
//!   (cache misses), so bandwidth amplification is observable.
//!
//! This preserves the paper-relevant behaviour — sequential scans touch
//! each chunk once; vertical fragmentation means unread columns cost no
//! I/O — without requiring an actual disk.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default chunk size: 1 MiB, the paper's ">1MB chunks".
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Identifies one chunk of one column: `(column id, chunk index)`.
pub type ChunkId = (u32, u32);

/// Counters exposed by the buffer manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BmStats {
    /// Logical bytes requested by scans.
    pub bytes_requested: u64,
    /// Chunk-granular bytes actually "read" (cache misses × chunk size).
    pub bytes_read: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (chunk loads).
    pub misses: u64,
    /// Chunks evicted.
    pub evictions: u64,
}

/// The simulated buffer manager. Thread-safe; shared by reference.
#[derive(Debug)]
pub struct ColumnBM {
    chunk_bytes: usize,
    capacity_chunks: usize,
    state: Mutex<BmState>,
}

#[derive(Debug, Default)]
struct BmState {
    /// LRU queue of resident chunks (front = least recently used).
    lru: VecDeque<ChunkId>,
    stats: BmStats,
}

impl ColumnBM {
    /// A buffer manager with `capacity_chunks` resident chunks of
    /// [`DEFAULT_CHUNK_BYTES`] each.
    pub fn new(capacity_chunks: usize) -> Self {
        Self::with_chunk_bytes(capacity_chunks, DEFAULT_CHUNK_BYTES)
    }

    /// A buffer manager with custom chunk size (tests use small chunks).
    pub fn with_chunk_bytes(capacity_chunks: usize, chunk_bytes: usize) -> Self {
        assert!(capacity_chunks > 0 && chunk_bytes > 0);
        ColumnBM {
            chunk_bytes,
            capacity_chunks,
            state: Mutex::new(BmState::default()),
        }
    }

    /// Chunk size in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Record a scan touching `[offset, offset+len)` bytes of column
    /// `col`. Faults in the covering chunks through the LRU cache.
    pub fn access(&self, col: u32, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = (offset / self.chunk_bytes as u64) as u32;
        let last = ((offset + len - 1) / self.chunk_bytes as u64) as u32;
        let mut st = self.state.lock().unwrap();
        st.stats.bytes_requested += len;
        for chunk in first..=last {
            let id = (col, chunk);
            if let Some(pos) = st.lru.iter().position(|&c| c == id) {
                st.lru.remove(pos);
                st.lru.push_back(id);
                st.stats.hits += 1;
            } else {
                st.stats.misses += 1;
                st.stats.bytes_read += self.chunk_bytes as u64;
                if st.lru.len() == self.capacity_chunks {
                    st.lru.pop_front();
                    st.stats.evictions += 1;
                }
                st.lru.push_back(id);
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> BmStats {
        self.state.lock().unwrap().stats
    }

    /// Number of chunks currently resident.
    pub fn resident_chunks(&self) -> usize {
        self.state.lock().unwrap().lru.len()
    }

    /// Reset counters and drop all resident chunks.
    pub fn reset(&self) {
        let mut st = self.state.lock().unwrap();
        st.lru.clear();
        st.stats = BmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_reads_each_chunk_once() {
        let bm = ColumnBM::with_chunk_bytes(16, 1024);
        // Scan 8 KiB in 1 KiB steps: 8 chunks, each missed exactly once.
        for i in 0..8u64 {
            bm.access(0, i * 1024, 1024);
        }
        let s = bm.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 0);
        assert_eq!(s.bytes_read, 8 * 1024);
        assert_eq!(s.bytes_requested, 8 * 1024);
        // Rescan: all hits now.
        for i in 0..8u64 {
            bm.access(0, i * 1024, 1024);
        }
        let s = bm.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn vertical_fragmentation_saves_io() {
        // Touching only 2 of 16 columns costs only those columns' chunks.
        let bm = ColumnBM::with_chunk_bytes(64, 1024);
        bm.access(3, 0, 4096);
        bm.access(7, 0, 4096);
        assert_eq!(bm.stats().misses, 8);
        assert_eq!(bm.resident_chunks(), 8);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let bm = ColumnBM::with_chunk_bytes(2, 100);
        bm.access(0, 0, 100); // chunk 0
        bm.access(0, 100, 100); // chunk 1
        bm.access(0, 200, 100); // chunk 2 evicts chunk 0
        let s = bm.stats();
        assert_eq!(s.evictions, 1);
        bm.access(0, 0, 100); // chunk 0 is a miss again
        assert_eq!(bm.stats().misses, 4);
    }

    #[test]
    fn sub_vector_requests_amplify_to_chunk_reads() {
        // Reading 8 bytes still faults a whole 1 KiB chunk: bandwidth
        // amplification the chunked layout trades for sequentiality.
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        bm.access(0, 512, 8);
        let s = bm.stats();
        assert_eq!(s.bytes_requested, 8);
        assert_eq!(s.bytes_read, 1024);
    }

    #[test]
    fn range_spanning_chunks() {
        let bm = ColumnBM::with_chunk_bytes(8, 1000);
        bm.access(0, 900, 200); // spans chunks 0 and 1
        assert_eq!(bm.stats().misses, 2);
        bm.access(0, 0, 0); // zero-length: no-op
        assert_eq!(bm.stats().misses, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let bm = ColumnBM::with_chunk_bytes(4, 1024);
        bm.access(0, 0, 4096);
        bm.reset();
        assert_eq!(bm.stats(), BmStats::default());
        assert_eq!(bm.resident_chunks(), 0);
    }
}
