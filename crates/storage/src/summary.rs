//! Summary indices (paper §4.3; "small materialized aggregates" \[12\]).
//!
//! For a column that is clustered (almost sorted), MonetDB/X100 keeps a
//! coarse-granularity index of `(#rowId, running max, reversely running
//! min)` entries — by default one entry per 1000 rows. Range predicates
//! then derive `#rowId` bounds cheaply:
//!
//! * rows **before** the first entry whose *running max* reaches `lo`
//!   cannot satisfy `col >= lo`;
//! * rows **after** the last entry whose *reverse running min* is below
//!   `hi` cannot satisfy `col <= hi`.
//!
//! Because vertical fragments are immutable, summary indices require no
//! maintenance; delta columns are small and always scanned.

/// Default number of rows per summary entry.
pub const DEFAULT_GRANULARITY: usize = 1000;

/// One summary entry: statistics over all rows up to (and from) a row id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    /// First row id of the *next* granule (i.e. this entry covers rows `< row`).
    row: u32,
    /// Maximum of the column over rows `0..row` (running max).
    running_max: i64,
    /// Minimum of the column over rows `row_prev..n` (reversely running min).
    reverse_min: i64,
}

/// A summary index over an `i64`-comparable clustered column
/// (dates are `i32` days, widened; decimals are scaled `i64`).
#[derive(Debug, Clone)]
pub struct SummaryIndex {
    entries: Vec<Entry>,
    granularity: usize,
    rows: usize,
}

impl SummaryIndex {
    /// Build over `col` with the default granularity.
    pub fn build(col: &[i64]) -> Self {
        Self::build_with_granularity(col, DEFAULT_GRANULARITY)
    }

    /// Build over `col`, one entry per `granularity` rows.
    pub fn build_with_granularity(col: &[i64], granularity: usize) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        let n = col.len();
        let nent = n.div_ceil(granularity);
        let mut entries = Vec::with_capacity(nent);
        // Forward pass: running max at each granule boundary.
        let mut running_max = i64::MIN;
        let mut idx = 0usize;
        for g in 0..nent {
            let end = ((g + 1) * granularity).min(n);
            while idx < end {
                running_max = running_max.max(col[idx]);
                idx += 1;
            }
            entries.push(Entry {
                row: end as u32,
                running_max,
                reverse_min: i64::MAX,
            });
        }
        // Backward pass: reverse running min from each granule start to the end.
        let mut reverse_min = i64::MAX;
        let mut idx = n;
        for g in (0..nent).rev() {
            let start = g * granularity;
            while idx > start {
                idx -= 1;
                reverse_min = reverse_min.min(col[idx]);
            }
            entries[g].reverse_min = reverse_min;
        }
        SummaryIndex {
            entries,
            granularity,
            rows: n,
        }
    }

    /// Number of summary entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows per entry.
    pub fn granularity(&self) -> usize {
        self.granularity
    }

    /// Derive a conservative `[start_row, end_row)` range that contains
    /// every row satisfying `lo <= col[row] <= hi` (either bound may be
    /// `None` for an open interval).
    ///
    /// The range is *conservative*: rows inside it may still fail the
    /// predicate (the scan re-checks), but no qualifying row lies outside.
    pub fn range_candidates(&self, lo: Option<i64>, hi: Option<i64>) -> (usize, usize) {
        if self.rows == 0 {
            return (0, 0);
        }
        // Leading granules whose running max is still < lo can be skipped:
        // find the first entry with running_max >= lo; qualifying rows can
        // first appear in that granule.
        let start = match lo {
            None => 0,
            Some(lo) => {
                let g = self.entries.partition_point(|e| e.running_max < lo);
                g * self.granularity
            }
        };
        // Trailing granules whose reverse running min is > hi can be
        // skipped: find the last entry with reverse_min <= hi.
        let end = match hi {
            None => self.rows,
            Some(hi) => {
                // entries[g].reverse_min is the min over rows from granule
                // g's start to the end; it is non-decreasing in g.
                let g = self.entries.partition_point(|e| e.reverse_min <= hi);
                // Granules 0..g have some row <= hi *somewhere after their
                // start*; granule g onwards has none.
                (g * self.granularity).min(self.rows)
            }
        };
        (start.min(self.rows), end.max(start).min(self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_conservative(col: &[i64], idx: &SummaryIndex, lo: Option<i64>, hi: Option<i64>) {
        let (s, e) = idx.range_candidates(lo, hi);
        for (i, &v) in col.iter().enumerate() {
            let qualifies = lo.is_none_or(|lo| v >= lo) && hi.is_none_or(|hi| v <= hi);
            if qualifies {
                assert!(
                    s <= i && i < e,
                    "row {i} (v={v}) outside candidate range [{s},{e}) for {lo:?}..{hi:?}"
                );
            }
        }
    }

    #[test]
    fn sorted_column_prunes_tightly() {
        let col: Vec<i64> = (0..10_000).collect();
        let idx = SummaryIndex::build_with_granularity(&col, 100);
        let (s, e) = idx.range_candidates(Some(5000), Some(5999));
        assert!(s <= 5000 && e >= 6000);
        // Pruning is granule-tight.
        assert!(s >= 4900, "start {s}");
        assert!(e <= 6100, "end {e}");
        check_conservative(&col, &idx, Some(5000), Some(5999));
    }

    #[test]
    fn almost_sorted_column_still_conservative() {
        // Clustered but locally shuffled, like lineitem kept clustered on
        // the orders date sort.
        let mut col: Vec<i64> = (0..5000).collect();
        for c in col.chunks_mut(37) {
            c.reverse();
        }
        let idx = SummaryIndex::build_with_granularity(&col, 64);
        for (lo, hi) in [
            (None, Some(100)),
            (Some(4900), None),
            (Some(1000), Some(1200)),
            (None, None),
        ] {
            check_conservative(&col, &idx, lo, hi);
        }
    }

    #[test]
    fn unsorted_column_degenerates_to_full_scan() {
        // A value at each extreme in first/last granule defeats pruning —
        // but the result must stay conservative, never wrong.
        let mut col: Vec<i64> = (0..1000).collect();
        col[0] = 999_999;
        col[999] = -999_999;
        let idx = SummaryIndex::build_with_granularity(&col, 100);
        check_conservative(&col, &idx, Some(500), Some(600));
    }

    #[test]
    fn open_ranges() {
        let col: Vec<i64> = (0..1000).collect();
        let idx = SummaryIndex::build_with_granularity(&col, 10);
        assert_eq!(idx.range_candidates(None, None), (0, 1000));
        let (s, _) = idx.range_candidates(Some(990), None);
        assert!((980..=990).contains(&s));
        let (_, e) = idx.range_candidates(None, Some(9));
        assert!((10..=20).contains(&e));
    }

    #[test]
    fn empty_and_tiny_columns() {
        let idx = SummaryIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.range_candidates(Some(0), Some(10)), (0, 0));
        let idx = SummaryIndex::build(&[42]);
        assert_eq!(idx.len(), 1);
        check_conservative(&[42], &idx, Some(0), Some(100));
        check_conservative(&[42], &idx, Some(43), Some(100));
    }

    #[test]
    fn out_of_range_predicates() {
        let col: Vec<i64> = (100..200).collect();
        let idx = SummaryIndex::build_with_granularity(&col, 10);
        // Entirely above the data: candidate range is empty or near-empty.
        let (s, e) = idx.range_candidates(Some(1000), None);
        assert_eq!(s, e, "no rows should qualify: [{s},{e})");
        // Entirely below the data.
        let (s2, e2) = idx.range_candidates(None, Some(0));
        assert_eq!(s2, e2);
    }

    #[test]
    fn default_granularity_is_1000() {
        let col: Vec<i64> = (0..2500).collect();
        let idx = SummaryIndex::build(&col);
        assert_eq!(idx.granularity(), 1000);
        assert_eq!(idx.len(), 3);
    }
}
