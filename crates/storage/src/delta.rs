//! Delta structures: updates without touching immutable fragments.
//!
//! Paper §4.3 / Figure 8: vertical fragments are immutable objects.
//! *Deletes* add the tuple id to a deletion list; *inserts* append to
//! separate, uncompressed delta columns (stored together chunk-wise,
//! which equates PAX — here: parallel `ColumnData` appenders); an
//! *update* is a delete followed by an insert. When the deltas exceed a
//! small percentile of the table, storage is reorganized
//! ([`crate::table::Table::reorganize`]) and the deltas become empty.

use crate::column::ColumnData;
use x100_vector::{ScalarType, Value};

/// The deletion list: row ids (into the *stable* row id space:
/// fragment rows first, then delta rows) that are deleted.
#[derive(Debug, Clone, Default)]
pub struct DeleteList {
    /// Sorted row ids.
    ids: Vec<u32>,
}

impl DeleteList {
    /// Mark `rowid` deleted. Returns `false` if it already was.
    pub fn delete(&mut self, rowid: u32) -> bool {
        match self.ids.binary_search(&rowid) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, rowid);
                true
            }
        }
    }

    /// True if `rowid` is deleted.
    #[inline]
    pub fn contains(&self, rowid: u32) -> bool {
        self.ids.binary_search(&rowid).is_ok()
    }

    /// Number of deleted rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is deleted.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The deleted row ids, sorted ascending.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Count deleted row ids inside `[start, end)` and append their
    /// positions relative to `start` — used by scans to build the live
    /// selection for a vector-sized range.
    pub fn deleted_in_range(&self, start: u32, end: u32, out: &mut Vec<u32>) {
        let lo = self.ids.partition_point(|&id| id < start);
        let hi = self.ids.partition_point(|&id| id < end);
        out.extend(self.ids[lo..hi].iter().map(|&id| id - start));
    }

    /// Drop all entries (after a reorganize).
    pub fn clear(&mut self) {
        self.ids.clear();
    }
}

/// Append-only insert deltas: one uncompressed column per table column.
///
/// Delta columns are never compressed (paper: "updates just go to the
/// delta columns (which are never compressed) and do not complicate the
/// compression scheme").
#[derive(Debug, Clone)]
pub struct InsertDelta {
    cols: Vec<ColumnData>,
    rows: usize,
}

impl InsertDelta {
    /// Empty deltas for a table with the given column types.
    pub fn new(types: &[ScalarType]) -> Self {
        InsertDelta {
            cols: types.iter().map(|&t| ColumnData::new(t)).collect(),
            rows: 0,
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row` arity or types mismatch.
    pub fn append(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (col, v) in self.cols.iter_mut().zip(row.iter()) {
            col.push_value(v);
        }
        self.rows += 1;
    }

    /// Number of delta rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no rows were inserted.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The delta column for table column `i`.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.cols[i]
    }

    /// Drop all rows (after a reorganize), keeping column types.
    pub fn clear(&mut self) {
        let types: Vec<ScalarType> = self.cols.iter().map(|c| c.scalar_type()).collect();
        self.cols = types.iter().map(|&t| ColumnData::new(t)).collect();
        self.rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_list_dedups_and_sorts() {
        let mut dl = DeleteList::default();
        assert!(dl.delete(5));
        assert!(dl.delete(1));
        assert!(!dl.delete(5));
        assert_eq!(dl.ids(), &[1, 5]);
        assert!(dl.contains(1));
        assert!(!dl.contains(2));
        assert_eq!(dl.len(), 2);
    }

    #[test]
    fn deleted_in_range_relative_positions() {
        let mut dl = DeleteList::default();
        for id in [3, 10, 11, 25] {
            dl.delete(id);
        }
        let mut out = Vec::new();
        dl.deleted_in_range(10, 20, &mut out);
        assert_eq!(out, vec![0, 1]);
        out.clear();
        dl.deleted_in_range(0, 5, &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        dl.deleted_in_range(26, 100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn insert_delta_appends() {
        let mut d = InsertDelta::new(&[ScalarType::I32, ScalarType::Str]);
        d.append(&[Value::I32(1), Value::Str("a".into())]);
        d.append(&[Value::I32(2), Value::Str("b".into())]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.column(0).get_value(1), Value::I32(2));
        assert_eq!(d.column(1).get_value(0), Value::Str("a".into()));
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.column(0).scalar_type(), ScalarType::I32);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut d = InsertDelta::new(&[ScalarType::I32]);
        d.append(&[Value::I32(1), Value::I32(2)]);
    }
}
