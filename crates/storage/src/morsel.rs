//! Morsels: row-range work units for intra-query parallelism.
//!
//! The paper's engine is single-threaded; to parallelize a scan we
//! split the table's row space — the (possibly summary-pruned) fragment
//! range plus the insert-delta tail — into fixed-size *morsels* (à la
//! morsel-driven parallelism). Each worker thread scans a disjoint
//! subset of morsels with its own operator pipeline; deletion masks and
//! delta reads keep working because a morsel is just a row range
//! against the same immutable [`crate::Table`].

/// One contiguous unit of scan work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Rows come from the insert delta (`start` is delta-relative);
    /// otherwise from the stored fragments.
    pub delta: bool,
    /// First row of the range (fragment- or delta-relative).
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

/// Split the fragment range `[frag_range.0, frag_range.1)` plus
/// `delta_rows` insert-delta rows into morsels of at most
/// `morsel_size` rows. `morsel_size == 0` means unbounded: one morsel
/// for the whole fragment range and one for the whole delta.
pub fn plan_morsels(
    frag_range: (usize, usize),
    delta_rows: usize,
    morsel_size: usize,
) -> Vec<Morsel> {
    let step = if morsel_size == 0 {
        usize::MAX
    } else {
        morsel_size
    };
    let mut out = Vec::new();
    let (mut pos, end) = frag_range;
    while pos < end {
        let len = (end - pos).min(step);
        out.push(Morsel {
            delta: false,
            start: pos,
            len,
        });
        pos += len;
    }
    let mut dpos = 0usize;
    while dpos < delta_rows {
        let len = (delta_rows - dpos).min(step);
        out.push(Morsel {
            delta: true,
            start: dpos,
            len,
        });
        dpos += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_range_when_unbounded() {
        let m = plan_morsels((10, 250), 7, 0);
        assert_eq!(
            m,
            vec![
                Morsel {
                    delta: false,
                    start: 10,
                    len: 240
                },
                Morsel {
                    delta: true,
                    start: 0,
                    len: 7
                }
            ]
        );
    }

    #[test]
    fn splits_cover_exactly_once() {
        let m = plan_morsels((5, 1000), 130, 64);
        let frag_rows: usize = m.iter().filter(|x| !x.delta).map(|x| x.len).sum();
        let delta_rows: usize = m.iter().filter(|x| x.delta).map(|x| x.len).sum();
        assert_eq!(frag_rows, 995);
        assert_eq!(delta_rows, 130);
        // Contiguous, non-overlapping, in order.
        let mut pos = 5;
        for x in m.iter().filter(|x| !x.delta) {
            assert_eq!(x.start, pos);
            assert!(x.len <= 64 && x.len > 0);
            pos += x.len;
        }
        let mut dpos = 0;
        for x in m.iter().filter(|x| x.delta) {
            assert_eq!(x.start, dpos);
            dpos += x.len;
        }
    }

    #[test]
    fn empty_inputs_yield_no_morsels() {
        assert!(plan_morsels((100, 100), 0, 16).is_empty());
        assert!(plan_morsels((7, 3), 0, 16).is_empty());
    }

    #[test]
    fn delta_only() {
        let m = plan_morsels((0, 0), 10, 4);
        assert_eq!(
            m,
            vec![
                Morsel {
                    delta: true,
                    start: 0,
                    len: 4
                },
                Morsel {
                    delta: true,
                    start: 4,
                    len: 4
                },
                Morsel {
                    delta: true,
                    start: 8,
                    len: 2
                }
            ]
        );
    }
}
