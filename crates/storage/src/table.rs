//! Tables: schemas, immutable fragments, deltas, and reorganization.
//!
//! A [`Table`] is a set of equally long vertical fragments
//! ([`ColumnData`]), optionally enum-compressed and/or carrying a
//! summary index, plus the delta structures of §4.3: a deletion list
//! and uncompressed insert columns. Every table has a virtual `#rowId`
//! column — a densely ascending number from 0 (never stored), which
//! positional fetch-joins use as join key.

use crate::column::ColumnData;
use crate::columnbm::{FaultSite, FaultState, StorageFaultError};
use crate::compress::{choose_and_compress, ChunkFormat, CompressedColumn};
use crate::delta::{DeleteList, InsertDelta};
use crate::durable::{DurableError, DurableOptions, DurableSource};
use crate::enumcol::{encode_f64, encode_i64, encode_str, EnumDict};
use crate::summary::SummaryIndex;
use std::path::Path;
use std::sync::Arc;
use x100_vector::{ScalarType, Value, Vector};

/// A named, typed column slot in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// The *logical* type queries see (enum columns decode to this).
    pub logical: ScalarType,
}

/// Per-fragment column statistics, harvested when the fragment is built
/// (`TableBuilder::build` / `Table::reorganize`) — the fragment is
/// immutable in between, so the stats stay exact until the next rebuild.
/// They are the *source facts* of the engine's plan-level abstract
/// interpretation (`engine::facts`): value range and sortedness of the
/// physical data (codes for enum columns). A checkpoint's compressed
/// chunks carry the same bounds per chunk (PFOR frame base/width);
/// these are the fragment-wide rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum physical value. `None` for string or empty fragments, or
    /// when a float fragment contains NaN.
    pub min: Option<Value>,
    /// Maximum physical value (same caveats as `min`).
    pub max: Option<Value>,
    /// Whether the fragment is non-decreasing.
    pub sorted: bool,
}

impl ColumnStats {
    /// Compute stats over one fragment in a single pass.
    pub fn compute(data: &ColumnData) -> ColumnStats {
        fn ints<T: Copy + Ord>(v: &[T], mk: impl Fn(T) -> Value) -> ColumnStats {
            let Some(&first) = v.first() else {
                return ColumnStats {
                    min: None,
                    max: None,
                    sorted: true,
                };
            };
            let (mut mn, mut mx, mut sorted, mut prev) = (first, first, true, first);
            for &x in &v[1..] {
                mn = mn.min(x);
                mx = mx.max(x);
                sorted &= prev <= x;
                prev = x;
            }
            ColumnStats {
                min: Some(mk(mn)),
                max: Some(mk(mx)),
                sorted,
            }
        }
        match data {
            ColumnData::I8(v) => ints(v, Value::I8),
            ColumnData::I16(v) => ints(v, Value::I16),
            ColumnData::I32(v) => ints(v, Value::I32),
            ColumnData::I64(v) => ints(v, Value::I64),
            ColumnData::U8(v) => ints(v, Value::U8),
            ColumnData::U16(v) => ints(v, Value::U16),
            ColumnData::U32(v) => ints(v, Value::U32),
            ColumnData::U64(v) => ints(v, Value::U64),
            ColumnData::F64(v) => {
                if v.is_empty() {
                    return ColumnStats {
                        min: None,
                        max: None,
                        sorted: true,
                    };
                }
                if v.iter().any(|x| x.is_nan()) {
                    // NaN poisons both the ordering and the range; the
                    // analyzer treats the column as ⊤.
                    return ColumnStats {
                        min: None,
                        max: None,
                        sorted: false,
                    };
                }
                let (mut mn, mut mx, mut sorted, mut prev) = (v[0], v[0], true, v[0]);
                for &x in &v[1..] {
                    mn = mn.min(x);
                    mx = mx.max(x);
                    sorted &= prev <= x;
                    prev = x;
                }
                ColumnStats {
                    min: Some(Value::F64(mn)),
                    max: Some(Value::F64(mx)),
                    sorted,
                }
            }
            // Strings carry no numeric range; lexicographic order is of
            // no use to the analyzer.
            ColumnData::Str(_) => ColumnStats {
                min: None,
                max: None,
                sorted: false,
            },
        }
    }
}

/// One stored column: physical data + optional dictionary + optional
/// summary index.
#[derive(Debug, Clone)]
pub struct StoredColumn {
    pub(crate) field: Field,
    /// Physical fragment: plain values, or `U8`/`U16` codes when `dict`
    /// is present.
    pub(crate) data: ColumnData,
    pub(crate) dict: Option<EnumDict>,
    pub(crate) summary: Option<SummaryIndex>,
    /// Fragment statistics, refreshed whenever `data` is rebuilt.
    pub(crate) stats: Option<ColumnStats>,
    /// Compressed rewrite of `data`, present after a checkpoint. Scans
    /// prefer it; it always covers exactly the fragment rows.
    pub(crate) compressed: Option<CompressedColumn>,
    /// Monotonic fragment-data version; bumps when `data` is rebuilt
    /// (reorganize). The fragment is immutable in between.
    pub(crate) epoch: u64,
    /// The `epoch` at which the codec chooser last ran. `Some(epoch)`
    /// means the verdict in `compressed` (including `None` = stay raw)
    /// is current, and `checkpoint()` skips the full format sweep.
    pub(crate) codec_epoch: Option<u64>,
}

impl StoredColumn {
    /// The schema field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// The physical fragment (codes for enum columns).
    pub fn physical(&self) -> &ColumnData {
        &self.data
    }

    /// The physical type stored in the fragment.
    pub fn physical_type(&self) -> ScalarType {
        self.data.scalar_type()
    }

    /// The enum dictionary, if this column is enumeration-typed.
    pub fn dict(&self) -> Option<&EnumDict> {
        self.dict.as_ref()
    }

    /// The summary index, if one was built.
    pub fn summary(&self) -> Option<&SummaryIndex> {
        self.summary.as_ref()
    }

    /// The compressed fragment rewrite, if the column was checkpointed
    /// and the format chooser found a paying format.
    pub fn compressed(&self) -> Option<&CompressedColumn> {
        self.compressed.as_ref()
    }

    /// Fragment statistics (physical values; codes for enum columns).
    /// Prefer [`Table::column_stats`], which widens under pending deltas.
    pub fn stats(&self) -> Option<&ColumnStats> {
        self.stats.as_ref()
    }

    /// Decode one fragment value to its logical form (slow path).
    fn get_logical(&self, row: usize) -> Value {
        match &self.dict {
            None => self.data.get_value(row),
            Some(dict) => {
                let code = match &self.data {
                    ColumnData::U8(c) => c[row] as usize,
                    ColumnData::U16(c) => c[row] as usize,
                    other => panic!("enum codes must be U8/U16, got {:?}", other.scalar_type()),
                };
                dict.decode(code)
            }
        }
    }
}

/// Builds a [`Table`] column by column.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<StoredColumn>,
}

impl TableBuilder {
    /// Start a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Add a plain (uncompressed) column.
    pub fn column(mut self, name: impl Into<String>, data: ColumnData) -> Self {
        let logical = data.scalar_type();
        self.columns.push(StoredColumn {
            field: Field {
                name: name.into(),
                logical,
            },
            data,
            dict: None,
            summary: None,
            stats: None,
            compressed: None,
            epoch: 0,
            codec_epoch: None,
        });
        self
    }

    /// Add an enumeration-typed column from pre-built codes + dictionary.
    pub fn enum_column(
        mut self,
        name: impl Into<String>,
        codes: ColumnData,
        dict: EnumDict,
    ) -> Self {
        assert!(
            matches!(codes.scalar_type(), ScalarType::U8 | ScalarType::U16),
            "enum codes must be U8 or U16"
        );
        self.columns.push(StoredColumn {
            field: Field {
                name: name.into(),
                logical: dict.value_type(),
            },
            data: codes,
            dict: Some(dict),
            summary: None,
            stats: None,
            compressed: None,
            epoch: 0,
            codec_epoch: None,
        });
        self
    }

    /// Try to enum-encode a string column; falls back to plain storage
    /// if the cardinality exceeds 2-byte codes.
    pub fn auto_enum_str(self, name: impl Into<String>, values: Vec<String>) -> Self {
        match encode_str(values.clone().into_iter()) {
            Some(enc) => self.enum_column(name, enc.codes, enc.dict),
            None => {
                let mut col = ColumnData::new(ScalarType::Str);
                for v in &values {
                    col.push_value(&Value::Str(v.clone()));
                }
                self.column(name, col)
            }
        }
    }

    /// Try to enum-encode an `f64` column (falls back to plain storage).
    pub fn auto_enum_f64(self, name: impl Into<String>, values: Vec<f64>) -> Self {
        match encode_f64(&values) {
            Some(enc) => self.enum_column(name, enc.codes, enc.dict),
            None => self.column(name, ColumnData::F64(values)),
        }
    }

    /// Try to enum-encode an `i64` column (falls back to plain storage).
    pub fn auto_enum_i64(self, name: impl Into<String>, values: Vec<i64>) -> Self {
        match encode_i64(&values) {
            Some(enc) => self.enum_column(name, enc.codes, enc.dict),
            None => self.column(name, ColumnData::I64(values)),
        }
    }

    /// Build a summary index on the most recently added column (must be
    /// an integer-comparable plain column: `I32` dates or `I64`).
    pub fn with_summary(mut self) -> Self {
        let col = self
            .columns
            .last_mut()
            .expect("with_summary after a column");
        let widened: Vec<i64> = match &col.data {
            ColumnData::I32(v) => v.iter().map(|&x| x as i64).collect(),
            ColumnData::I64(v) => v.clone(),
            other => panic!(
                "summary index needs I32/I64 column, got {:?}",
                other.scalar_type()
            ),
        };
        col.summary = Some(SummaryIndex::build(&widened));
        self
    }

    /// Finish the table.
    ///
    /// # Panics
    /// Panics if columns differ in length.
    pub fn build(self) -> Table {
        let rows = self.columns.first().map_or(0, |c| c.data.len());
        let mut columns = self.columns;
        for c in &mut columns {
            assert_eq!(
                c.data.len(),
                rows,
                "column {} length mismatch",
                c.field.name
            );
            // Harvest fragment stats once at build: the fragment is
            // immutable until the next reorganize, which recomputes.
            c.stats = Some(ColumnStats::compute(&c.data));
        }
        let types: Vec<ScalarType> = columns.iter().map(|c| c.field.logical).collect();
        Table {
            name: self.name,
            columns,
            frag_rows: rows,
            deletes: DeleteList::default(),
            inserts: InsertDelta::new(&types),
            codec_sweeps: 0,
            durable: None,
        }
    }
}

/// A vertically fragmented table with delta-based updates.
#[derive(Debug, Clone)]
pub struct Table {
    pub(crate) name: String,
    pub(crate) columns: Vec<StoredColumn>,
    pub(crate) frag_rows: usize,
    pub(crate) deletes: DeleteList,
    pub(crate) inserts: InsertDelta,
    /// Full format sweeps the codec chooser has run (cache misses).
    pub(crate) codec_sweeps: u64,
    /// The on-disk checkpoint this table was opened from (or last
    /// committed to). Scans use it to heal corrupt chunks from a
    /// replica mid-query; `None` for purely in-memory tables, and reset
    /// by `reorganize()` (the disk copy no longer matches the
    /// fragments until the next durable checkpoint).
    pub(crate) durable: Option<Arc<DurableSource>>,
}

impl Table {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema fields, in column order.
    pub fn fields(&self) -> impl Iterator<Item = &Field> {
        self.columns.iter().map(|c| &c.field)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.field.name == name)
    }

    /// The stored column at index `i`.
    pub fn column(&self, i: usize) -> &StoredColumn {
        &self.columns[i]
    }

    /// The stored column named `name`.
    ///
    /// # Panics
    /// Panics if absent.
    pub fn column_by_name(&self, name: &str) -> &StoredColumn {
        let i = self
            .column_index(name)
            .unwrap_or_else(|| panic!("no column `{name}` in table `{}`", self.name));
        &self.columns[i]
    }

    /// Rows in the immutable fragments.
    pub fn fragment_rows(&self) -> usize {
        self.frag_rows
    }

    /// Rows in the insert delta.
    pub fn delta_rows(&self) -> usize {
        self.inserts.len()
    }

    /// Fragment statistics for column `i`, *widened to unknown* while
    /// insert-delta rows are pending: delta values bypass the fragment
    /// and are not covered by the stats, so any range claim would be
    /// unsound. Deletes do not widen — visible rows are a subset of the
    /// fragment the stats describe. Reorganization merges the deltas
    /// and recomputes, restoring precision.
    pub fn column_stats(&self, i: usize) -> Option<&ColumnStats> {
        if !self.inserts.is_empty() {
            None
        } else {
            self.columns[i].stats.as_ref()
        }
    }

    /// Total row id space (fragments + deltas, including deleted rows).
    pub fn total_rows(&self) -> usize {
        self.frag_rows + self.inserts.len()
    }

    /// Live (visible) rows.
    pub fn live_rows(&self) -> usize {
        self.total_rows() - self.deletes.len()
    }

    /// The deletion list.
    pub fn deletes(&self) -> &DeleteList {
        &self.deletes
    }

    /// The insert delta columns.
    pub fn inserts(&self) -> &InsertDelta {
        &self.inserts
    }

    /// Total storage bytes (fragments + dictionaries + deltas).
    pub fn byte_size(&self) -> usize {
        let frag: usize = self
            .columns
            .iter()
            .map(|c| c.data.byte_size() + c.dict.as_ref().map_or(0, |d| d.values().byte_size()))
            .sum();
        let delta: usize = (0..self.columns.len())
            .map(|i| self.inserts.column(i).byte_size())
            .sum();
        frag + delta
    }

    /// Insert a row (logical values). Returns its `#rowId`.
    pub fn insert(&mut self, row: &[Value]) -> u32 {
        let id = self.total_rows() as u32;
        self.inserts.append(row);
        id
    }

    /// Delete a row by `#rowId`. Returns `false` if it did not exist or
    /// was already deleted.
    pub fn delete(&mut self, rowid: u32) -> bool {
        if (rowid as usize) < self.total_rows() {
            self.deletes.delete(rowid)
        } else {
            false
        }
    }

    /// Update = delete + insert (paper §4.3). Returns the new `#rowId`,
    /// or `None` if `rowid` did not exist.
    pub fn update(&mut self, rowid: u32, row: &[Value]) -> Option<u32> {
        if self.delete(rowid) {
            Some(self.insert(row))
        } else {
            None
        }
    }

    /// Delta fraction: delta rows + deletes relative to total rows.
    /// The paper reorganizes "whenever their size exceeds a (small)
    /// percentile of the total table size".
    pub fn delta_fraction(&self) -> f64 {
        if self.total_rows() == 0 {
            0.0
        } else {
            (self.inserts.len() + self.deletes.len()) as f64 / self.total_rows() as f64
        }
    }

    /// Read one row's logical values (slow path; tests and row display).
    ///
    /// # Panics
    /// Panics if `rowid` is deleted or out of range.
    pub fn get_row(&self, rowid: u32) -> Vec<Value> {
        assert!(!self.deletes.contains(rowid), "row {rowid} is deleted");
        let r = rowid as usize;
        if r < self.frag_rows {
            self.columns.iter().map(|c| c.get_logical(r)).collect()
        } else {
            let d = r - self.frag_rows;
            assert!(d < self.inserts.len(), "row {rowid} out of range");
            (0..self.columns.len())
                .map(|i| self.inserts.column(i).get_value(d))
                .collect()
        }
    }

    /// Read a fragment range of a column *logically* (decoding enums) into
    /// a vector buffer. `start + rows` must stay within the fragments.
    pub fn read_logical(&self, col: usize, start: usize, rows: usize, out: &mut Vector) {
        assert!(
            start + rows <= self.frag_rows,
            "read_logical beyond fragments"
        );
        let c = &self.columns[col];
        match &c.dict {
            None => c.data.read_into(start, rows, out),
            Some(dict) => {
                out.clear();
                match (&c.data, dict.values()) {
                    (ColumnData::U8(codes), vals) => {
                        gather_codes(vals, &codes[start..start + rows], out)
                    }
                    (ColumnData::U16(codes), vals) => {
                        gather_codes16(vals, &codes[start..start + rows], out)
                    }
                    _ => unreachable!("enum codes are U8/U16"),
                }
            }
        }
    }

    /// Read a delta range of a column (delta rows are always logical).
    /// `start` is relative to the delta (0 = first inserted row).
    pub fn read_delta(&self, col: usize, start: usize, rows: usize, out: &mut Vector) {
        self.inserts.column(col).read_into(start, rows, out);
    }

    /// Gather logical values of arbitrary (live, fragment-or-delta) row
    /// ids into a vector buffer — the storage half of `Fetch1Join`.
    pub fn gather_logical(&self, col: usize, rowids: &[u32], out: &mut Vector) {
        let c = &self.columns[col];
        let all_in_frag = rowids.iter().all(|&r| (r as usize) < self.frag_rows);
        if all_in_frag && c.dict.is_none() {
            c.data.gather_into(rowids, out);
            return;
        }
        // Slow path: mixed regions or enum decode.
        out.clear();
        for &r in rowids {
            out.push_value(&self.column_value(col, r));
        }
    }

    fn column_value(&self, col: usize, rowid: u32) -> Value {
        let r = rowid as usize;
        if r < self.frag_rows {
            self.columns[col].get_logical(r)
        } else {
            self.inserts.column(col).get_value(r - self.frag_rows)
        }
    }

    /// Flip one payload byte of column `col`'s compressed chunk `ci`
    /// in memory (see [`CompressedColumn::corrupt_payload_byte`]) —
    /// bit-rot simulation for fault injection and tests only. The
    /// durable copies on disk are untouched, so a scan hitting the bad
    /// chunk can heal from a replica. Returns `false` when the column
    /// has no compressed form or the chunk no payload byte at `at`.
    pub fn corrupt_compressed_payload(&mut self, col: usize, ci: usize, at: usize) -> bool {
        match &mut self.columns[col].compressed {
            Some(cc) => cc.corrupt_payload_byte(ci, at),
            None => false,
        }
    }

    /// Checkpoint: run the format chooser over every column fragment
    /// and rewrite paying columns as compressed chunks (paper §4.3/§5 —
    /// "light-weight compression" applied when data is reorganized).
    /// Returns per-column verdicts `(name, format, ratio_pct)`; raw
    /// columns report `ChunkFormat::Raw` at 100%.
    pub fn checkpoint(&mut self) -> Vec<(String, ChunkFormat, u64)> {
        match self.try_checkpoint(None) {
            Ok(v) => v,
            Err(_) => unreachable!("checkpoint without a fault plan cannot fail"),
        }
    }

    /// Fallible checkpoint: each column's compressed-chunk write is
    /// checked against the fault plan (site
    /// [`FaultSite::CheckpointWrite`]). On error, columns already
    /// checkpointed keep their new chunks (each column is independently
    /// consistent); the remainder stay as they were.
    pub fn try_checkpoint(
        &mut self,
        fault: Option<&FaultState>,
    ) -> Result<Vec<(String, ChunkFormat, u64)>, StorageFaultError> {
        let mut verdicts = Vec::with_capacity(self.columns.len());
        let mut sweeps = 0u64;
        for (i, col) in self.columns.iter_mut().enumerate() {
            // Codec-decision cache: the fragment is immutable between
            // reorganizations, so an unchanged epoch means the last
            // verdict (including "stay raw") still holds — nothing is
            // rewritten and the full format sweep is skipped.
            if col.codec_epoch != Some(col.epoch) {
                if let Some(f) = fault {
                    f.check_site(FaultSite::CheckpointWrite, i as u32)?;
                }
                col.compressed = choose_and_compress(&col.data);
                col.codec_epoch = Some(col.epoch);
                sweeps += 1;
                // Torn-write injection: the write "succeeded" but a
                // payload byte is wrong. Nothing errors here — the
                // per-chunk checksum catches it on the next read.
                if let (Some(f), Some(c)) = (fault, col.compressed.as_mut()) {
                    for t in f.take_torn(i as u32) {
                        c.corrupt_payload_byte(t.chunk as usize, t.byte as usize);
                    }
                }
            }
            verdicts.push(match &col.compressed {
                Some(c) => (col.field.name.clone(), c.format(), c.ratio_pct()),
                None => (col.field.name.clone(), ChunkFormat::Raw, 100),
            });
        }
        self.codec_sweeps += sweeps;
        Ok(verdicts)
    }

    /// Full format sweeps run so far — a second `checkpoint()` over an
    /// unchanged table adds zero.
    pub fn codec_sweeps(&self) -> u64 {
        self.codec_sweeps
    }

    /// The durable checkpoint backing this table, if it was opened from
    /// disk or durably checkpointed since the last reorganize. Scans
    /// use it to heal a corrupt compressed chunk from a replica.
    pub fn durable_source(&self) -> Option<&Arc<DurableSource>> {
        self.durable.as_ref()
    }

    /// Durable checkpoint: compress (as [`Table::checkpoint`]), then
    /// persist every column — raw fragment, compressed chunks, and
    /// dictionary — to `dir` with [`DurableOptions::replicas`] copies
    /// each, committed by a versioned manifest written last. A crash at
    /// any point leaves the previous checkpoint fully readable; see
    /// [`Table::open`] for recovery.
    ///
    /// Pending deltas are merged first (`reorganize`) so the persisted
    /// state is the complete table.
    pub fn checkpoint_durable(
        &mut self,
        dir: &Path,
        opts: &DurableOptions,
    ) -> Result<Vec<(String, ChunkFormat, u64)>, DurableError> {
        self.try_checkpoint_durable(dir, opts, None)
    }

    /// Fallible durable checkpoint: every file write step consults the
    /// fault plan ([`FaultSite::DurableChunkWrite`] per chunk file,
    /// [`FaultSite::ManifestWrite`] for the manifest temp-write and the
    /// committing rename) with bounded-backoff retry. On error the
    /// directory may hold orphan files of the aborted version, but the
    /// previous manifest — and therefore the previous checkpoint — is
    /// untouched and fully readable.
    pub fn try_checkpoint_durable(
        &mut self,
        dir: &Path,
        opts: &DurableOptions,
        fault: Option<&FaultState>,
    ) -> Result<Vec<(String, ChunkFormat, u64)>, DurableError> {
        if !self.inserts.is_empty() || !self.deletes.is_empty() {
            self.reorganize();
        }
        let verdicts = self.try_checkpoint(fault)?;
        let source = crate::durable::commit_checkpoint(self, dir, opts, fault)?;
        self.durable = Some(source);
        Ok(verdicts)
    }

    /// Recover a table from its durable checkpoint directory: the
    /// newest manifest that parses and checksums clean wins (a crash
    /// mid-checkpoint leaves its version uncommitted, so recovery falls
    /// back to the previous one), every column loads from the first
    /// replica that passes its whole-file checksum, and bad replicas
    /// are healed in place from a good copy.
    pub fn open(dir: &Path) -> Result<Table, DurableError> {
        Table::try_open(dir, None)
    }

    /// [`Table::open`] with fault injection: replica reads consult
    /// [`FaultSite::DurableChunkRead`] / [`FaultSite::ManifestRead`]
    /// and a read that exhausts its retry budget counts as a bad copy,
    /// falling over to the next replica. A typed error surfaces only
    /// when *all* copies of some column fail.
    pub fn try_open(dir: &Path, fault: Option<&FaultState>) -> Result<Table, DurableError> {
        crate::durable::open_table(dir, fault)
    }

    /// Reorganize when the deltas exceed `threshold` of the table
    /// (paper §4.3: "whenever their size exceeds a (small) percentile of
    /// the total table size, data storage should be reorganized").
    /// Returns whether a reorganization ran.
    pub fn maybe_reorganize(&mut self, threshold: f64) -> bool {
        if self.delta_fraction() > threshold {
            self.reorganize();
            true
        } else {
            false
        }
    }

    /// Rebuild the immutable fragments with all deltas applied: deleted
    /// rows vanish, inserted rows append, enum columns re-encode, summary
    /// indices rebuild, and the delta structures empty (paper §4.3's
    /// "data storage should be reorganized").
    ///
    /// Row ids are re-densified (0..live_rows); callers holding old row
    /// ids (e.g. join indices) must re-derive them.
    pub fn reorganize(&mut self) {
        let live: Vec<u32> = (0..self.total_rows() as u32)
            .filter(|&r| !self.deletes.contains(r))
            .collect();
        let ncols = self.columns.len();
        let mut new_cols = Vec::with_capacity(ncols);
        for i in 0..ncols {
            let old = &self.columns[i];
            // Materialize logical values for live rows.
            let logical = old.field.logical;
            let had_summary = old.summary.is_some();
            let was_enum = old.dict.is_some();
            let was_compressed = old.compressed.is_some();
            let mut values = ColumnData::new(logical);
            for &r in &live {
                values.push_value(&self.column_value(i, r));
            }
            let (data, dict) = if was_enum {
                match &values {
                    ColumnData::Str(s) => match encode_str(
                        s.iter()
                            .map(|x| x.to_owned())
                            .collect::<Vec<_>>()
                            .into_iter(),
                    ) {
                        Some(enc) => (enc.codes, Some(enc.dict)),
                        None => (values, None),
                    },
                    ColumnData::F64(v) => match encode_f64(v) {
                        Some(enc) => (enc.codes, Some(enc.dict)),
                        None => (values, None),
                    },
                    ColumnData::I64(v) => match encode_i64(v) {
                        Some(enc) => (enc.codes, Some(enc.dict)),
                        None => (values, None),
                    },
                    _ => (values, None),
                }
            } else {
                (values, None)
            };
            let summary = if had_summary {
                let widened: Vec<i64> = match &data {
                    ColumnData::I32(v) => v.iter().map(|&x| x as i64).collect(),
                    ColumnData::I64(v) => v.clone(),
                    _ => Vec::new(),
                };
                if widened.is_empty() && !data.is_empty() {
                    None
                } else {
                    Some(SummaryIndex::build(&widened))
                }
            } else {
                None
            };
            // Checkpointed columns stay checkpointed: re-run the format
            // chooser over the merged fragment so the compressed chunks
            // track the data (the chooser may pick a different format
            // for the new value distribution, or fall back to raw).
            let epoch = old.epoch + 1;
            let (compressed, codec_epoch) = if was_compressed {
                self.codec_sweeps += 1;
                (choose_and_compress(&data), Some(epoch))
            } else {
                (None, None)
            };
            let stats = Some(ColumnStats::compute(&data));
            new_cols.push(StoredColumn {
                field: old.field.clone(),
                data,
                dict,
                summary,
                stats,
                compressed,
                epoch,
                codec_epoch,
            });
        }
        self.frag_rows = live.len();
        self.columns = new_cols;
        self.deletes.clear();
        self.inserts.clear();
        // The disk checkpoint describes the *old* fragments; healing
        // from it would resurrect stale rows. Detach until the next
        // durable checkpoint rewrites it.
        self.durable = None;
    }
}

fn gather_codes(vals: &ColumnData, codes: &[u8], out: &mut Vector) {
    match (vals, out) {
        (ColumnData::F64(d), Vector::F64(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::I64(d), Vector::I64(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::I32(d), Vector::I32(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::Str(d), Vector::Str(o)) => {
            for &c in codes {
                o.push(d.get(c as usize));
            }
        }
        (v, o) => panic!(
            "enum decode mismatch: dict {:?}, out {:?}",
            v.scalar_type(),
            o.scalar_type()
        ),
    }
}

fn gather_codes16(vals: &ColumnData, codes: &[u16], out: &mut Vector) {
    match (vals, out) {
        (ColumnData::F64(d), Vector::F64(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::I64(d), Vector::I64(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::I32(d), Vector::I32(o)) => o.extend(codes.iter().map(|&c| d[c as usize])),
        (ColumnData::Str(d), Vector::Str(o)) => {
            for &c in codes {
                o.push(d.get(c as usize));
            }
        }
        (v, o) => panic!(
            "enum decode mismatch: dict {:?}, out {:?}",
            v.scalar_type(),
            o.scalar_type()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        TableBuilder::new("t")
            .column("id", ColumnData::I64((0..10).collect()))
            .auto_enum_str(
                "flag",
                (0..10)
                    .map(|i| if i % 2 == 0 { "A".into() } else { "B".into() })
                    .collect(),
            )
            .column(
                "price",
                ColumnData::F64((0..10).map(|i| i as f64 * 1.5).collect()),
            )
            .build()
    }

    #[test]
    fn build_and_inspect() {
        let t = small_table();
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.fragment_rows(), 10);
        assert_eq!(t.live_rows(), 10);
        assert_eq!(t.column_index("price"), Some(2));
        assert_eq!(t.column_by_name("flag").physical_type(), ScalarType::U8);
        assert_eq!(t.column_by_name("flag").field().logical, ScalarType::Str);
        assert!(t.column_by_name("flag").dict().is_some());
    }

    #[test]
    fn read_logical_decodes_enums() {
        let t = small_table();
        let mut v = Vector::with_capacity(ScalarType::Str, 4);
        t.read_logical(1, 2, 4, &mut v);
        assert_eq!(
            v.as_str().iter().collect::<Vec<_>>(),
            vec!["A", "B", "A", "B"]
        );
    }

    #[test]
    fn insert_delete_update_lifecycle() {
        let mut t = small_table();
        let id = t.insert(&[Value::I64(100), Value::Str("C".into()), Value::F64(9.9)]);
        assert_eq!(id, 10);
        assert_eq!(t.live_rows(), 11);
        assert_eq!(
            t.get_row(10),
            vec![Value::I64(100), Value::Str("C".into()), Value::F64(9.9)]
        );

        assert!(t.delete(3));
        assert!(!t.delete(3));
        assert_eq!(t.live_rows(), 10);

        let new_id = t
            .update(
                10,
                &[Value::I64(101), Value::Str("D".into()), Value::F64(1.0)],
            )
            .expect("exists");
        assert_eq!(new_id, 11);
        assert_eq!(t.live_rows(), 10);
        assert!(t.update(99, &[]).is_none());
    }

    #[test]
    fn gather_logical_mixed_regions() {
        let mut t = small_table();
        t.insert(&[Value::I64(42), Value::Str("Z".into()), Value::F64(0.5)]);
        let mut v = Vector::with_capacity(ScalarType::I64, 3);
        t.gather_logical(0, &[0, 10, 5], &mut v);
        assert_eq!(v.as_i64(), &[0, 42, 5]);
        let mut s = Vector::with_capacity(ScalarType::Str, 2);
        t.gather_logical(1, &[10, 1], &mut s);
        assert_eq!(s.as_str().get(0), "Z");
        assert_eq!(s.as_str().get(1), "B");
    }

    #[test]
    fn reorganize_applies_deltas() {
        let mut t = small_table();
        t.delete(0);
        t.delete(9);
        t.insert(&[Value::I64(77), Value::Str("B".into()), Value::F64(7.7)]);
        assert!(t.delta_fraction() > 0.0);
        t.reorganize();
        assert_eq!(t.fragment_rows(), 9);
        assert_eq!(t.delta_rows(), 0);
        assert_eq!(t.deletes().len(), 0);
        assert_eq!(t.delta_fraction(), 0.0);
        // Row ids are densified: first live row was old rowid 1.
        assert_eq!(t.get_row(0)[0], Value::I64(1));
        // The inserted row is last and re-encoded into the enum column.
        assert_eq!(
            t.get_row(8),
            vec![Value::I64(77), Value::Str("B".into()), Value::F64(7.7)]
        );
        assert!(
            t.column(1).dict().is_some(),
            "enum column stays enum after reorganize"
        );
    }

    #[test]
    fn maybe_reorganize_thresholds() {
        let mut t = small_table();
        t.insert(&[Value::I64(100), Value::Str("A".into()), Value::F64(0.0)]);
        // 1 delta row of 11 total ≈ 9%.
        assert!(!t.maybe_reorganize(0.5), "below threshold: no reorganize");
        assert_eq!(t.delta_rows(), 1);
        assert!(t.maybe_reorganize(0.05), "above threshold: reorganizes");
        assert_eq!(t.delta_rows(), 0);
        assert_eq!(t.fragment_rows(), 11);
    }

    #[test]
    fn summary_survives_reorganize() {
        let mut t = TableBuilder::new("dates")
            .column("d", ColumnData::I32((0..5000).collect()))
            .with_summary()
            .build();
        assert!(t.column(0).summary().is_some());
        t.insert(&[Value::I32(5000)]);
        t.reorganize();
        let s = t.column(0).summary().expect("rebuilt");
        let (lo, hi) = s.range_candidates(Some(4999), None);
        assert!(lo >= 4000 && hi == 5001);
    }

    #[test]
    fn byte_size_counts_dict_and_deltas() {
        let mut t = small_table();
        let before = t.byte_size();
        t.insert(&[Value::I64(1), Value::Str("Q".into()), Value::F64(0.0)]);
        assert!(t.byte_size() > before);
    }

    #[test]
    fn checkpoint_compresses_paying_columns() {
        let mut t = TableBuilder::new("t")
            .column("key", ColumnData::I64((0..100_000).collect()))
            .column(
                "price",
                ColumnData::F64((0..100_000).map(|i| (i % 9000) as f64 / 100.0).collect()),
            )
            .build();
        assert!(t.column(0).compressed().is_none());
        let verdicts = t.checkpoint();
        assert_eq!(verdicts.len(), 2);
        let key = t.column(0).compressed().expect("sorted keys compress");
        assert_eq!(key.format(), ChunkFormat::PforDelta);
        let price = t.column(1).compressed().expect("cents compress");
        assert!(price.ratio_pct() < 50);
        assert_eq!(price.rows(), t.fragment_rows());
    }

    #[test]
    fn checkpoint_caches_codec_decision_per_epoch() {
        let mut t = TableBuilder::new("t")
            .column("key", ColumnData::I64((0..100_000).collect()))
            .column(
                "price",
                ColumnData::F64((0..100_000).map(|i| (i % 9000) as f64 / 100.0).collect()),
            )
            .build();
        let first = t.checkpoint();
        assert_eq!(t.codec_sweeps(), 2, "cold start sweeps every column");
        // Unchanged fragments: the verdicts replay from the cache.
        let second = t.checkpoint();
        assert_eq!(t.codec_sweeps(), 2, "no fragment changed, no sweep");
        assert_eq!(first, second);
        assert!(t.column(0).compressed().is_some());
        // Deltas alone don't invalidate (they live outside the
        // fragments); a reorganize rebuilds the fragment and re-sweeps.
        t.insert(&[Value::I64(100_000), Value::F64(1.0)]);
        t.checkpoint();
        assert_eq!(t.codec_sweeps(), 2, "delta rows don't bump the epoch");
        t.reorganize();
        assert_eq!(t.codec_sweeps(), 4, "reorganize re-ran the chooser");
        t.checkpoint();
        assert_eq!(t.codec_sweeps(), 4, "reorganize verdict is already cached");
        assert_eq!(
            t.column(0).compressed().expect("still compressed").rows(),
            t.fragment_rows()
        );
    }

    #[test]
    fn reorganize_preserves_checkpoint() {
        let mut t = small_table();
        t.checkpoint();
        let before: Vec<bool> = (0..t.num_columns())
            .map(|i| t.column(i).compressed().is_some())
            .collect();
        t.delete(0);
        t.insert(&[Value::I64(50), Value::Str("A".into()), Value::F64(5.0)]);
        t.reorganize();
        assert_eq!(t.delta_rows(), 0);
        for (i, was) in before.iter().enumerate() {
            if *was {
                let c = t.column(i).compressed().expect("still checkpointed");
                assert_eq!(c.rows(), t.fragment_rows());
            }
        }
        // Never-checkpointed tables stay uncompressed through reorganize.
        let mut u = small_table();
        u.insert(&[Value::I64(11), Value::Str("B".into()), Value::F64(1.0)]);
        u.reorganize();
        assert!(u.column(0).compressed().is_none());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn checkpoint_write_faults_surface() {
        use crate::columnbm::FaultPlan;
        let mut t = small_table();
        let plan = FaultPlan {
            checkpoint_fault_rate: 1.0,
            max_retries: 2,
            backoff_base_us: 0,
            ..FaultPlan::default()
        };
        let fs = FaultState::new(plan);
        let err = t.try_checkpoint(Some(&fs)).expect_err("always faults");
        assert_eq!(err.site, FaultSite::CheckpointWrite);
        assert_eq!(err.attempts, 3);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn torn_checkpoint_write_caught_by_checksum() {
        use crate::columnbm::FaultPlan;
        use crate::compress::DecodeCursor;
        use x100_vector::Vector;
        let mut t = TableBuilder::new("t")
            .column(
                "key",
                ColumnData::I64((0..200_000).map(|i| i % 7000).collect()),
            )
            .build();
        // The write itself succeeds — no error here, just silent damage.
        let fs = FaultState::new(FaultPlan::default().tear(0, 1, 9));
        t.try_checkpoint(Some(&fs))
            .expect("torn writes don't error");
        assert_eq!(fs.injected(), 1);
        let c = t.column(0).compressed().expect("column compressed");
        // An untouched chunk decodes fine; the torn one is refused with
        // a checksum mismatch, so wrong rows can never escape.
        let mut v = Vector::zeroed(ScalarType::I64, 0);
        let mut cur = DecodeCursor::default();
        let mut scratch = Vec::new();
        c.decode_range(0, 1024, &mut v, &mut cur, &mut scratch)
            .expect("chunk 0 is intact");
        let err = c
            .decode_range(65_536, 1024, &mut v, &mut cur, &mut scratch)
            .expect_err("chunk 1 is torn");
        assert!(err.contains("checksum mismatch"), "typed mismatch: {err}");
        // The raw fragment is untouched: recovery reads stay correct.
        t.read_logical(0, 65_536, 4, &mut v);
        assert_eq!(
            v.as_i64()[..4],
            [65_536 % 7000, 65_537 % 7000, 65_538 % 7000, 65_539 % 7000]
        );
    }

    #[test]
    fn stats_harvested_at_build_and_widened_by_deltas() {
        let mut t = small_table();
        let id = t.column_stats(0).expect("built tables carry stats");
        assert_eq!(id.min, Some(Value::I64(0)));
        assert_eq!(id.max, Some(Value::I64(9)));
        assert!(id.sorted);
        // Enum stats cover the physical codes ("A"/"B" → 0/1).
        let flag = t.column_stats(1).expect("code stats");
        assert_eq!(flag.min, Some(Value::U8(0)));
        assert_eq!(flag.max, Some(Value::U8(1)));
        // Deletes don't widen (subset of the fragment)…
        t.delete(3);
        assert!(t.column_stats(0).is_some());
        // …but pending insert-delta rows do: they bypass the fragment.
        t.insert(&[Value::I64(999), Value::Str("A".into()), Value::F64(0.0)]);
        assert!(t.column_stats(0).is_none(), "delta rows widen stats");
        // Reorganize merges deltas and recomputes exact stats.
        t.reorganize();
        let id = t.column_stats(0).expect("recomputed");
        assert_eq!(id.max, Some(Value::I64(999)));
        assert!(id.sorted, "999 appended after an ascending prefix");
    }

    #[test]
    fn stats_edge_cases() {
        let empty = ColumnStats::compute(&ColumnData::I32(vec![]));
        assert_eq!(empty.min, None);
        assert!(empty.sorted);
        let nan = ColumnStats::compute(&ColumnData::F64(vec![1.0, f64::NAN]));
        assert_eq!(nan.min, None);
        assert!(!nan.sorted);
        let f = ColumnStats::compute(&ColumnData::F64(vec![2.5, 1.5, 3.5]));
        assert_eq!(f.min, Some(Value::F64(1.5)));
        assert_eq!(f.max, Some(Value::F64(3.5)));
        assert!(!f.sorted);
    }

    #[test]
    #[should_panic]
    fn get_deleted_row_panics() {
        let mut t = small_table();
        t.delete(2);
        t.get_row(2);
    }
}
