//! Durable chunk store: crash-consistent checkpoints with replicated
//! self-healing recovery (DESIGN.md §14).
//!
//! A durable checkpoint is a per-table directory holding one file per
//! (column, replica) pair plus a versioned manifest:
//!
//! ```text
//! manifest-0000000003.xman        committed checkpoint version 3
//! col000-v0000000003-r0.chunks    column 0, replica 0
//! col000-v0000000003-r1.chunks    column 0, replica 1
//! col001-v0000000003-r0.chunks    ...
//! ```
//!
//! Every file is written temp → fsync → atomic-rename → directory
//! fsync, and the manifest is written *last*, so the manifest's
//! existence implies every file it names is complete. A crash at any
//! write step leaves either no manifest for the new version (recovery
//! uses the previous one, still fully readable) or a committed version
//! whose files all made it. Orphan `.tmp` and stale-version files are
//! pruned on the next successful commit.
//!
//! Each chunk file carries the column's raw fragment, its compressed
//! rewrite (the XCPC stream of `compress.rs`, when the codec chooser
//! found a paying format), and its enum dictionary, sealed by a
//! trailing whole-file fold checksum. [`DurableOptions::replicas`]
//! (default 2) copies of every file are kept: a checksum, torn-write,
//! or IO failure on one copy transparently heals from another —
//! rewriting the bad copy in place and counting `chunk_heals` — and a
//! typed [`DurableError::Io`] surfaces only when *all* copies fail.

use crate::column::ColumnData;
use crate::columnbm::{retry_with_backoff, FaultSite, FaultState, StorageFaultError};
use crate::compress::{fold_checksum, scalar_from_tag, scalar_tag, ByteReader, CompressedColumn};
use crate::delta::{DeleteList, InsertDelta};
use crate::enumcol::EnumDict;
use crate::summary::SummaryIndex;
use crate::table::{ColumnStats, Field, StoredColumn, Table};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use x100_vector::ScalarType;

/// Magic + version of one on-disk column-replica file.
const CHUNK_MAGIC: &[u8; 4] = b"XDCF";
/// Magic + version of the committing manifest.
const MANIFEST_MAGIC: &[u8; 4] = b"XMAN";
const FORMAT_VERSION: u8 = 1;

/// Retry budget for *real* IO errors when no fault plan supplies one
/// (mirrors `FaultPlan::default()`).
const DEFAULT_MAX_RETRIES: u32 = 6;
const DEFAULT_BACKOFF_US: u64 = 20;

/// Tuning knobs of the durable checkpoint path.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Copies kept of every chunk file. With 2 (the default) any
    /// single-copy corruption heals transparently; 1 disables
    /// replication (a bad file is unrecoverable).
    pub replicas: u32,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { replicas: 2 }
    }
}

impl DurableOptions {
    /// Set the replication factor (clamped to at least 1).
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas.max(1);
        self
    }
}

/// A durable-store failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An IO step kept failing after its retry budget — or, on read,
    /// *every* replica of some file failed.
    Io {
        /// The fault site of the failing step.
        site: FaultSite,
        /// Human-readable description (path, attempts, cause).
        detail: String,
    },
    /// The directory holds no committed checkpoint this code can read
    /// (missing, unparseable, or checksum-bad manifests).
    Corrupt(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { site, detail } => {
                write!(f, "durable io failure at {site}: {detail}")
            }
            DurableError::Corrupt(d) => write!(f, "durable store corrupt: {d}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StorageFaultError> for DurableError {
    fn from(e: StorageFaultError) -> Self {
        DurableError::Io {
            site: e.site,
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Raw ColumnData serialization (type tag + rows + LE values)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_column_data(data: &ColumnData, out: &mut Vec<u8>) {
    out.push(scalar_tag(data.scalar_type()));
    put_u64(out, data.len() as u64);
    fn ints<T: Copy, const W: usize>(v: &[T], le: impl Fn(T) -> [u8; W], out: &mut Vec<u8>) {
        out.reserve(v.len() * W);
        for &x in v {
            out.extend_from_slice(&le(x));
        }
    }
    match data {
        ColumnData::I8(v) => ints(v, i8::to_le_bytes, out),
        ColumnData::I16(v) => ints(v, i16::to_le_bytes, out),
        ColumnData::I32(v) => ints(v, i32::to_le_bytes, out),
        ColumnData::I64(v) => ints(v, i64::to_le_bytes, out),
        ColumnData::U8(v) => ints(v, u8::to_le_bytes, out),
        ColumnData::U16(v) => ints(v, u16::to_le_bytes, out),
        ColumnData::U32(v) => ints(v, u32::to_le_bytes, out),
        ColumnData::U64(v) => ints(v, u64::to_le_bytes, out),
        ColumnData::F64(v) => ints(v, f64::to_le_bytes, out),
        ColumnData::Str(s) => {
            for x in s.iter() {
                put_u32(out, x.len() as u32);
                out.extend_from_slice(x.as_bytes());
            }
        }
    }
}

fn decode_column_data(r: &mut ByteReader<'_>) -> Result<ColumnData, String> {
    let ty = scalar_from_tag(r.u8()?)?;
    let rows = r.u64()? as usize;
    fn ints<T: Copy, const W: usize>(
        r: &mut ByteReader<'_>,
        rows: usize,
        de: impl Fn([u8; W]) -> T,
    ) -> Result<Vec<T>, String> {
        let s = r.take(rows * W)?;
        Ok(s.chunks_exact(W)
            .map(|c| {
                let mut b = [0u8; W];
                b.copy_from_slice(c);
                de(b)
            })
            .collect())
    }
    Ok(match ty {
        ScalarType::I8 => ColumnData::I8(ints(r, rows, i8::from_le_bytes)?),
        ScalarType::I16 => ColumnData::I16(ints(r, rows, i16::from_le_bytes)?),
        ScalarType::I32 => ColumnData::I32(ints(r, rows, i32::from_le_bytes)?),
        ScalarType::I64 => ColumnData::I64(ints(r, rows, i64::from_le_bytes)?),
        ScalarType::U8 => ColumnData::U8(ints(r, rows, u8::from_le_bytes)?),
        ScalarType::U16 => ColumnData::U16(ints(r, rows, u16::from_le_bytes)?),
        ScalarType::U32 => ColumnData::U32(ints(r, rows, u32::from_le_bytes)?),
        ScalarType::U64 => ColumnData::U64(ints(r, rows, u64::from_le_bytes)?),
        ScalarType::F64 => ColumnData::F64(ints(r, rows, f64::from_le_bytes)?),
        ScalarType::Str => {
            let mut col = ColumnData::new(ScalarType::Str);
            let ColumnData::Str(sv) = &mut col else {
                unreachable!("ColumnData::new(Str) is Str");
            };
            for _ in 0..rows {
                let n = r.u32()? as usize;
                let bytes = r.take(n)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| format!("non-UTF-8 string payload: {e}"))?;
                sv.push(s);
            }
            col
        }
        ScalarType::Bool => return Err("bool columns are not storable".into()),
    })
}

// ---------------------------------------------------------------------------
// Chunk file (one column replica): XDCF
// ---------------------------------------------------------------------------

/// Everything one column replica file decodes to.
struct ColFile {
    col: u32,
    rows: u64,
    logical: ScalarType,
    data: ColumnData,
    compressed: Option<CompressedColumn>,
    dict: Option<ColumnData>,
    has_summary: bool,
    /// Whether the codec chooser's verdict (including "stay raw") was
    /// current at checkpoint time — restores the sweep cache at open.
    codec_done: bool,
}

fn encode_col_file(col: u32, sc: &StoredColumn) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(CHUNK_MAGIC);
    b.push(FORMAT_VERSION);
    put_u32(&mut b, col);
    put_u64(&mut b, sc.data.len() as u64);
    b.push(scalar_tag(sc.field.logical));
    b.push(u8::from(sc.summary.is_some()));
    b.push(u8::from(sc.codec_epoch == Some(sc.epoch)));
    let mut raw = Vec::new();
    encode_column_data(&sc.data, &mut raw);
    put_u64(&mut b, raw.len() as u64);
    b.extend_from_slice(&raw);
    match &sc.compressed {
        Some(c) => {
            b.push(1);
            let blob = c.to_bytes();
            put_u64(&mut b, blob.len() as u64);
            b.extend_from_slice(&blob);
        }
        None => b.push(0),
    }
    match &sc.dict {
        Some(d) => {
            b.push(1);
            let mut dv = Vec::new();
            encode_column_data(d.values(), &mut dv);
            put_u64(&mut b, dv.len() as u64);
            b.extend_from_slice(&dv);
        }
        None => b.push(0),
    }
    let sum = fold_checksum(&b);
    b.push(sum);
    b
}

fn decode_col_file(bytes: &[u8]) -> Result<ColFile, String> {
    let Some((&sum, body)) = bytes.split_last() else {
        return Err("empty chunk file".into());
    };
    let got = fold_checksum(body);
    if got != sum {
        return Err(format!(
            "file checksum mismatch: trailer 0x{sum:02x}, body 0x{got:02x} (torn write)"
        ));
    }
    let mut r = ByteReader { b: body, at: 0 };
    if r.take(4)? != CHUNK_MAGIC {
        return Err("bad chunk-file magic".into());
    }
    if r.u8()? != FORMAT_VERSION {
        return Err("unsupported chunk-file version".into());
    }
    let col = r.u32()?;
    let rows = r.u64()?;
    let logical = scalar_from_tag(r.u8()?)?;
    let has_summary = r.u8()? != 0;
    let codec_done = r.u8()? != 0;
    let raw_len = r.u64()? as usize;
    let raw = r.take(raw_len)?;
    let data = decode_column_data(&mut ByteReader { b: raw, at: 0 })?;
    if data.len() as u64 != rows {
        return Err(format!(
            "row count mismatch: header {rows}, payload {}",
            data.len()
        ));
    }
    let compressed = if r.u8()? != 0 {
        let n = r.u64()? as usize;
        let blob = r.take(n)?;
        Some(CompressedColumn::from_bytes(blob)?)
    } else {
        None
    };
    let dict = if r.u8()? != 0 {
        let n = r.u64()? as usize;
        let dv = r.take(n)?;
        Some(decode_column_data(&mut ByteReader { b: dv, at: 0 })?)
    } else {
        None
    };
    Ok(ColFile {
        col,
        rows,
        logical,
        data,
        compressed,
        dict,
        has_summary,
        codec_done,
    })
}

// ---------------------------------------------------------------------------
// Manifest: XMAN
// ---------------------------------------------------------------------------

/// One column's entry in a committed manifest.
#[derive(Debug, Clone)]
struct ManifestCol {
    name: String,
    /// Size of the (identical) replica files, trailer included.
    file_bytes: u64,
    /// The file's trailing fold checksum — cross-checked at open so a
    /// stale or swapped file cannot impersonate a committed one.
    checksum: u8,
}

#[derive(Debug, Clone)]
struct Manifest {
    version: u64,
    replicas: u32,
    table: String,
    frag_rows: u64,
    cols: Vec<ManifestCol>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(MANIFEST_MAGIC);
    b.push(FORMAT_VERSION);
    put_u64(&mut b, m.version);
    put_u32(&mut b, m.replicas);
    put_u32(&mut b, m.table.len() as u32);
    b.extend_from_slice(m.table.as_bytes());
    put_u64(&mut b, m.frag_rows);
    put_u32(&mut b, m.cols.len() as u32);
    for c in &m.cols {
        put_u32(&mut b, c.name.len() as u32);
        b.extend_from_slice(c.name.as_bytes());
        put_u64(&mut b, c.file_bytes);
        b.push(c.checksum);
    }
    let sum = fold_checksum(&b);
    b.push(sum);
    b
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, String> {
    let Some((&sum, body)) = bytes.split_last() else {
        return Err("empty manifest".into());
    };
    let got = fold_checksum(body);
    if got != sum {
        return Err(format!(
            "manifest checksum mismatch: trailer 0x{sum:02x}, body 0x{got:02x}"
        ));
    }
    let mut r = ByteReader { b: body, at: 0 };
    if r.take(4)? != MANIFEST_MAGIC {
        return Err("bad manifest magic".into());
    }
    if r.u8()? != FORMAT_VERSION {
        return Err("unsupported manifest version".into());
    }
    let version = r.u64()?;
    let replicas = r.u32()?;
    let name_len = r.u32()? as usize;
    let table = std::str::from_utf8(r.take(name_len)?)
        .map_err(|e| format!("non-UTF-8 table name: {e}"))?
        .to_owned();
    let frag_rows = r.u64()?;
    let ncols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let n = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(n)?)
            .map_err(|e| format!("non-UTF-8 column name: {e}"))?
            .to_owned();
        let file_bytes = r.u64()?;
        let checksum = r.u8()?;
        cols.push(ManifestCol {
            name,
            file_bytes,
            checksum,
        });
    }
    Ok(Manifest {
        version,
        replicas,
        table,
        frag_rows,
        cols,
    })
}

// ---------------------------------------------------------------------------
// File naming + atomic write
// ---------------------------------------------------------------------------

fn manifest_name(version: u64) -> String {
    format!("manifest-{version:010}.xman")
}

fn col_file_name(col: u32, version: u64, replica: u32) -> String {
    format!("col{col:03}-v{version:010}-r{replica}.chunks")
}

/// Parse `manifest-{v}.xman` back to `v`.
fn parse_manifest_name(name: &str) -> Option<u64> {
    let v = name.strip_prefix("manifest-")?.strip_suffix(".xman")?;
    v.parse().ok()
}

/// Parse `colNNN-vVVV-rR.chunks` back to its version.
fn parse_col_file_version(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("col")?.strip_suffix(".chunks")?;
    let (_, rest) = rest.split_once("-v")?;
    let (v, _) = rest.split_once("-r")?;
    v.parse().ok()
}

fn io_budget(fault: Option<&FaultState>) -> (u32, u64) {
    match fault {
        Some(f) => (f.plan().max_retries, f.plan().backoff_base_us),
        None => (DEFAULT_MAX_RETRIES, DEFAULT_BACKOFF_US),
    }
}

/// Read one file with bounded-backoff retry over real IO errors.
fn read_file_retrying(
    path: &Path,
    fault: Option<&FaultState>,
    site: FaultSite,
) -> Result<Vec<u8>, DurableError> {
    let (max_retries, backoff) = io_budget(fault);
    retry_with_backoff(max_retries, backoff, |_| std::fs::read(path)).map_or_else(
        |(e, attempts)| {
            Err(DurableError::Io {
                site,
                detail: format!("{}: {e} after {attempts} attempts", path.display()),
            })
        },
        |(bytes, _)| Ok(bytes),
    )
}

/// Write `bytes` to `dir/name` crash-consistently: temp file → fsync →
/// atomic rename → directory fsync. Two fault checks model the two
/// points a dying process can leave distinct on-disk states — before
/// the temp file is complete (a stray `.tmp`, ignored by recovery) and
/// before the rename (the final name never appears). Real IO errors
/// retry with the same bounded-backoff budget.
fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    site: FaultSite,
    fault: Option<&FaultState>,
) -> Result<(), DurableError> {
    let (max_retries, backoff) = io_budget(fault);
    let tmp = dir.join(format!("{name}.tmp"));
    let fin = dir.join(name);

    // Kill-point 1: died before the temp write finished. A partial
    // `.tmp` may remain; recovery never reads `.tmp` files.
    if let Some(f) = fault {
        f.check_site(site, 0)?;
    }
    let write_step = |_| -> std::io::Result<()> {
        let mut fh = std::fs::File::create(&tmp)?;
        fh.write_all(bytes)?;
        fh.sync_all()
    };
    if let Err((e, attempts)) = retry_with_backoff(max_retries, backoff, write_step) {
        return Err(DurableError::Io {
            site,
            detail: format!("{}: {e} after {attempts} attempts", tmp.display()),
        });
    }

    // Kill-point 2: died between the temp write and the commit rename.
    // The final name never appears; the previous version is untouched.
    if let Some(f) = fault {
        f.check_site(site, 0)?;
    }
    let rename_step = |_| -> std::io::Result<()> {
        std::fs::rename(&tmp, &fin)?;
        // Persist the directory entry itself; without this a crash can
        // forget the rename even though the data blocks survived.
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    };
    if let Err((e, attempts)) = retry_with_backoff(max_retries, backoff, rename_step) {
        return Err(DurableError::Io {
            site,
            detail: format!("{}: {e} after {attempts} attempts", fin.display()),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Commit (checkpoint write path)
// ---------------------------------------------------------------------------

/// Largest committed (or orphaned) version present in `dir`, from both
/// manifest and chunk-file names — a new commit must outnumber aborted
/// attempts too, or their orphan files could collide with ours.
fn newest_version_in_dir(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut newest = 0;
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(v) = parse_manifest_name(name).or_else(|| parse_col_file_version(name)) {
            newest = newest.max(v);
        }
    }
    newest
}

/// Persist every column of `table` to `dir` as checkpoint version
/// `newest + 1`: all chunk files first (each `opts.replicas` times),
/// the manifest last. Returns the [`DurableSource`] describing the
/// committed version. Called by [`Table::try_checkpoint_durable`].
pub(crate) fn commit_checkpoint(
    table: &Table,
    dir: &Path,
    opts: &DurableOptions,
    fault: Option<&FaultState>,
) -> Result<Arc<DurableSource>, DurableError> {
    std::fs::create_dir_all(dir).map_err(|e| DurableError::Io {
        site: FaultSite::DurableChunkWrite,
        detail: format!("create {}: {e}", dir.display()),
    })?;
    let replicas = opts.replicas.max(1);
    let version = newest_version_in_dir(dir) + 1;
    let mut cols = Vec::with_capacity(table.columns.len());
    for (i, sc) in table.columns.iter().enumerate() {
        let bytes = encode_col_file(i as u32, sc);
        let checksum = bytes.last().copied().unwrap_or(0);
        for r in 0..replicas {
            write_atomic(
                dir,
                &col_file_name(i as u32, version, r),
                &bytes,
                FaultSite::DurableChunkWrite,
                fault,
            )?;
        }
        cols.push(ManifestCol {
            name: sc.field.name.clone(),
            file_bytes: bytes.len() as u64,
            checksum,
        });
    }
    let manifest = Manifest {
        version,
        replicas,
        table: table.name.clone(),
        frag_rows: table.frag_rows as u64,
        cols,
    };
    write_atomic(
        dir,
        &manifest_name(version),
        &encode_manifest(&manifest),
        FaultSite::ManifestWrite,
        fault,
    )?;
    prune_stale(dir, version);
    Ok(Arc::new(DurableSource::new(dir.to_path_buf(), manifest)))
}

/// Best-effort cleanup after a successful commit: older versions'
/// manifests and chunk files, plus `.tmp` orphans of crashed attempts.
/// Failures are ignored — stale files cost disk, never correctness.
fn prune_stale(dir: &Path, keep_version: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = name.ends_with(".tmp")
            || parse_manifest_name(name).is_some_and(|v| v < keep_version)
            || parse_col_file_version(name).is_some_and(|v| v != keep_version);
        if stale {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

// ---------------------------------------------------------------------------
// Open (recovery path)
// ---------------------------------------------------------------------------

/// Read one column of manifest version `m` from the first replica that
/// passes validation, healing bad copies from the good one. Returns the
/// decoded file plus how many replicas were rewritten.
fn read_column_replicas(
    dir: &Path,
    m: &Manifest,
    col: u32,
    fault: Option<&FaultState>,
) -> Result<(ColFile, u64), DurableError> {
    let meta = &m.cols[col as usize];
    let mut bad: Vec<PathBuf> = Vec::new();
    let mut last_err = String::new();
    for r in 0..m.replicas {
        let path = dir.join(col_file_name(col, m.version, r));
        // A read fault that exhausts its retry budget marks this copy
        // bad and falls over to the next replica — replication is the
        // second line of defense after retry.
        if let Some(f) = fault {
            if let Err(e) = f.check_site(FaultSite::DurableChunkRead, col) {
                last_err = e.to_string();
                bad.push(path);
                continue;
            }
        }
        let bytes = match read_file_retrying(&path, fault, FaultSite::DurableChunkRead) {
            Ok(b) => b,
            Err(e) => {
                last_err = e.to_string();
                bad.push(path);
                continue;
            }
        };
        let valid = if bytes.len() as u64 != meta.file_bytes {
            Err(format!(
                "size mismatch: manifest {} bytes, file {}",
                meta.file_bytes,
                bytes.len()
            ))
        } else if bytes.last() != Some(&meta.checksum) {
            Err("checksum differs from manifest".into())
        } else {
            decode_col_file(&bytes).and_then(|cf| {
                if cf.col != col || cf.rows != m.frag_rows {
                    Err(format!(
                        "file identifies as col {} × {} rows, manifest says col {col} × {}",
                        cf.col, cf.rows, m.frag_rows
                    ))
                } else {
                    Ok(cf)
                }
            })
        };
        match valid {
            Ok(cf) => {
                // Heal: rewrite every bad copy seen so far from this
                // good one. Best-effort — a failed heal leaves the bad
                // copy for the next open to retry.
                let mut heals = 0;
                for bp in &bad {
                    let Some(name) = bp.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    if write_atomic(dir, name, &bytes, FaultSite::DurableChunkWrite, fault).is_ok()
                    {
                        heals += 1;
                    }
                }
                return Ok((cf, heals));
            }
            Err(e) => {
                last_err = format!("{}: {e}", path.display());
                bad.push(path);
            }
        }
    }
    Err(DurableError::Io {
        site: FaultSite::DurableChunkRead,
        detail: format!(
            "column {col} (`{}`): all {} replicas failed; last: {last_err}",
            meta.name, m.replicas
        ),
    })
}

/// Rebuild a [`StoredColumn`] from a decoded replica file: dictionary
/// re-wrapped, summary index and fragment stats recomputed (both are
/// derived data — cheaper to rebuild than to verify).
fn restore_column(cf: ColFile) -> Result<StoredColumn, DurableError> {
    let dict = cf.dict.map(EnumDict::new);
    let logical = match &dict {
        Some(d) => d.value_type(),
        None => cf.data.scalar_type(),
    };
    if logical != cf.logical {
        return Err(DurableError::Corrupt(format!(
            "column {}: logical type {:?} does not match payload {:?}",
            cf.col, cf.logical, logical
        )));
    }
    let summary = if cf.has_summary {
        let widened: Vec<i64> = match &cf.data {
            ColumnData::I32(v) => v.iter().map(|&x| x as i64).collect(),
            ColumnData::I64(v) => v.clone(),
            _ => Vec::new(),
        };
        if widened.is_empty() && !cf.data.is_empty() {
            None
        } else {
            Some(SummaryIndex::build(&widened))
        }
    } else {
        None
    };
    let stats = Some(ColumnStats::compute(&cf.data));
    Ok(StoredColumn {
        field: Field {
            name: String::new(), // patched from the manifest by the caller
            logical,
        },
        data: cf.data,
        dict,
        summary,
        stats,
        compressed: cf.compressed,
        epoch: 0,
        codec_epoch: cf.codec_done.then_some(0),
    })
}

/// Recover a table from `dir`: newest valid manifest wins, every column
/// loads from its first good replica (healing the rest). Called by
/// [`Table::try_open`].
pub(crate) fn open_table(dir: &Path, fault: Option<&FaultState>) -> Result<Table, DurableError> {
    let entries = std::fs::read_dir(dir).map_err(|e| DurableError::Io {
        site: FaultSite::ManifestRead,
        detail: format!("read dir {}: {e}", dir.display()),
    })?;
    let mut versions: Vec<u64> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().and_then(parse_manifest_name))
        .collect();
    versions.sort_unstable();
    versions.reverse();
    if versions.is_empty() {
        return Err(DurableError::Corrupt(format!(
            "no manifest in {}",
            dir.display()
        )));
    }
    let mut last_err = String::new();
    for v in versions {
        // A manifest-read fault past its retry budget is a hard error
        // (the site models the directory being unreadable, not one
        // stale file); a *corrupt* manifest falls back a version.
        if let Some(f) = fault {
            f.check_site(FaultSite::ManifestRead, 0)?;
        }
        let bytes =
            read_file_retrying(&dir.join(manifest_name(v)), fault, FaultSite::ManifestRead)?;
        let manifest = match decode_manifest(&bytes) {
            Ok(m) if m.version == v => m,
            Ok(m) => {
                last_err = format!("manifest {v} claims version {}", m.version);
                continue;
            }
            Err(e) => {
                last_err = format!("manifest {v}: {e}");
                continue;
            }
        };
        return open_from_manifest(dir, manifest, fault);
    }
    Err(DurableError::Corrupt(format!(
        "no valid manifest in {}: {last_err}",
        dir.display()
    )))
}

fn open_from_manifest(
    dir: &Path,
    manifest: Manifest,
    fault: Option<&FaultState>,
) -> Result<Table, DurableError> {
    let mut columns = Vec::with_capacity(manifest.cols.len());
    let mut heals = 0u64;
    for i in 0..manifest.cols.len() as u32 {
        let (cf, h) = read_column_replicas(dir, &manifest, i, fault)?;
        heals += h;
        let mut sc = restore_column(cf)?;
        sc.field.name = manifest.cols[i as usize].name.clone();
        columns.push(sc);
    }
    let types: Vec<ScalarType> = columns.iter().map(|c| c.field.logical).collect();
    let source = DurableSource::new(dir.to_path_buf(), manifest.clone());
    source.heals.fetch_add(heals, Ordering::SeqCst);
    Ok(Table {
        name: manifest.table,
        columns,
        frag_rows: manifest.frag_rows as usize,
        deletes: DeleteList::default(),
        inserts: InsertDelta::new(&types),
        codec_sweeps: 0,
        durable: Some(Arc::new(source)),
    })
}

// ---------------------------------------------------------------------------
// DurableSource: mid-query self-healing
// ---------------------------------------------------------------------------

/// Handle to the committed checkpoint backing an open table.
///
/// Scans hold it through `Table::durable_source()`: when a compressed
/// chunk fails its checksum mid-query (in-memory torn write, bit rot),
/// [`DurableSource::recover_column`] re-reads the column from a disk
/// replica, verifies *every* chunk of the parsed copy, heals bad disk
/// replicas in place, and caches the verified copy so concurrent
/// queries hitting the same damage pay for exactly one heal.
#[derive(Debug)]
pub struct DurableSource {
    dir: PathBuf,
    manifest: Manifest,
    /// Columns already healed this process lifetime: verified
    /// compressed copies, shared by all queries over this table.
    healed: Mutex<HashMap<u32, Arc<CompressedColumn>>>,
    heals: AtomicU64,
}

impl DurableSource {
    fn new(dir: PathBuf, manifest: Manifest) -> Self {
        DurableSource {
            dir,
            manifest,
            healed: Mutex::new(HashMap::new()),
            heals: AtomicU64::new(0),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed checkpoint version.
    pub fn version(&self) -> u64 {
        self.manifest.version
    }

    /// Replication factor of the committed checkpoint.
    pub fn replicas(&self) -> u32 {
        self.manifest.replicas
    }

    /// Chunk heals performed so far: replica-to-replica rewrites at
    /// open plus mid-query recoveries (each counted once, however many
    /// queries observed the damage).
    pub fn heals(&self) -> u64 {
        self.heals.load(Ordering::SeqCst)
    }

    /// Recover column `col`'s compressed chunks from a disk replica.
    ///
    /// Returns the verified copy and whether *this call* performed the
    /// heal (`false` = served from the heal cache). The per-source lock
    /// is held across the disk read on purpose: two queries racing on
    /// the same corrupt chunk serialize here, the first heals, the
    /// second gets the cached copy.
    ///
    /// Errors when the column has no compressed form on disk or when
    /// every replica fails — the caller falls back to the raw fragment
    /// (and then to a typed `Io`, the PR 6 contract).
    pub fn recover_column(
        &self,
        col: u32,
        fault: Option<&FaultState>,
    ) -> Result<(Arc<CompressedColumn>, bool), DurableError> {
        if col as usize >= self.manifest.cols.len() {
            return Err(DurableError::Corrupt(format!(
                "column {col} out of range ({} columns)",
                self.manifest.cols.len()
            )));
        }
        let mut healed = self.healed.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = healed.get(&col) {
            return Ok((Arc::clone(c), false));
        }
        let meta = &self.manifest.cols[col as usize];
        let mut bad: Vec<(String, Vec<u8>)> = Vec::new();
        let mut last_err = String::new();
        let mut recovered: Option<(Arc<CompressedColumn>, Vec<u8>)> = None;
        for r in 0..self.manifest.replicas {
            let name = col_file_name(col, self.manifest.version, r);
            let path = self.dir.join(&name);
            if let Some(f) = fault {
                if let Err(e) = f.check_site(FaultSite::DurableChunkRead, col) {
                    last_err = e.to_string();
                    bad.push((name, Vec::new()));
                    continue;
                }
            }
            let bytes = match read_file_retrying(&path, fault, FaultSite::DurableChunkRead) {
                Ok(b) => b,
                Err(e) => {
                    last_err = e.to_string();
                    bad.push((name, Vec::new()));
                    continue;
                }
            };
            let parsed =
                if bytes.len() as u64 != meta.file_bytes || bytes.last() != Some(&meta.checksum) {
                    Err("file differs from manifest".to_string())
                } else {
                    decode_col_file(&bytes)
                };
            match parsed {
                Ok(cf) => match cf.compressed {
                    Some(c) => {
                        // The whole-file fold proves the *disk bytes*
                        // match what was written; the per-chunk pass
                        // additionally rejects a copy that was already
                        // torn in memory before it was written.
                        if let Err(e) = c.verify_all() {
                            last_err = format!("{}: {e}", path.display());
                            bad.push((name, Vec::new()));
                            continue;
                        }
                        recovered = Some((Arc::new(c), bytes));
                        break;
                    }
                    None => {
                        return Err(DurableError::Corrupt(format!(
                            "column {col} (`{}`) has no compressed chunks on disk",
                            meta.name
                        )))
                    }
                },
                Err(e) => {
                    last_err = format!("{}: {e}", path.display());
                    bad.push((name, Vec::new()));
                }
            }
        }
        let Some((arc, good_bytes)) = recovered else {
            return Err(DurableError::Io {
                site: FaultSite::DurableChunkRead,
                detail: format!(
                    "column {col} (`{}`): all {} replicas failed; last: {last_err}",
                    meta.name, self.manifest.replicas
                ),
            });
        };
        // Rewrite every bad disk copy from the verified one
        // (best-effort; a failed rewrite is retried at the next heal).
        for (name, _) in &bad {
            let _ = write_atomic(
                &self.dir,
                name,
                &good_bytes,
                FaultSite::DurableChunkWrite,
                fault,
            );
        }
        self.heals.fetch_add(1, Ordering::SeqCst);
        healed.insert(col, Arc::clone(&arc));
        Ok((arc, true))
    }
}
