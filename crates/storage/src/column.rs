//! Immutable vertical column fragments.
//!
//! MonetDB/X100 stores tables column-wise; each column is an immutable
//! array (`BAT[void,T]` in MonetDB terms: a densely ascending virtual oid
//! head plus a value tail, where the oid is *not stored*, §3.3 / §4.3).
//! Updates never touch these fragments — they go to delta structures
//! (see [`crate::table`]).

use x100_vector::{ScalarType, StrVec, Value, Vector};

/// Typed storage for one column fragment, at table scale.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    I8(Vec<i8>),
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
    U64(Vec<u64>),
    F64(Vec<f64>),
    Str(StrVec),
}

impl ColumnData {
    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I8(v) => v.len(),
            ColumnData::I16(v) => v.len(),
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::U8(v) => v.len(),
            ColumnData::U16(v) => v.len(),
            ColumnData::U32(v) => v.len(),
            ColumnData::U64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar type stored.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ColumnData::I8(_) => ScalarType::I8,
            ColumnData::I16(_) => ScalarType::I16,
            ColumnData::I32(_) => ScalarType::I32,
            ColumnData::I64(_) => ScalarType::I64,
            ColumnData::U8(_) => ScalarType::U8,
            ColumnData::U16(_) => ScalarType::U16,
            ColumnData::U32(_) => ScalarType::U32,
            ColumnData::U64(_) => ScalarType::U64,
            ColumnData::F64(_) => ScalarType::F64,
            ColumnData::Str(_) => ScalarType::Str,
        }
    }

    /// Payload size in bytes (storage accounting; paper reports 0.8 GB
    /// for SF=1 with enumeration types).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Str(v) => v.byte_size(),
            other => other.len() * other.scalar_type().width(),
        }
    }

    /// Allocate empty storage of type `ty`.
    pub fn new(ty: ScalarType) -> Self {
        match ty {
            ScalarType::I8 => ColumnData::I8(Vec::new()),
            ScalarType::I16 => ColumnData::I16(Vec::new()),
            ScalarType::I32 => ColumnData::I32(Vec::new()),
            ScalarType::I64 => ColumnData::I64(Vec::new()),
            ScalarType::U8 => ColumnData::U8(Vec::new()),
            ScalarType::U16 => ColumnData::U16(Vec::new()),
            ScalarType::U32 => ColumnData::U32(Vec::new()),
            ScalarType::U64 => ColumnData::U64(Vec::new()),
            ScalarType::F64 => ColumnData::F64(Vec::new()),
            ScalarType::Bool => panic!("Bool is a vector-only type; store as U8"),
            ScalarType::Str => ColumnData::Str(StrVec::new()),
        }
    }

    /// Read one value (slow path).
    pub fn get_value(&self, i: usize) -> Value {
        match self {
            ColumnData::I8(v) => Value::I8(v[i]),
            ColumnData::I16(v) => Value::I16(v[i]),
            ColumnData::I32(v) => Value::I32(v[i]),
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::U8(v) => Value::U8(v[i]),
            ColumnData::U16(v) => Value::U16(v[i]),
            ColumnData::U32(v) => Value::U32(v[i]),
            ColumnData::U64(v) => Value::U64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Str(v) => Value::Str(v.get(i).to_owned()),
        }
    }

    /// Append one value (loader slow path).
    ///
    /// # Panics
    /// Panics on type mismatch.
    pub fn push_value(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::I8(b), Value::I8(x)) => b.push(*x),
            (ColumnData::I16(b), Value::I16(x)) => b.push(*x),
            (ColumnData::I32(b), Value::I32(x)) => b.push(*x),
            (ColumnData::I64(b), Value::I64(x)) => b.push(*x),
            (ColumnData::U8(b), Value::U8(x)) => b.push(*x),
            (ColumnData::U16(b), Value::U16(x)) => b.push(*x),
            (ColumnData::U32(b), Value::U32(x)) => b.push(*x),
            (ColumnData::U64(b), Value::U64(x)) => b.push(*x),
            (ColumnData::F64(b), Value::F64(x)) => b.push(*x),
            (ColumnData::Str(b), Value::Str(x)) => b.push(x),
            (this, v) => {
                panic!(
                    "push_value type mismatch: column {:?}, value {:?}",
                    this.scalar_type(),
                    v.scalar_type()
                )
            }
        }
    }

    /// Copy `rows` values starting at `start` into the vector buffer `out`
    /// — the explicit memory-to-cache routine of the paper's "RAM" layer.
    ///
    /// `out` is cleared and refilled; its type must match.
    pub fn read_into(&self, start: usize, rows: usize, out: &mut Vector) {
        match (self, out) {
            (ColumnData::I8(src), Vector::I8(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::I16(src), Vector::I16(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::I32(src), Vector::I32(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::I64(src), Vector::I64(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::U8(src), Vector::U8(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::U16(src), Vector::U16(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::U32(src), Vector::U32(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::U64(src), Vector::U64(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::F64(src), Vector::F64(dst)) => {
                dst.clear();
                dst.extend_from_slice(&src[start..start + rows]);
            }
            (ColumnData::Str(src), Vector::Str(dst)) => {
                dst.clear();
                for i in start..start + rows {
                    dst.push(src.get(i));
                }
            }
            (this, out) => panic!(
                "read_into type mismatch: column {:?}, vector {:?}",
                this.scalar_type(),
                out.scalar_type()
            ),
        }
    }

    /// Gather arbitrary row ids into a vector buffer (positional fetch at
    /// storage level, used by `Fetch1Join` against a stored column).
    pub fn gather_into(&self, rowids: &[u32], out: &mut Vector) {
        out.clear();
        match (self, out) {
            (ColumnData::I8(src), Vector::I8(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::I16(src), Vector::I16(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::I32(src), Vector::I32(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::I64(src), Vector::I64(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::U8(src), Vector::U8(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::U16(src), Vector::U16(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::U32(src), Vector::U32(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::U64(src), Vector::U64(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::F64(src), Vector::F64(dst)) => {
                dst.extend(rowids.iter().map(|&r| src[r as usize]))
            }
            (ColumnData::Str(src), Vector::Str(dst)) => {
                for &r in rowids {
                    dst.push(src.get(r as usize));
                }
            }
            (this, out) => panic!(
                "gather_into type mismatch: column {:?}, vector {:?}",
                this.scalar_type(),
                out.scalar_type()
            ),
        }
    }

    /// Borrow as `&[i32]`. Panics on type mismatch.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            ColumnData::I32(v) => v,
            other => panic!("expected I32 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&[i64]`. Panics on type mismatch.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColumnData::I64(v) => v,
            other => panic!("expected I64 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&[f64]`. Panics on type mismatch.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColumnData::F64(v) => v,
            other => panic!("expected F64 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&[u8]`. Panics on type mismatch.
    pub fn as_u8(&self) -> &[u8] {
        match self {
            ColumnData::U8(v) => v,
            other => panic!("expected U8 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&[u16]`. Panics on type mismatch.
    pub fn as_u16(&self) -> &[u16] {
        match self {
            ColumnData::U16(v) => v,
            other => panic!("expected U16 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&[u32]`. Panics on type mismatch.
    pub fn as_u32(&self) -> &[u32] {
        match self {
            ColumnData::U32(v) => v,
            other => panic!("expected U32 column, got {:?}", other.scalar_type()),
        }
    }

    /// Borrow as `&StrVec`. Panics on type mismatch.
    pub fn as_str(&self) -> &StrVec {
        match self {
            ColumnData::Str(v) => v,
            other => panic!("expected Str column, got {:?}", other.scalar_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_into_copies_range() {
        let col = ColumnData::F64((0..100).map(|i| i as f64).collect());
        let mut v = Vector::with_capacity(ScalarType::F64, 10);
        col.read_into(20, 10, &mut v);
        assert_eq!(v.as_f64()[0], 20.0);
        assert_eq!(v.as_f64()[9], 29.0);
        assert_eq!(v.len(), 10);
        // Re-read reuses the buffer.
        col.read_into(0, 5, &mut v);
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_f64(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gather_into_fetches_rowids() {
        let col = ColumnData::I64((0..50).map(|i| i * 10).collect());
        let mut v = Vector::with_capacity(ScalarType::I64, 3);
        col.gather_into(&[49, 0, 7], &mut v);
        assert_eq!(v.as_i64(), &[490, 0, 70]);
    }

    #[test]
    fn string_columns() {
        let mut col = ColumnData::new(ScalarType::Str);
        col.push_value(&Value::Str("x".into()));
        col.push_value(&Value::Str("yy".into()));
        assert_eq!(col.len(), 2);
        let mut v = Vector::with_capacity(ScalarType::Str, 2);
        col.read_into(0, 2, &mut v);
        assert_eq!(v.as_str().get(1), "yy");
        col.gather_into(&[1, 1], &mut v);
        assert_eq!(v.as_str().get(0), "yy");
    }

    #[test]
    fn byte_size() {
        let col = ColumnData::U8(vec![0; 1000]);
        assert_eq!(col.byte_size(), 1000);
        let col = ColumnData::F64(vec![0.0; 1000]);
        assert_eq!(col.byte_size(), 8000);
    }

    #[test]
    #[should_panic]
    fn read_into_type_mismatch_panics() {
        let col = ColumnData::I32(vec![1, 2, 3]);
        let mut v = Vector::with_capacity(ScalarType::F64, 3);
        col.read_into(0, 3, &mut v);
    }
}
