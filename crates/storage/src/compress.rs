//! Compressed column fragments: the storage half of lightweight
//! compression (paper §4.3 / §5).
//!
//! At checkpoint / reorganize time a per-column *format chooser* samples
//! each fragment's value range, sort order and cardinality and rewrites
//! it as a sequence of compressed chunks — PFOR, PFOR-DELTA or PDICT —
//! each carrying a self-describing [`ChunkHeader`] plus exception
//! blocks. Columns where compression would not pay (savings below 10%)
//! stay raw. The scan decompresses vector-at-a-time through
//! [`CompressedColumn::decode_range`], so compressed data stays
//! compressed in the buffer pool and expands only into cache-resident
//! vectors.

use crate::column::ColumnData;
use x100_vector::compress as k;
use x100_vector::{ScalarType, StrVec, Value, Vector};

/// Rows per compressed chunk. A multiple of the vector size and of
/// [`k::DELTA_SYNC`], so vector refills decode aligned lanes.
pub const CHUNK_ROWS: usize = 65536;

/// Encoded size of a [`ChunkHeader`].
pub const HEADER_BYTES: usize = 32;

const HEADER_MAGIC: u8 = 0xCB;

/// Physical format of one compressed chunk (or of a whole column, as
/// the chooser's verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFormat {
    /// Uncompressed — the chooser's fallback when compression won't pay.
    Raw,
    /// Patched frame-of-reference.
    Pfor,
    /// PFOR over deltas of a non-decreasing column.
    PforDelta,
    /// Dictionary codes into a column-wide sorted dictionary.
    Pdict,
}

impl ChunkFormat {
    /// Short lowercase name (bench JSON, stats display).
    pub fn name(self) -> &'static str {
        match self {
            ChunkFormat::Raw => "raw",
            ChunkFormat::Pfor => "pfor",
            ChunkFormat::PforDelta => "pfordelta",
            ChunkFormat::Pdict => "pdict",
        }
    }
}

/// Self-describing header written in front of every compressed chunk.
///
/// The header is what makes a chunk readable without consulting the
/// catalog: format tag, row count, frame lane, frame base, decimal
/// scale, payload length and the sizes of the exception / sync blocks
/// that follow the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Chunk format tag.
    pub format: ChunkFormat,
    /// Frame lane in bits (PFOR / PFOR-DELTA) or code width (PDICT).
    pub lane: u8,
    /// 8-bit fold of the payload + exception + sync bytes, written when
    /// the chunk is built and re-checked on every compressed read. A
    /// mismatch means the body was torn after the header was written.
    pub checksum: u8,
    /// Rows in this chunk.
    pub rows: u32,
    /// Decimal scale for f64 frames (0 = integer frames).
    pub scale: u32,
    /// Frame base (chunk minimum / minimum delta).
    pub base: u64,
    /// Packed payload length in bytes.
    pub payload_bytes: u32,
    /// Entries in the exception block.
    pub exceptions: u32,
    /// Entries in the sync-carry block (PFOR-DELTA only).
    pub sync_points: u32,
}

impl ChunkHeader {
    /// Serialize to the on-chunk byte layout.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0] = HEADER_MAGIC;
        b[1] = match self.format {
            ChunkFormat::Raw => 0,
            ChunkFormat::Pfor => 1,
            ChunkFormat::PforDelta => 2,
            ChunkFormat::Pdict => 3,
        };
        b[2] = self.lane;
        b[3] = self.checksum;
        b[4..8].copy_from_slice(&self.rows.to_le_bytes());
        b[8..12].copy_from_slice(&self.scale.to_le_bytes());
        b[12..20].copy_from_slice(&self.base.to_le_bytes());
        b[20..24].copy_from_slice(&self.payload_bytes.to_le_bytes());
        b[24..28].copy_from_slice(&self.exceptions.to_le_bytes());
        b[28..32].copy_from_slice(&self.sync_points.to_le_bytes());
        b
    }

    /// Parse the on-chunk byte layout back.
    pub fn decode(b: &[u8; HEADER_BYTES]) -> Result<ChunkHeader, String> {
        if b[0] != HEADER_MAGIC {
            return Err(format!("bad chunk magic 0x{:02x}", b[0]));
        }
        let format = match b[1] {
            0 => ChunkFormat::Raw,
            1 => ChunkFormat::Pfor,
            2 => ChunkFormat::PforDelta,
            3 => ChunkFormat::Pdict,
            t => return Err(format!("unknown chunk format tag {t}")),
        };
        let word32 = |at: usize| u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
        let mut base = [0u8; 8];
        base.copy_from_slice(&b[12..20]);
        Ok(ChunkHeader {
            format,
            lane: b[2],
            checksum: b[3],
            rows: word32(4),
            scale: word32(8),
            base: u64::from_le_bytes(base),
            payload_bytes: word32(20),
            exceptions: word32(24),
            sync_points: word32(28),
        })
    }
}

/// Compressed payload of one chunk.
#[derive(Debug, Clone)]
pub enum ChunkBody {
    /// Patched frame-of-reference frames + exception block.
    Pfor(k::PforChunk),
    /// Delta frames + sync carries + exception block.
    PforDelta(k::PforDeltaChunk),
    /// Packed dictionary codes (dictionary lives on the column).
    Pdict(Vec<u8>),
}

/// One compressed chunk: header + typed body.
#[derive(Debug, Clone)]
pub struct CompressedChunk {
    /// The self-describing header.
    pub header: ChunkHeader,
    /// The compressed payload.
    pub body: ChunkBody,
}

impl CompressedChunk {
    /// Total compressed footprint including the header.
    pub fn byte_size(&self) -> usize {
        HEADER_BYTES
            + match &self.body {
                ChunkBody::Pfor(c) => c.byte_size(),
                ChunkBody::PforDelta(c) => c.byte_size(),
                ChunkBody::Pdict(p) => p.len(),
            }
    }
}

/// Column-wide sorted dictionary for PDICT columns.
#[derive(Debug, Clone)]
pub enum PdictValues {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(StrVec),
}

impl PdictValues {
    fn byte_size(&self) -> usize {
        match self {
            PdictValues::I32(v) => v.len() * 4,
            PdictValues::I64(v) => v.len() * 8,
            PdictValues::F64(v) => v.len() * 8,
            PdictValues::Str(v) => v.byte_size(),
        }
    }
}

/// Decode progress of one scan over one compressed column. Sequential
/// refills continue PFOR-DELTA prefix sums from the saved carry instead
/// of replaying from the nearest sync point.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeCursor {
    chunk: usize,
    next_row: usize,
    carry: u64,
    /// Last chunk whose checksum this cursor verified — sequential
    /// scans pay the verification pass once per chunk, not per refill.
    verified: Option<usize>,
}

/// Accounting of one `decode_range` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeStats {
    /// Exception patches applied in the decoded window.
    pub exceptions: u64,
    /// Byte offset of the first compressed byte touched (for chunked
    /// buffer-manager accounting).
    pub comp_offset: u64,
    /// Compressed bytes touched (payload window + exceptions + header).
    pub comp_len: u64,
}

/// One column fragment rewritten as compressed chunks.
#[derive(Debug, Clone)]
pub struct CompressedColumn {
    format: ChunkFormat,
    physical: ScalarType,
    rows: usize,
    chunks: Vec<CompressedChunk>,
    /// Byte offset of each chunk in the compressed stream.
    chunk_offsets: Vec<u64>,
    dict: Option<PdictValues>,
    dict_lane: u32,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl CompressedColumn {
    /// The chooser's format verdict for this column.
    pub fn format(&self) -> ChunkFormat {
        self.format
    }

    /// The physical scalar type the chunks decode to.
    pub fn physical_type(&self) -> ScalarType {
        self.physical
    }

    /// Rows covered (the whole fragment at checkpoint time).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Uncompressed fragment size in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed size in bytes (headers + payloads + dictionary).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Compressed size as a percentage of raw (lower = better).
    pub fn ratio_pct(&self) -> u64 {
        (self.compressed_bytes * 100)
            .checked_div(self.raw_bytes)
            .unwrap_or(100)
    }

    /// The registered decompress-primitive signature the scan must run
    /// to expand this column — `engine::check` verifies it against the
    /// primitive registry like any other compiled instruction.
    pub fn decode_sig(&self) -> &'static str {
        macro_rules! sig {
            ($codec:literal) => {
                match self.physical {
                    ScalarType::I8 => concat!("decompress_", $codec, "_i8_col"),
                    ScalarType::I16 => concat!("decompress_", $codec, "_i16_col"),
                    ScalarType::I32 => concat!("decompress_", $codec, "_i32_col"),
                    ScalarType::I64 => concat!("decompress_", $codec, "_i64_col"),
                    ScalarType::U8 => concat!("decompress_", $codec, "_u8_col"),
                    ScalarType::U16 => concat!("decompress_", $codec, "_u16_col"),
                    ScalarType::U32 => concat!("decompress_", $codec, "_u32_col"),
                    ScalarType::U64 => concat!("decompress_", $codec, "_u64_col"),
                    ScalarType::F64 => concat!("decompress_", $codec, "_f64_col"),
                    ScalarType::Str => concat!("decompress_", $codec, "_str_col"),
                    ScalarType::Bool => unreachable!("Bool is not a storage type"),
                }
            };
        }
        match self.format {
            ChunkFormat::Raw => "raw",
            ChunkFormat::Pfor => sig!("pfor"),
            ChunkFormat::PforDelta => sig!("pfordelta"),
            ChunkFormat::Pdict => sig!("pdict"),
        }
    }

    /// Serialize the whole column to a self-describing byte stream:
    /// a column preamble (format, physical type, rows, dictionary)
    /// followed by every chunk as `header.encode()` + body blocks in
    /// the order the chunk checksum folds them. The per-chunk checksums
    /// travel inside the headers, so a torn byte anywhere in a body is
    /// caught by [`CompressedColumn::decode_range`] after
    /// [`CompressedColumn::from_bytes`] — exactly the guarantee spill
    /// runs need when they cross a (faultable) disk boundary.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.compressed_bytes as usize + 64);
        b.extend_from_slice(b"XCPC");
        b.push(1); // version
        b.push(match self.format {
            ChunkFormat::Raw => 0,
            ChunkFormat::Pfor => 1,
            ChunkFormat::PforDelta => 2,
            ChunkFormat::Pdict => 3,
        });
        b.push(scalar_tag(self.physical));
        b.push(match &self.dict {
            None => 0,
            Some(PdictValues::I32(_)) => 1,
            Some(PdictValues::I64(_)) => 2,
            Some(PdictValues::F64(_)) => 3,
            Some(PdictValues::Str(_)) => 4,
        });
        b.extend_from_slice(&(self.rows as u64).to_le_bytes());
        b.extend_from_slice(&self.raw_bytes.to_le_bytes());
        b.extend_from_slice(&self.dict_lane.to_le_bytes());
        b.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        match &self.dict {
            None => {}
            Some(PdictValues::I32(v)) => {
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    b.extend_from_slice(&x.to_le_bytes());
                }
            }
            Some(PdictValues::I64(v)) => {
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    b.extend_from_slice(&x.to_le_bytes());
                }
            }
            Some(PdictValues::F64(v)) => {
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    b.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Some(PdictValues::Str(v)) => {
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for s in v.iter() {
                    b.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    b.extend_from_slice(s.as_bytes());
                }
            }
        }
        for c in &self.chunks {
            b.extend_from_slice(&c.header.encode());
            match &c.body {
                ChunkBody::Pfor(p) => {
                    b.extend_from_slice(&p.payload);
                    for &x in &p.exc_pos {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                    for &x in &p.exc_frames {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                }
                ChunkBody::PforDelta(p) => {
                    b.extend_from_slice(&p.payload);
                    for &x in &p.sync {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                    for &x in &p.exc_pos {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                    for &x in &p.exc_frames {
                        b.extend_from_slice(&x.to_le_bytes());
                    }
                }
                ChunkBody::Pdict(p) => b.extend_from_slice(p),
            }
        }
        b
    }

    /// Rebuild a column serialized by [`CompressedColumn::to_bytes`].
    /// Structural damage (bad magic, truncation, impossible counts)
    /// fails here; payload corruption inside a chunk body is deferred
    /// to the per-chunk checksum on the first `decode_range` touch.
    pub fn from_bytes(b: &[u8]) -> Result<CompressedColumn, String> {
        let mut r = ByteReader { b, at: 0 };
        if r.take(4)? != b"XCPC" {
            return Err("bad compressed-column magic".into());
        }
        let version = r.u8()?;
        if version != 1 {
            return Err(format!("unknown compressed-column version {version}"));
        }
        let format = match r.u8()? {
            0 => ChunkFormat::Raw,
            1 => ChunkFormat::Pfor,
            2 => ChunkFormat::PforDelta,
            3 => ChunkFormat::Pdict,
            t => return Err(format!("unknown column format tag {t}")),
        };
        let physical = scalar_from_tag(r.u8()?)?;
        let dict_tag = r.u8()?;
        let rows = r.u64()? as usize;
        let raw_bytes = r.u64()?;
        let dict_lane = r.u32()?;
        let n_chunks = r.u32()? as usize;
        let dict = match dict_tag {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.u32()? as i32);
                }
                Some(PdictValues::I32(v))
            }
            2 => {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.u64()? as i64);
                }
                Some(PdictValues::I64(v))
            }
            3 => {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(f64::from_bits(r.u64()?));
                }
                Some(PdictValues::F64(v))
            }
            4 => {
                let n = r.u32()? as usize;
                let mut v = StrVec::new();
                for _ in 0..n {
                    let len = r.u32()? as usize;
                    let s = std::str::from_utf8(r.take(len)?)
                        .map_err(|_| "non-UTF-8 dictionary entry".to_string())?;
                    v.push(s);
                }
                Some(PdictValues::Str(v))
            }
            t => return Err(format!("unknown dictionary tag {t}")),
        };
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut covered = 0usize;
        for _ in 0..n_chunks {
            let mut hb = [0u8; HEADER_BYTES];
            hb.copy_from_slice(r.take(HEADER_BYTES)?);
            let header = ChunkHeader::decode(&hb)?;
            let payload = r.take(header.payload_bytes as usize)?.to_vec();
            let body = match header.format {
                ChunkFormat::Raw => return Err("raw tag inside compressed chunk".into()),
                ChunkFormat::Pfor => {
                    let (exc_pos, exc_frames) = r.exceptions(header.exceptions as usize)?;
                    ChunkBody::Pfor(k::PforChunk {
                        lane: header.lane as u32,
                        base: header.base,
                        scale: header.scale,
                        payload,
                        exc_pos,
                        exc_frames,
                    })
                }
                ChunkFormat::PforDelta => {
                    let mut sync = Vec::with_capacity(header.sync_points as usize);
                    for _ in 0..header.sync_points {
                        sync.push(r.u64()?);
                    }
                    let (exc_pos, exc_frames) = r.exceptions(header.exceptions as usize)?;
                    ChunkBody::PforDelta(k::PforDeltaChunk {
                        lane: header.lane as u32,
                        base: header.base,
                        payload,
                        sync,
                        exc_pos,
                        exc_frames,
                    })
                }
                ChunkFormat::Pdict => ChunkBody::Pdict(payload),
            };
            covered += header.rows as usize;
            chunks.push(CompressedChunk { header, body });
        }
        if covered != rows {
            return Err(format!("chunk rows {covered} != column rows {rows}"));
        }
        let mut chunk_offsets = Vec::with_capacity(chunks.len());
        let mut off = 0u64;
        for c in &chunks {
            chunk_offsets.push(off);
            off += c.byte_size() as u64;
        }
        let compressed_bytes = off + dict.as_ref().map_or(0, |d| d.byte_size() as u64);
        Ok(CompressedColumn {
            format,
            physical,
            rows,
            chunks,
            chunk_offsets,
            dict,
            dict_lane,
            raw_bytes,
            compressed_bytes,
        })
    }

    /// Decompress rows `[start, start + rows)` into `out` (cleared and
    /// refilled, mirroring `ColumnData::read_into`). `cursor` carries
    /// sequential decode state between refills; `scratch` is the reused
    /// frame buffer the governor charges. Fails (typed upstream as
    /// `Io`) when a chunk's stored checksum no longer matches its body.
    pub fn decode_range(
        &self,
        start: usize,
        rows: usize,
        out: &mut Vector,
        cursor: &mut DecodeCursor,
        scratch: &mut Vec<u64>,
    ) -> Result<DecodeStats, String> {
        assert!(start + rows <= self.rows, "decode_range beyond fragment");
        let mut stats = DecodeStats {
            comp_offset: u64::MAX,
            ..DecodeStats::default()
        };
        if self.physical == ScalarType::Str {
            out.clear();
        } else {
            // Every numeric position is overwritten by the dense decode
            // below, so only growth needs the zero fill — resizing in
            // place (instead of clear + refill) skips one full store
            // pass per refill once the vector reaches steady state.
            out.resize_zeroed(rows);
        }
        let mut done = 0usize;
        while done < rows {
            let abs = start + done;
            let ci = abs / CHUNK_ROWS;
            let chunk = &self.chunks[ci];
            let local = abs - ci * CHUNK_ROWS;
            let n = rows - done;
            let n = n.min(chunk.header.rows as usize - local);
            self.decode_chunk(ci, local, n, done, out, cursor, scratch, &mut stats)?;
            done += n;
        }
        if stats.comp_offset == u64::MAX {
            stats.comp_offset = 0;
        }
        Ok(stats)
    }

    /// Decode `n` rows of chunk `ci` starting at chunk-local `local`
    /// into `out` at position `at`.
    #[allow(clippy::too_many_arguments)]
    fn decode_chunk(
        &self,
        ci: usize,
        local: usize,
        n: usize,
        at: usize,
        out: &mut Vector,
        cursor: &mut DecodeCursor,
        scratch: &mut Vec<u64>,
        stats: &mut DecodeStats,
    ) -> Result<(), String> {
        if cursor.verified != Some(ci) {
            self.verify_chunk(ci)?;
            cursor.verified = Some(ci);
        }
        let chunk = &self.chunks[ci];
        let lane_bytes = (chunk.header.lane as u64) / 8;
        let mut touched = HEADER_BYTES as u64 + n as u64 * lane_bytes;
        match &chunk.body {
            ChunkBody::Pfor(c) => {
                let exc = window_exceptions(&c.exc_pos, local, n);
                touched += exc * 12;
                stats.exceptions += exc;
                macro_rules! arm {
                    ($($variant:ident => $dec:path),+ $(,)?) => {
                        match out {
                            $(Vector::$variant(dst) => $dec(&mut dst[at..at + n], c, local, scratch),)+
                            other => panic!("pfor decode into {:?}", other.scalar_type()),
                        }
                    };
                }
                arm! {
                    I8 => k::decompress_pfor_i8_col,
                    I16 => k::decompress_pfor_i16_col,
                    I32 => k::decompress_pfor_i32_col,
                    I64 => k::decompress_pfor_i64_col,
                    U8 => k::decompress_pfor_u8_col,
                    U16 => k::decompress_pfor_u16_col,
                    U32 => k::decompress_pfor_u32_col,
                    U64 => k::decompress_pfor_u64_col,
                    F64 => k::decompress_pfor_f64_col,
                }
            }
            ChunkBody::PforDelta(c) => {
                // Sequential refills continue from the cursor carry; any
                // other entry replays from the preceding sync carry.
                let abs = ci * CHUNK_ROWS + local;
                let (seek, carry) = if cursor.chunk == ci && cursor.next_row == abs && abs != 0 {
                    (local, cursor.carry)
                } else {
                    let sk = local / k::DELTA_SYNC;
                    (sk * k::DELTA_SYNC, c.sync[sk])
                };
                let exc = window_exceptions(&c.exc_pos, seek, local + n - seek);
                touched += exc * 12 + (local - seek) as u64 * lane_bytes + 8;
                stats.exceptions += exc;
                macro_rules! arm {
                    ($($variant:ident => $dec:path),+ $(,)?) => {
                        match out {
                            $(Vector::$variant(dst) => {
                                $dec(&mut dst[at..at + n], c, seek, carry, local, scratch)
                            })+
                            other => panic!("pfordelta decode into {:?}", other.scalar_type()),
                        }
                    };
                }
                let new_carry = arm! {
                    I8 => k::decompress_pfordelta_i8_col,
                    I16 => k::decompress_pfordelta_i16_col,
                    I32 => k::decompress_pfordelta_i32_col,
                    I64 => k::decompress_pfordelta_i64_col,
                    U8 => k::decompress_pfordelta_u8_col,
                    U16 => k::decompress_pfordelta_u16_col,
                    U32 => k::decompress_pfordelta_u32_col,
                    U64 => k::decompress_pfordelta_u64_col,
                };
                cursor.chunk = ci;
                cursor.next_row = abs + n;
                cursor.carry = new_carry;
            }
            ChunkBody::Pdict(payload) => {
                let dict = self.dict.as_ref().expect("pdict column has a dictionary");
                let lane = self.dict_lane;
                match (out, dict) {
                    (Vector::I32(dst), PdictValues::I32(d)) => k::decompress_pdict_i32_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::I64(dst), PdictValues::I64(d)) => k::decompress_pdict_i64_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::F64(dst), PdictValues::F64(d)) => k::decompress_pdict_f64_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::Str(dst), PdictValues::Str(d)) => {
                        k::decompress_pdict_str_col(dst, payload, lane, local, n, d, scratch)
                    }
                    (o, _) => panic!("pdict decode into {:?}", o.scalar_type()),
                }
            }
        }
        let off = self.chunk_offsets[ci] + HEADER_BYTES as u64 + local as u64 * lane_bytes;
        stats.comp_offset = stats.comp_offset.min(off);
        stats.comp_len += touched;
        Ok(())
    }

    /// Recompute chunk `ci`'s body checksum and compare with the header
    /// copy. A mismatch means the chunk bytes were torn after the
    /// header was written — the scan surfaces it as a typed `Io` error
    /// and falls back to the retained raw fragment.
    pub fn verify_chunk(&self, ci: usize) -> Result<(), String> {
        let chunk = &self.chunks[ci];
        let got = chunk_checksum(&chunk.body);
        if got != chunk.header.checksum {
            return Err(format!(
                "chunk {ci} checksum mismatch: header 0x{:02x}, body 0x{got:02x} (torn write)",
                chunk.header.checksum
            ));
        }
        Ok(())
    }

    /// Verify every chunk's body checksum — the durable heal path runs
    /// this over a freshly parsed replica before trusting it, so a copy
    /// that was torn *before* it reached disk (file-level checksum
    /// intact, chunk-level wrong) is rejected rather than healed from.
    pub fn verify_all(&self) -> Result<(), String> {
        for ci in 0..self.chunks.len() {
            self.verify_chunk(ci)?;
        }
        Ok(())
    }

    /// Flip one payload byte of chunk `ci` *without* touching the
    /// header checksum — a torn write: the write "succeeded", the bytes
    /// are wrong, and only checksum verification can tell. Fault
    /// injection and tests only. Returns `false` when the chunk has no
    /// payload byte at `at` (e.g. a constant lane-0 chunk).
    pub fn corrupt_payload_byte(&mut self, ci: usize, at: usize) -> bool {
        let Some(chunk) = self.chunks.get_mut(ci) else {
            return false;
        };
        let payload = match &mut chunk.body {
            ChunkBody::Pfor(c) => &mut c.payload,
            ChunkBody::PforDelta(c) => &mut c.payload,
            ChunkBody::Pdict(p) => p,
        };
        match payload.get_mut(at) {
            Some(b) => {
                *b ^= 0x40;
                true
            }
            None => false,
        }
    }

    /// Compile `col ⟨op⟩ v` (or `col between v w`) into this column's
    /// encoded space. Returns `None` when no encoded-space kernel
    /// exists for the (format, type, op) triple — PFOR-DELTA columns
    /// (prefix sums), `ne` over PFOR frames, `between` over dictionary
    /// codes, or a constant whose type does not match the column — and
    /// the caller falls back to decode-then-select.
    ///
    /// For PDICT this is where the dictionary-predicate rewrite
    /// happens: the predicate is evaluated once over the sorted
    /// dictionary and collapsed into a code-set test
    /// ([`k::DictSel`]), so per-vector evaluation never touches the
    /// dictionary values again — string predicates in particular never
    /// materialize a `StrVec` until output.
    pub fn compile_pushdown(&self, op: PushOp, v: &Value, w: Option<&Value>) -> Option<Pushdown> {
        if v.scalar_type() != self.physical {
            return None;
        }
        if op == PushOp::Between {
            match w {
                Some(w) if w.scalar_type() == self.physical => {}
                _ => return None,
            }
        } else if w.is_some() {
            return None;
        }
        let opn = op.name();
        let ty = ty_name(self.physical);
        match self.format {
            ChunkFormat::Pfor => {
                if op == PushOp::Ne || self.physical == ScalarType::Str {
                    return None;
                }
                let sig = if op == PushOp::Between {
                    format!("cmp_pfor_between_{ty}_col_val_val")
                } else {
                    format!("cmp_pfor_{opn}_{ty}_col_val")
                };
                Some(Pushdown {
                    op,
                    lo: v.clone(),
                    hi: w.cloned(),
                    dict: None,
                    sig,
                })
            }
            ChunkFormat::Pdict => {
                if op == PushOp::Between {
                    return None;
                }
                let dict = self.dict_predicate(op, v)?;
                Some(Pushdown {
                    op,
                    lo: v.clone(),
                    hi: None,
                    dict: Some(dict),
                    sig: format!("cmp_pdict_{opn}_{ty}_col_val"),
                })
            }
            ChunkFormat::Raw | ChunkFormat::PforDelta => None,
        }
    }

    /// The dictionary-predicate rewrite: evaluate `op v` over every
    /// dictionary entry once and collapse the result.
    fn dict_predicate(&self, op: PushOp, v: &Value) -> Option<k::DictSel> {
        let dict = self.dict.as_ref()?;
        macro_rules! pred {
            ($d:expr, $x:expr) => {
                match op {
                    PushOp::Eq => $d == $x,
                    PushOp::Ne => $d != $x,
                    PushOp::Lt => $d < $x,
                    PushOp::Le => $d <= $x,
                    PushOp::Gt => $d > $x,
                    PushOp::Ge => $d >= $x,
                    PushOp::Between => false,
                }
            };
        }
        match (dict, v) {
            (PdictValues::I32(d), Value::I32(x)) => {
                Some(k::DictSel::from_pred(d.len(), |c| pred!(d[c], *x)))
            }
            (PdictValues::I64(d), Value::I64(x)) => {
                Some(k::DictSel::from_pred(d.len(), |c| pred!(d[c], *x)))
            }
            (PdictValues::F64(d), Value::F64(x)) => {
                Some(k::DictSel::from_pred(d.len(), |c| pred!(d[c], *x)))
            }
            (PdictValues::Str(d), Value::Str(x)) => Some(k::DictSel::from_pred(d.len(), |c| {
                pred!(d.get(c), x.as_str())
            })),
            _ => None,
        }
    }

    /// Evaluate a compiled pushdown over rows `[start, start + rows)`
    /// entirely in encoded space: appends the *window-relative*
    /// ascending positions (0 = row `start`) of qualifying rows to
    /// `out` without decoding a single value. `_tmp` is kept for
    /// call-site symmetry with `decode_positions`; `cursor` shares
    /// checksum-verification state with `decode_range` /
    /// `decode_positions`.
    pub fn select_range(
        &self,
        p: &Pushdown,
        start: usize,
        rows: usize,
        out: &mut Vec<u32>,
        _tmp: &mut Vec<u32>,
        cursor: &mut DecodeCursor,
    ) -> Result<(), String> {
        assert!(start + rows <= self.rows, "select_range beyond fragment");
        let mut done = 0usize;
        while done < rows {
            let abs = start + done;
            let ci = abs / CHUNK_ROWS;
            let chunk = &self.chunks[ci];
            let local = abs - ci * CHUNK_ROWS;
            let n = (rows - done).min(chunk.header.rows as usize - local);
            if cursor.verified != Some(ci) {
                self.verify_chunk(ci)?;
                cursor.verified = Some(ci);
            }
            let before = out.len();
            match &chunk.body {
                ChunkBody::Pfor(c) => pfor_chunk_select(p, c, local, n, out),
                ChunkBody::Pdict(payload) => {
                    let sel = p.dict.as_ref().expect("pdict pushdown carries a rewrite");
                    k::pdict_select_codes(payload, self.dict_lane, local, n, sel, out);
                }
                ChunkBody::PforDelta(_) => {
                    return Err("pushdown over PFOR-DELTA chunks is not supported".into());
                }
            }
            // Chunk-relative → window-relative, adjusted in place over
            // the freshly appended tail (no bounce buffer).
            let rebase = done as i64 - local as i64;
            if rebase != 0 {
                for pos in &mut out[before..] {
                    *pos = (*pos as i64 + rebase) as u32;
                }
            }
            done += n;
        }
        Ok(())
    }

    /// Gather-decode the rows at window-relative positions `sel`
    /// (ascending; 0 = row `start`) into `out`, compacted: `out[i]`
    /// becomes row `start + sel[i]`. This is the lazy-materialization
    /// half of a pushed-down selection — only surviving positions are
    /// ever decoded, everything else is skipped while still packed.
    pub fn decode_positions(
        &self,
        start: usize,
        sel: &[u32],
        out: &mut Vector,
        tmp: &mut Vec<u32>,
        cursor: &mut DecodeCursor,
    ) -> Result<DecodeStats, String> {
        let mut stats = DecodeStats {
            comp_offset: u64::MAX,
            ..DecodeStats::default()
        };
        if self.physical == ScalarType::Str {
            out.clear();
        } else {
            out.resize_zeroed(sel.len());
        }
        let mut i = 0usize;
        while i < sel.len() {
            let ci = (start + sel[i] as usize) / CHUNK_ROWS;
            tmp.clear();
            let mut j = sel.len();
            if (start + sel[j - 1] as usize) / CHUNK_ROWS == ci {
                // Common case: the whole remaining selection lives in
                // one chunk — rebase it with a single vectorizable add
                // instead of dividing per position.
                let d = start as i64 - (ci * CHUNK_ROWS) as i64;
                tmp.extend(sel[i..].iter().map(|&p| (p as i64 + d) as u32));
            } else {
                j = i;
                while j < sel.len() {
                    let abs = start + sel[j] as usize;
                    if abs / CHUNK_ROWS != ci {
                        break;
                    }
                    tmp.push((abs - ci * CHUNK_ROWS) as u32);
                    j += 1;
                }
            }
            if cursor.verified != Some(ci) {
                self.verify_chunk(ci)?;
                cursor.verified = Some(ci);
            }
            let chunk = &self.chunks[ci];
            match &chunk.body {
                ChunkBody::Pfor(c) => {
                    stats.exceptions += sel_exceptions(&c.exc_pos, tmp);
                    macro_rules! arm {
                        ($($variant:ident => $dec:path),+ $(,)?) => {
                            match &mut *out {
                                $(Vector::$variant(dst) => {
                                    $dec(&mut dst[i..i + tmp.len()], c, tmp)
                                })+
                                other => {
                                    return Err(format!(
                                        "pfor decode_sel into {:?}",
                                        other.scalar_type()
                                    ));
                                }
                            }
                        };
                    }
                    arm! {
                        I8 => k::decode_sel_pfor_i8_col,
                        I16 => k::decode_sel_pfor_i16_col,
                        I32 => k::decode_sel_pfor_i32_col,
                        I64 => k::decode_sel_pfor_i64_col,
                        U8 => k::decode_sel_pfor_u8_col,
                        U16 => k::decode_sel_pfor_u16_col,
                        U32 => k::decode_sel_pfor_u32_col,
                        U64 => k::decode_sel_pfor_u64_col,
                        F64 => k::decode_sel_pfor_f64_col,
                    }
                }
                ChunkBody::Pdict(payload) => {
                    let dict = self.dict.as_ref().expect("pdict column has a dictionary");
                    let lane = self.dict_lane;
                    match (&mut *out, dict) {
                        (Vector::I32(dst), PdictValues::I32(d)) => k::decode_sel_pdict_i32_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::I64(dst), PdictValues::I64(d)) => k::decode_sel_pdict_i64_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::F64(dst), PdictValues::F64(d)) => k::decode_sel_pdict_f64_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::Str(dst), PdictValues::Str(d)) => {
                            k::decode_sel_pdict_str_col(dst, payload, lane, d, tmp)
                        }
                        (o, _) => {
                            return Err(format!("pdict decode_sel into {:?}", o.scalar_type()));
                        }
                    }
                }
                ChunkBody::PforDelta(_) => {
                    return Err("no selective decode over PFOR-DELTA chunks (prefix sums)".into());
                }
            }
            let lane_bytes = (chunk.header.lane as u64) / 8;
            stats.comp_len += HEADER_BYTES as u64 + tmp.len() as u64 * lane_bytes;
            stats.comp_offset = stats.comp_offset.min(self.chunk_offsets[ci]);
            i = j;
        }
        if stats.comp_offset == u64::MAX {
            stats.comp_offset = 0;
        }
        Ok(stats)
    }

    /// Positional gather through the codec: decode row `rowids[i]`
    /// (any order, duplicates allowed) into `out[i]`. Ascending
    /// same-chunk runs batch through the `decode_sel` kernels;
    /// PFOR-DELTA runs replay from the nearest sync carry — the
    /// sync-point seek path that join-index position reads ride.
    /// `cursor` only carries checksum-verification state here.
    pub fn gather(
        &self,
        rowids: &[u32],
        out: &mut Vector,
        scratch: &mut Vec<u64>,
        tmp: &mut Vec<u32>,
        cursor: &mut DecodeCursor,
    ) -> Result<(), String> {
        if self.physical == ScalarType::Str {
            out.clear();
        } else {
            out.resize_zeroed(rowids.len());
        }
        let mut i = 0usize;
        while i < rowids.len() {
            let ci = rowids[i] as usize / CHUNK_ROWS;
            let is_delta = matches!(self.chunks[ci].body, ChunkBody::PforDelta(_));
            tmp.clear();
            tmp.push((rowids[i] as usize - ci * CHUNK_ROWS) as u32);
            let mut j = i + 1;
            while j < rowids.len() {
                let abs = rowids[j] as usize;
                if abs / CHUNK_ROWS != ci || abs <= rowids[j - 1] as usize {
                    break;
                }
                // Bound the replay span so the delta scratch stays
                // cache-resident even for scattered rowids.
                if is_delta && abs - rowids[i] as usize >= 8192 {
                    break;
                }
                tmp.push((abs - ci * CHUNK_ROWS) as u32);
                j += 1;
            }
            if cursor.verified != Some(ci) {
                self.verify_chunk(ci)?;
                cursor.verified = Some(ci);
            }
            let chunk = &self.chunks[ci];
            match &chunk.body {
                ChunkBody::Pfor(c) => {
                    macro_rules! arm {
                        ($($variant:ident => $dec:path),+ $(,)?) => {
                            match &mut *out {
                                $(Vector::$variant(dst) => {
                                    $dec(&mut dst[i..i + tmp.len()], c, tmp)
                                })+
                                other => {
                                    return Err(format!(
                                        "pfor gather into {:?}",
                                        other.scalar_type()
                                    ));
                                }
                            }
                        };
                    }
                    arm! {
                        I8 => k::decode_sel_pfor_i8_col,
                        I16 => k::decode_sel_pfor_i16_col,
                        I32 => k::decode_sel_pfor_i32_col,
                        I64 => k::decode_sel_pfor_i64_col,
                        U8 => k::decode_sel_pfor_u8_col,
                        U16 => k::decode_sel_pfor_u16_col,
                        U32 => k::decode_sel_pfor_u32_col,
                        U64 => k::decode_sel_pfor_u64_col,
                        F64 => k::decode_sel_pfor_f64_col,
                    }
                }
                ChunkBody::PforDelta(c) => {
                    // Seek: replay packed deltas from the sync carry
                    // preceding the run, then pick the selected rows.
                    let first = tmp[0] as usize;
                    let last = tmp[tmp.len() - 1] as usize;
                    let sk = first / k::DELTA_SYNC;
                    let seek = sk * k::DELTA_SYNC;
                    let carry = c.sync[sk];
                    let span = last - first + 1;
                    macro_rules! arm {
                        ($($variant:ident : $t:ty => $dec:path),+ $(,)?) => {
                            match &mut *out {
                                $(Vector::$variant(dst) => {
                                    let mut buf: Vec<$t> = vec![0 as $t; span];
                                    let _ = $dec(&mut buf, c, seek, carry, first, scratch);
                                    for (o, &p) in
                                        dst[i..i + tmp.len()].iter_mut().zip(tmp.iter())
                                    {
                                        *o = buf[p as usize - first];
                                    }
                                })+
                                other => {
                                    return Err(format!(
                                        "pfordelta gather into {:?}",
                                        other.scalar_type()
                                    ));
                                }
                            }
                        };
                    }
                    arm! {
                        I8: i8 => k::decompress_pfordelta_i8_col,
                        I16: i16 => k::decompress_pfordelta_i16_col,
                        I32: i32 => k::decompress_pfordelta_i32_col,
                        I64: i64 => k::decompress_pfordelta_i64_col,
                        U8: u8 => k::decompress_pfordelta_u8_col,
                        U16: u16 => k::decompress_pfordelta_u16_col,
                        U32: u32 => k::decompress_pfordelta_u32_col,
                        U64: u64 => k::decompress_pfordelta_u64_col,
                    }
                }
                ChunkBody::Pdict(payload) => {
                    let dict = self.dict.as_ref().expect("pdict column has a dictionary");
                    let lane = self.dict_lane;
                    match (&mut *out, dict) {
                        (Vector::I32(dst), PdictValues::I32(d)) => k::decode_sel_pdict_i32_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::I64(dst), PdictValues::I64(d)) => k::decode_sel_pdict_i64_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::F64(dst), PdictValues::F64(d)) => k::decode_sel_pdict_f64_col(
                            &mut dst[i..i + tmp.len()],
                            payload,
                            lane,
                            d,
                            tmp,
                        ),
                        (Vector::Str(dst), PdictValues::Str(d)) => {
                            k::decode_sel_pdict_str_col(dst, payload, lane, d, tmp)
                        }
                        (o, _) => {
                            return Err(format!("pdict gather into {:?}", o.scalar_type()));
                        }
                    }
                }
            }
            i += tmp.len();
        }
        Ok(())
    }

    /// The registered gather-decode signature the lazy materialization
    /// runs (`decode_sel_*`), or `None` for formats without one.
    pub fn decode_sel_sig(&self) -> Option<&'static str> {
        macro_rules! sig {
            ($codec:literal, $($t:ident => $n:literal),+ $(,)?) => {
                match self.physical {
                    $(ScalarType::$t => Some(concat!("decode_sel_", $codec, "_", $n, "_col")),)+
                    _ => None,
                }
            };
        }
        match self.format {
            ChunkFormat::Pfor => sig!(
                "pfor",
                I8 => "i8", I16 => "i16", I32 => "i32", I64 => "i64",
                U8 => "u8", U16 => "u16", U32 => "u32", U64 => "u64",
                F64 => "f64",
            ),
            ChunkFormat::Pdict => sig!(
                "pdict",
                I32 => "i32", I64 => "i64", F64 => "f64", Str => "str",
            ),
            ChunkFormat::Raw | ChunkFormat::PforDelta => None,
        }
    }
}

/// Comparison operator of a pushed-down predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Between,
}

impl PushOp {
    /// Lowercase signature fragment (`eq`, `lt`, …).
    pub fn name(self) -> &'static str {
        match self {
            PushOp::Eq => "eq",
            PushOp::Ne => "ne",
            PushOp::Lt => "lt",
            PushOp::Le => "le",
            PushOp::Gt => "gt",
            PushOp::Ge => "ge",
            PushOp::Between => "between",
        }
    }
}

/// One predicate compiled into a compressed column's encoded space.
/// For PFOR the constant is re-translated per chunk (base and scale are
/// per-chunk properties); for PDICT the dictionary was already
/// evaluated at compile time and collapsed into a code-set test.
#[derive(Debug, Clone)]
pub struct Pushdown {
    op: PushOp,
    lo: Value,
    hi: Option<Value>,
    dict: Option<k::DictSel>,
    sig: String,
}

impl Pushdown {
    /// The registered compare-primitive signature this pushdown runs —
    /// `engine::check` verifies it like any compiled instruction.
    pub fn sig(&self) -> &str {
        &self.sig
    }

    /// True when this pushdown is a dictionary-predicate rewrite.
    pub fn is_dict_rewrite(&self) -> bool {
        self.dict.is_some()
    }

    /// The comparison this pushdown evaluates.
    pub fn op(&self) -> PushOp {
        self.op
    }

    /// The (lower) comparison constant, in value space.
    pub fn lo(&self) -> &Value {
        &self.lo
    }

    /// The upper bound of a `Between`, in value space.
    pub fn hi(&self) -> Option<&Value> {
        self.hi.as_ref()
    }
}

/// Per-chunk PFOR dispatch: translate the typed constant into this
/// chunk's encoded space and walk the packed lanes.
fn pfor_chunk_select(p: &Pushdown, c: &k::PforChunk, local: usize, n: usize, out: &mut Vec<u32>) {
    macro_rules! ops {
        ($variant:ident, $v:expr, $eq:path, $lt:path, $le:path, $gt:path, $ge:path, $bt:path) => {
            match p.op {
                PushOp::Eq => $eq(c, local, n, $v, out),
                PushOp::Lt => $lt(c, local, n, $v, out),
                PushOp::Le => $le(c, local, n, $v, out),
                PushOp::Gt => $gt(c, local, n, $v, out),
                PushOp::Ge => $ge(c, local, n, $v, out),
                PushOp::Between => match &p.hi {
                    Some(Value::$variant(w)) => $bt(c, local, n, $v, *w, out),
                    other => unreachable!("between upper bound {other:?}"),
                },
                PushOp::Ne => unreachable!("ne is not a PFOR pushdown"),
            }
        };
    }
    match &p.lo {
        Value::I8(v) => ops!(
            I8,
            *v,
            k::cmp_pfor_eq_i8_col_val,
            k::cmp_pfor_lt_i8_col_val,
            k::cmp_pfor_le_i8_col_val,
            k::cmp_pfor_gt_i8_col_val,
            k::cmp_pfor_ge_i8_col_val,
            k::cmp_pfor_between_i8_col_val_val
        ),
        Value::I16(v) => ops!(
            I16,
            *v,
            k::cmp_pfor_eq_i16_col_val,
            k::cmp_pfor_lt_i16_col_val,
            k::cmp_pfor_le_i16_col_val,
            k::cmp_pfor_gt_i16_col_val,
            k::cmp_pfor_ge_i16_col_val,
            k::cmp_pfor_between_i16_col_val_val
        ),
        Value::I32(v) => ops!(
            I32,
            *v,
            k::cmp_pfor_eq_i32_col_val,
            k::cmp_pfor_lt_i32_col_val,
            k::cmp_pfor_le_i32_col_val,
            k::cmp_pfor_gt_i32_col_val,
            k::cmp_pfor_ge_i32_col_val,
            k::cmp_pfor_between_i32_col_val_val
        ),
        Value::I64(v) => ops!(
            I64,
            *v,
            k::cmp_pfor_eq_i64_col_val,
            k::cmp_pfor_lt_i64_col_val,
            k::cmp_pfor_le_i64_col_val,
            k::cmp_pfor_gt_i64_col_val,
            k::cmp_pfor_ge_i64_col_val,
            k::cmp_pfor_between_i64_col_val_val
        ),
        Value::U8(v) => ops!(
            U8,
            *v,
            k::cmp_pfor_eq_u8_col_val,
            k::cmp_pfor_lt_u8_col_val,
            k::cmp_pfor_le_u8_col_val,
            k::cmp_pfor_gt_u8_col_val,
            k::cmp_pfor_ge_u8_col_val,
            k::cmp_pfor_between_u8_col_val_val
        ),
        Value::U16(v) => ops!(
            U16,
            *v,
            k::cmp_pfor_eq_u16_col_val,
            k::cmp_pfor_lt_u16_col_val,
            k::cmp_pfor_le_u16_col_val,
            k::cmp_pfor_gt_u16_col_val,
            k::cmp_pfor_ge_u16_col_val,
            k::cmp_pfor_between_u16_col_val_val
        ),
        Value::U32(v) => ops!(
            U32,
            *v,
            k::cmp_pfor_eq_u32_col_val,
            k::cmp_pfor_lt_u32_col_val,
            k::cmp_pfor_le_u32_col_val,
            k::cmp_pfor_gt_u32_col_val,
            k::cmp_pfor_ge_u32_col_val,
            k::cmp_pfor_between_u32_col_val_val
        ),
        Value::U64(v) => ops!(
            U64,
            *v,
            k::cmp_pfor_eq_u64_col_val,
            k::cmp_pfor_lt_u64_col_val,
            k::cmp_pfor_le_u64_col_val,
            k::cmp_pfor_gt_u64_col_val,
            k::cmp_pfor_ge_u64_col_val,
            k::cmp_pfor_between_u64_col_val_val
        ),
        Value::F64(v) => ops!(
            F64,
            *v,
            k::cmp_pfor_eq_f64_col_val,
            k::cmp_pfor_lt_f64_col_val,
            k::cmp_pfor_le_f64_col_val,
            k::cmp_pfor_gt_f64_col_val,
            k::cmp_pfor_ge_f64_col_val,
            k::cmp_pfor_between_f64_col_val_val
        ),
        other => unreachable!("pfor pushdown constant {other:?}"),
    }
}

/// Lowercase type name used in primitive signatures.
fn ty_name(t: ScalarType) -> &'static str {
    match t {
        ScalarType::I8 => "i8",
        ScalarType::I16 => "i16",
        ScalarType::I32 => "i32",
        ScalarType::I64 => "i64",
        ScalarType::U8 => "u8",
        ScalarType::U16 => "u16",
        ScalarType::U32 => "u32",
        ScalarType::U64 => "u64",
        ScalarType::F64 => "f64",
        ScalarType::Str => "str",
        ScalarType::Bool => "bool",
    }
}

/// 8-bit fold of a byte block (torn-write detector, not crypto).
///
/// Folds eight bytes per step instead of one: a rotate/xor over 64-bit
/// words with a byte-wise tail, reduced to 8 bits by xoring the lanes
/// together. The whole pipeline is *linear* over GF(2) — rotates and
/// xors never cancel an injected difference against the original data —
/// so a single flipped bit anywhere in the block always flips the
/// checksum, exactly the guarantee the torn-write fault plan exercises.
/// Verification runs once per chunk per cursor, ahead of every decode
/// path; the word-at-a-time fold keeps that fixed cost from dominating
/// selective decodes that only touch a handful of rows per chunk.
fn byte_fold(acc: u8, bytes: &[u8]) -> u8 {
    // Four independent rotate/xor accumulators hide the serial
    // dependency of a single fold chain; distinct rotations at the
    // merge keep the combination linear but lane-position-sensitive.
    let mut l = [acc as u64, 0u64, 0u64, 0u64];
    let mut blocks = bytes.chunks_exact(32);
    for blk in blocks.by_ref() {
        for (j, ch) in blk.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(ch);
            l[j] = l[j].rotate_left(7) ^ u64::from_le_bytes(b);
        }
    }
    let mut w = l[0].rotate_left(31) ^ l[1].rotate_left(19) ^ l[2].rotate_left(9) ^ l[3];
    for &b in blocks.remainder() {
        w = w.rotate_left(7) ^ b as u64;
    }
    let f = w ^ (w >> 32);
    let f = f ^ (f >> 16);
    (f ^ (f >> 8)) as u8
}

/// 8-bit fold over one raw byte block — the chunk-checksum fold with
/// its standard seed, exposed so spill-run frames that store *raw*
/// (incompressible) column bytes get the same torn-byte detection as
/// compressed chunks.
pub fn fold_checksum(bytes: &[u8]) -> u8 {
    byte_fold(0xA5, bytes)
}

/// Stable on-disk tag of a physical scalar type (spill/serialize use).
pub(crate) fn scalar_tag(t: ScalarType) -> u8 {
    match t {
        ScalarType::I8 => 0,
        ScalarType::I16 => 1,
        ScalarType::I32 => 2,
        ScalarType::I64 => 3,
        ScalarType::U8 => 4,
        ScalarType::U16 => 5,
        ScalarType::U32 => 6,
        ScalarType::U64 => 7,
        ScalarType::F64 => 8,
        ScalarType::Str => 9,
        ScalarType::Bool => 10,
    }
}

pub(crate) fn scalar_from_tag(tag: u8) -> Result<ScalarType, String> {
    Ok(match tag {
        0 => ScalarType::I8,
        1 => ScalarType::I16,
        2 => ScalarType::I32,
        3 => ScalarType::I64,
        4 => ScalarType::U8,
        5 => ScalarType::U16,
        6 => ScalarType::U32,
        7 => ScalarType::U64,
        8 => ScalarType::F64,
        9 => ScalarType::Str,
        t => return Err(format!("unknown scalar tag {t}")),
    })
}

/// Bounds-checked little-endian reader over a serialized column.
pub(crate) struct ByteReader<'a> {
    pub(crate) b: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.b.len() {
            return Err(format!(
                "truncated column stream: need {} bytes at {}, have {}",
                n,
                self.at,
                self.b.len()
            ));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn exceptions(&mut self, n: usize) -> Result<(Vec<u32>, Vec<u64>), String> {
        let mut pos = Vec::with_capacity(n);
        for _ in 0..n {
            pos.push(self.u32()?);
        }
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            frames.push(self.u64()?);
        }
        Ok((pos, frames))
    }
}

fn pfor_checksum(c: &k::PforChunk) -> u8 {
    let mut a = byte_fold(0xA5, &c.payload);
    for &p in &c.exc_pos {
        a = byte_fold(a, &p.to_le_bytes());
    }
    for &f in &c.exc_frames {
        a = byte_fold(a, &f.to_le_bytes());
    }
    a
}

fn pfordelta_checksum(c: &k::PforDeltaChunk) -> u8 {
    let mut a = byte_fold(0xA5, &c.payload);
    for &p in &c.exc_pos {
        a = byte_fold(a, &p.to_le_bytes());
    }
    for &f in &c.exc_frames {
        a = byte_fold(a, &f.to_le_bytes());
    }
    for &s in &c.sync {
        a = byte_fold(a, &s.to_le_bytes());
    }
    a
}

/// The checksum stored in a chunk's header: an 8-bit fold over every
/// body block the decoder will touch.
fn chunk_checksum(body: &ChunkBody) -> u8 {
    match body {
        ChunkBody::Pfor(c) => pfor_checksum(c),
        ChunkBody::PforDelta(c) => pfordelta_checksum(c),
        ChunkBody::Pdict(p) => byte_fold(0xA5, p),
    }
}

/// Exact exception count among the gathered (ascending) positions.
/// Iterates the (few) exceptions inside the selection's span and
/// binary-searches each one, so the cost scales with the patch list,
/// not with the number of selected positions.
fn sel_exceptions(exc_pos: &[u32], sel: &[u32]) -> u64 {
    let (Some(&first), Some(&last)) = (sel.first(), sel.last()) else {
        return 0;
    };
    let lo = exc_pos.partition_point(|&p| p < first);
    let hi = exc_pos.partition_point(|&p| p <= last);
    exc_pos[lo..hi]
        .iter()
        .filter(|&&p| sel.binary_search(&p).is_ok())
        .count() as u64
}

/// Exceptions falling in `[start, start + n)` of a sorted patch list.
fn window_exceptions(exc_pos: &[u32], start: usize, n: usize) -> u64 {
    let lo = exc_pos.partition_point(|&p| (p as usize) < start);
    let hi = exc_pos.partition_point(|&p| (p as usize) < start + n);
    (hi - lo) as u64
}

/// Compress `data` in a specific format, or `None` when the format does
/// not apply to this column (wrong type, unsorted for PFOR-DELTA,
/// cardinality too high for PDICT). `Raw` always yields `None`.
pub fn compress_column_as(data: &ColumnData, format: ChunkFormat) -> Option<CompressedColumn> {
    if data.is_empty() {
        return None;
    }
    let (chunks, dict, dict_lane) = match format {
        ChunkFormat::Raw => return None,
        ChunkFormat::Pfor => (pfor_chunks(data)?, None, 0),
        ChunkFormat::PforDelta => (pfordelta_chunks(data)?, None, 0),
        ChunkFormat::Pdict => {
            let (chunks, dict, lane) = pdict_chunks(data)?;
            (chunks, Some(dict), lane)
        }
    };
    let mut chunk_offsets = Vec::with_capacity(chunks.len());
    let mut off = 0u64;
    for c in &chunks {
        chunk_offsets.push(off);
        off += c.byte_size() as u64;
    }
    let compressed_bytes = off + dict.as_ref().map_or(0, |d| d.byte_size() as u64);
    Some(CompressedColumn {
        format,
        physical: data.scalar_type(),
        rows: data.len(),
        chunks,
        chunk_offsets,
        dict,
        dict_lane,
        raw_bytes: data.byte_size() as u64,
        compressed_bytes,
    })
}

/// The per-column format chooser: samples sort order and cardinality,
/// compresses with every applicable format, and keeps the smallest
/// result — unless even the winner saves less than 10% of the raw
/// bytes, in which case the column stays raw (`None`).
pub fn choose_and_compress(data: &ColumnData) -> Option<CompressedColumn> {
    let mut candidates: Vec<ChunkFormat> = Vec::new();
    match data {
        ColumnData::Str(_) => candidates.push(ChunkFormat::Pdict),
        ColumnData::F64(_) => {
            candidates.push(ChunkFormat::Pfor);
            candidates.push(ChunkFormat::Pdict);
        }
        _ => {
            candidates.push(ChunkFormat::Pfor);
            if is_sorted(data) {
                candidates.push(ChunkFormat::PforDelta);
            }
            if matches!(data, ColumnData::I32(_) | ColumnData::I64(_)) {
                candidates.push(ChunkFormat::Pdict);
            }
        }
    }
    let best = candidates
        .into_iter()
        .filter_map(|f| compress_column_as(data, f))
        .min_by_key(|c| c.compressed_bytes)?;
    // Fall back to raw unless compression saves at least 10%.
    if best.compressed_bytes * 10 <= best.raw_bytes * 9 {
        Some(best)
    } else {
        None
    }
}

fn is_sorted(data: &ColumnData) -> bool {
    match data {
        ColumnData::I8(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I16(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I32(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I64(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U8(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U16(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U32(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U64(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::F64(_) | ColumnData::Str(_) => false,
    }
}

fn pfor_header(format: ChunkFormat, rows: usize, c: &k::PforChunk) -> ChunkHeader {
    ChunkHeader {
        format,
        lane: c.lane as u8,
        checksum: pfor_checksum(c),
        rows: rows as u32,
        scale: c.scale,
        base: c.base,
        payload_bytes: c.payload.len() as u32,
        exceptions: c.exc_pos.len() as u32,
        sync_points: 0,
    }
}

fn pfor_chunks(data: &ColumnData) -> Option<Vec<CompressedChunk>> {
    macro_rules! chunked {
        ($v:expr, $comp:path) => {
            $v.chunks(CHUNK_ROWS)
                .map(|s| {
                    let c = $comp(s);
                    CompressedChunk {
                        header: pfor_header(ChunkFormat::Pfor, s.len(), &c),
                        body: ChunkBody::Pfor(c),
                    }
                })
                .collect()
        };
    }
    Some(match data {
        ColumnData::I8(v) => chunked!(v, k::compress_pfor_i8_col),
        ColumnData::I16(v) => chunked!(v, k::compress_pfor_i16_col),
        ColumnData::I32(v) => chunked!(v, k::compress_pfor_i32_col),
        ColumnData::I64(v) => chunked!(v, k::compress_pfor_i64_col),
        ColumnData::U8(v) => chunked!(v, k::compress_pfor_u8_col),
        ColumnData::U16(v) => chunked!(v, k::compress_pfor_u16_col),
        ColumnData::U32(v) => chunked!(v, k::compress_pfor_u32_col),
        ColumnData::U64(v) => chunked!(v, k::compress_pfor_u64_col),
        ColumnData::F64(v) => chunked!(v, k::compress_pfor_f64_col),
        ColumnData::Str(_) => return None,
    })
}

fn pfordelta_chunks(data: &ColumnData) -> Option<Vec<CompressedChunk>> {
    macro_rules! chunked {
        ($v:expr, $comp:path, $pfor:path) => {
            $v.chunks(CHUNK_ROWS)
                .map(|s| match $comp(s) {
                    // A chunk that is not non-decreasing falls back to
                    // plain PFOR; its header self-describes the switch.
                    None => {
                        let c = $pfor(s);
                        CompressedChunk {
                            header: pfor_header(ChunkFormat::Pfor, s.len(), &c),
                            body: ChunkBody::Pfor(c),
                        }
                    }
                    Some(c) => CompressedChunk {
                        header: ChunkHeader {
                            format: ChunkFormat::PforDelta,
                            lane: c.lane as u8,
                            checksum: pfordelta_checksum(&c),
                            rows: s.len() as u32,
                            scale: 0,
                            base: c.base,
                            payload_bytes: c.payload.len() as u32,
                            exceptions: c.exc_pos.len() as u32,
                            sync_points: c.sync.len() as u32,
                        },
                        body: ChunkBody::PforDelta(c),
                    },
                })
                .collect()
        };
    }
    Some(match data {
        ColumnData::I8(v) => chunked!(v, k::compress_pfordelta_i8_col, k::compress_pfor_i8_col),
        ColumnData::I16(v) => chunked!(v, k::compress_pfordelta_i16_col, k::compress_pfor_i16_col),
        ColumnData::I32(v) => chunked!(v, k::compress_pfordelta_i32_col, k::compress_pfor_i32_col),
        ColumnData::I64(v) => chunked!(v, k::compress_pfordelta_i64_col, k::compress_pfor_i64_col),
        ColumnData::U8(v) => chunked!(v, k::compress_pfordelta_u8_col, k::compress_pfor_u8_col),
        ColumnData::U16(v) => chunked!(v, k::compress_pfordelta_u16_col, k::compress_pfor_u16_col),
        ColumnData::U32(v) => chunked!(v, k::compress_pfordelta_u32_col, k::compress_pfor_u32_col),
        ColumnData::U64(v) => chunked!(v, k::compress_pfordelta_u64_col, k::compress_pfor_u64_col),
        ColumnData::F64(_) | ColumnData::Str(_) => return None,
    })
}

/// Cardinality cap for PDICT on numeric columns: beyond this the
/// binary-search encode and the dictionary itself stop paying.
const PDICT_NUMERIC_CAP: usize = 4096;

/// Cardinality cap for PDICT on string columns (2-byte codes).
const PDICT_STR_CAP: usize = 65536;

fn pdict_chunks(data: &ColumnData) -> Option<(Vec<CompressedChunk>, PdictValues, u32)> {
    macro_rules! numeric {
        ($v:expr, $variant:ident, $comp:path) => {{
            let mut dict: Vec<_> = $v.clone();
            dict.sort_unstable();
            dict.dedup();
            if dict.len() > PDICT_NUMERIC_CAP {
                return None;
            }
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let chunks = $v
                .chunks(CHUNK_ROWS)
                .map(|s| {
                    let payload = $comp(s, &dict, lane).expect("dict covers the column");
                    CompressedChunk {
                        header: pdict_header(s.len(), lane, &payload),
                        body: ChunkBody::Pdict(payload),
                    }
                })
                .collect();
            Some((chunks, PdictValues::$variant(dict), lane))
        }};
    }
    match data {
        ColumnData::I32(v) => numeric!(v, I32, k::compress_pdict_i32_col),
        ColumnData::I64(v) => numeric!(v, I64, k::compress_pdict_i64_col),
        ColumnData::F64(v) => {
            let mut dict: Vec<f64> = v.clone();
            dict.sort_unstable_by(|a, b| a.total_cmp(b));
            dict.dedup_by(|a, b| a.to_bits() == b.to_bits());
            if dict.len() > PDICT_NUMERIC_CAP {
                return None;
            }
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let chunks = v
                .chunks(CHUNK_ROWS)
                .map(|s| {
                    let payload =
                        k::compress_pdict_f64_col(s, &dict, lane).expect("dict covers the column");
                    CompressedChunk {
                        header: pdict_header(s.len(), lane, &payload),
                        body: ChunkBody::Pdict(payload),
                    }
                })
                .collect();
            Some((chunks, PdictValues::F64(dict), lane))
        }
        ColumnData::Str(v) => {
            let mut sorted: Vec<&str> = v.iter().collect();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() > PDICT_STR_CAP {
                return None;
            }
            let dict: StrVec = sorted.iter().copied().collect();
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let mut chunks = Vec::new();
            let mut start = 0usize;
            while start < v.len() {
                let n = (v.len() - start).min(CHUNK_ROWS);
                let mut slice = StrVec::with_capacity(n, 8);
                for i in start..start + n {
                    slice.push(v.get(i));
                }
                let payload =
                    k::compress_pdict_str_col(&slice, &dict, lane).expect("dict covers the column");
                chunks.push(CompressedChunk {
                    header: pdict_header(n, lane, &payload),
                    body: ChunkBody::Pdict(payload),
                });
                start += n;
            }
            Some((chunks, PdictValues::Str(dict), lane))
        }
        _ => None,
    }
}

fn pdict_header(rows: usize, lane: u32, payload: &[u8]) -> ChunkHeader {
    ChunkHeader {
        format: ChunkFormat::Pdict,
        lane: lane as u8,
        checksum: byte_fold(0xA5, payload),
        rows: rows as u32,
        scale: 0,
        base: 0,
        payload_bytes: payload.len() as u32,
        exceptions: 0,
        sync_points: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &ColumnData, format: ChunkFormat) -> CompressedColumn {
        let col = compress_column_as(data, format).expect("format applies");
        let mut out = Vector::with_capacity(data.scalar_type(), 1024);
        let mut cursor = DecodeCursor::default();
        let mut scratch = Vec::new();
        // Decode in 1000-row vectors (deliberately misaligned with both
        // CHUNK_ROWS and DELTA_SYNC) and compare to read_into.
        let mut want = Vector::with_capacity(data.scalar_type(), 1024);
        let mut at = 0usize;
        while at < data.len() {
            let n = (data.len() - at).min(1000);
            col.decode_range(at, n, &mut out, &mut cursor, &mut scratch)
                .expect("checksum verifies");
            data.read_into(at, n, &mut want);
            assert_eq!(out, want, "window at {at}");
            at += n;
        }
        col
    }

    #[test]
    fn header_roundtrip() {
        let h = ChunkHeader {
            format: ChunkFormat::PforDelta,
            lane: 16,
            checksum: 0x5A,
            rows: 65536,
            scale: 100,
            base: 0xDEAD_BEEF,
            payload_bytes: 131072,
            exceptions: 17,
            sync_points: 64,
        };
        assert_eq!(ChunkHeader::decode(&h.encode()), Ok(h));
        let mut bad = h.encode();
        bad[0] = 0;
        assert!(ChunkHeader::decode(&bad).is_err());
        bad = h.encode();
        bad[1] = 9;
        assert!(ChunkHeader::decode(&bad).is_err());
    }

    #[test]
    fn pfor_column_roundtrip_multi_chunk() {
        let v: Vec<i64> = (0..150_000).map(|i| 50 + (i * 7) % 200).collect();
        let col = roundtrip(&ColumnData::I64(v), ChunkFormat::Pfor);
        assert_eq!(col.num_chunks(), 3);
        assert!(col.ratio_pct() < 20, "8-byte ints in a 1-byte range");
        assert_eq!(col.decode_sig(), "decompress_pfor_i64_col");
    }

    #[test]
    fn pfor_f64_column_roundtrip() {
        let v: Vec<f64> = (0..80_000).map(|i| (i % 5000) as f64 / 100.0).collect();
        let col = roundtrip(&ColumnData::F64(v), ChunkFormat::Pfor);
        assert!(
            col.ratio_pct() <= 30,
            "cents fit 2 bytes: {}",
            col.ratio_pct()
        );
    }

    #[test]
    fn pfordelta_column_roundtrip_with_cursor() {
        let v: Vec<i32> = (0..200_000).map(|i| i * 2).collect();
        let col = roundtrip(&ColumnData::I32(v), ChunkFormat::PforDelta);
        assert!(col.ratio_pct() < 40, "constant deltas: {}", col.ratio_pct());
        assert_eq!(col.decode_sig(), "decompress_pfordelta_i32_col");
    }

    #[test]
    fn pfordelta_random_access_ignores_cursor() {
        let v: Vec<u64> = (0..100_000u64).map(|i| i * i / 1000).collect();
        let data = ColumnData::U64(v.clone());
        let col = compress_column_as(&data, ChunkFormat::PforDelta).expect("sorted");
        let mut out = Vector::with_capacity(ScalarType::U64, 64);
        let mut scratch = Vec::new();
        // Jump around: each decode must be position-correct regardless
        // of the stale cursor.
        for start in [70_000usize, 3, 65_530, 99_990, 0] {
            let mut cursor = DecodeCursor {
                chunk: 1,
                next_row: 12345,
                carry: 999,
                verified: None,
            };
            let n = 10.min(v.len() - start);
            col.decode_range(start, n, &mut out, &mut cursor, &mut scratch)
                .expect("checksum verifies");
            assert_eq!(out.as_u64(), &v[start..start + n]);
        }
    }

    #[test]
    fn pdict_str_column_roundtrip() {
        let mut s = StrVec::new();
        for i in 0..70_000 {
            s.push(["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"][i % 5]);
        }
        let col = roundtrip(&ColumnData::Str(s), ChunkFormat::Pdict);
        assert_eq!(col.decode_sig(), "decompress_pdict_str_col");
        assert!(col.ratio_pct() < 30, "1-byte codes vs 4+-byte strings");
    }

    #[test]
    fn pdict_f64_column_roundtrip() {
        let v: Vec<f64> = (0..50_000)
            .map(|i| [0.0, -0.0, 0.04, 0.07][i % 4])
            .collect();
        let col = roundtrip(&ColumnData::F64(v), ChunkFormat::Pdict);
        assert_eq!(col.format(), ChunkFormat::Pdict);
    }

    #[test]
    fn chooser_prefers_delta_on_sorted_keys() {
        let v: Vec<i64> = (0..100_000).collect();
        let col = choose_and_compress(&ColumnData::I64(v)).expect("compresses");
        assert_eq!(col.format(), ChunkFormat::PforDelta);
    }

    #[test]
    fn chooser_falls_back_to_raw_on_random_wide_values() {
        // xorshift values spanning the full u64 range: nothing pays.
        let mut x = 0x12345678u64;
        let v: Vec<u64> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        assert!(choose_and_compress(&ColumnData::U64(v)).is_none());
    }

    #[test]
    fn chooser_picks_pdict_for_low_cardinality_strings() {
        let mut s = StrVec::new();
        for i in 0..30_000 {
            s.push(if i % 2 == 0 { "YES" } else { "NO" });
        }
        let col = choose_and_compress(&ColumnData::Str(s)).expect("compresses");
        assert_eq!(col.format(), ChunkFormat::Pdict);
    }

    #[test]
    fn empty_column_stays_raw() {
        assert!(choose_and_compress(&ColumnData::I64(Vec::new())).is_none());
        assert!(compress_column_as(&ColumnData::I64(Vec::new()), ChunkFormat::Pfor).is_none());
    }

    #[test]
    fn decode_stats_account_compressed_bytes() {
        let v: Vec<i64> = (0..70_000).map(|i| i % 100).collect();
        let data = ColumnData::I64(v);
        let col = compress_column_as(&data, ChunkFormat::Pfor).expect("compresses");
        let mut out = Vector::with_capacity(ScalarType::I64, 1024);
        let mut cursor = DecodeCursor::default();
        let mut scratch = Vec::new();
        let stats = col
            .decode_range(66_000, 1024, &mut out, &mut cursor, &mut scratch)
            .expect("checksum verifies");
        // Lane-8 frames: ~1 byte per row plus the header, far below raw.
        assert!(stats.comp_len >= 1024);
        assert!(stats.comp_len < 8 * 1024);
        assert!(stats.comp_offset > 0, "second chunk starts past the first");
    }

    #[test]
    fn pushdown_pfor_matches_decode_then_select() {
        let mut v: Vec<i64> = (0..150_000).map(|i| 50 + (i * 7) % 200).collect();
        // Outliers become exception-patched slow-lane entries.
        v[123] = 1_000_000;
        v[70_000] = -5;
        let data = ColumnData::I64(v.clone());
        let col = compress_column_as(&data, ChunkFormat::Pfor).expect("applies");
        type Pred = Box<dyn Fn(i64) -> bool>;
        let cases: Vec<(PushOp, i64, Option<i64>, Pred)> = vec![
            (PushOp::Eq, 57, None, Box::new(|x| x == 57)),
            (PushOp::Lt, 60, None, Box::new(|x| x < 60)),
            (PushOp::Le, 60, None, Box::new(|x| x <= 60)),
            (PushOp::Gt, 240, None, Box::new(|x| x > 240)),
            (PushOp::Ge, 240, None, Box::new(|x| x >= 240)),
            (
                PushOp::Between,
                55,
                Some(65),
                Box::new(|x| (55..=65).contains(&x)),
            ),
        ];
        for (op, lo, hi, f) in cases {
            let w = hi.map(Value::I64);
            let p = col
                .compile_pushdown(op, &Value::I64(lo), w.as_ref())
                .expect("pfor i64 pushdown compiles");
            assert!(!p.is_dict_rewrite());
            let mut cursor = DecodeCursor::default();
            let mut tmp = Vec::new();
            let mut at = 0usize;
            while at < v.len() {
                let n = (v.len() - at).min(1000);
                let mut got = Vec::new();
                col.select_range(&p, at, n, &mut got, &mut tmp, &mut cursor)
                    .expect("checksum verifies");
                let want: Vec<u32> = (0..n).filter(|&i| f(v[at + i])).map(|i| i as u32).collect();
                assert_eq!(got, want, "{op:?} window at {at}");
                let mut out = Vector::with_capacity(ScalarType::I64, 64);
                col.decode_positions(at, &got, &mut out, &mut tmp, &mut cursor)
                    .expect("checksum verifies");
                let wantv: Vec<i64> = got.iter().map(|&i| v[at + i as usize]).collect();
                assert_eq!(out.as_i64(), &wantv[..], "{op:?} values at {at}");
                at += n;
            }
        }
    }

    #[test]
    fn pushdown_pdict_str_never_decodes_unselected() {
        let name = |i: usize| ["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"][i % 5];
        let mut s = StrVec::new();
        for i in 0..70_000 {
            s.push(name(i));
        }
        let col = compress_column_as(&ColumnData::Str(s), ChunkFormat::Pdict).expect("applies");
        type Pred = Box<dyn Fn(&str) -> bool>;
        let cases: Vec<(PushOp, Pred)> = vec![
            (PushOp::Eq, Box::new(|x| x == "SHIP")),
            (PushOp::Ne, Box::new(|x| x != "SHIP")),
            (PushOp::Lt, Box::new(|x| x < "SHIP")),
            (PushOp::Ge, Box::new(|x| x >= "SHIP")),
        ];
        for (op, f) in cases {
            let p = col
                .compile_pushdown(op, &Value::Str("SHIP".into()), None)
                .expect("dict rewrite compiles");
            assert!(p.is_dict_rewrite());
            assert_eq!(p.sig(), format!("cmp_pdict_{}_str_col_val", op.name()));
            let mut cursor = DecodeCursor::default();
            let mut tmp = Vec::new();
            let mut got = Vec::new();
            // A window crossing the 65536-row chunk boundary.
            col.select_range(&p, 64_000, 3_000, &mut got, &mut tmp, &mut cursor)
                .expect("checksum verifies");
            let want: Vec<u32> = (0..3_000)
                .filter(|&i| f(name(64_000 + i)))
                .map(|i| i as u32)
                .collect();
            assert_eq!(got, want, "{op:?}");
            let mut out = Vector::with_capacity(ScalarType::Str, 8);
            col.decode_positions(64_000, &got, &mut out, &mut tmp, &mut cursor)
                .expect("checksum verifies");
            match &out {
                Vector::Str(sv) => {
                    assert_eq!(sv.len(), got.len());
                    for (o, &i) in got.iter().enumerate() {
                        assert_eq!(sv.get(o), name(64_000 + i as usize), "{op:?}");
                    }
                }
                other => panic!("str gather into {:?}", other.scalar_type()),
            }
        }
    }

    #[test]
    fn pushdown_rejects_unsupported_triples() {
        let sorted: Vec<i64> = (0..100_000).collect();
        let delta =
            compress_column_as(&ColumnData::I64(sorted), ChunkFormat::PforDelta).expect("sorted");
        assert!(
            delta
                .compile_pushdown(PushOp::Eq, &Value::I64(5), None)
                .is_none(),
            "prefix sums cannot be compared in place"
        );
        let v: Vec<i64> = (0..80_000).map(|i| i % 100).collect();
        let pfor = compress_column_as(&ColumnData::I64(v.clone()), ChunkFormat::Pfor).expect("ok");
        assert!(
            pfor.compile_pushdown(PushOp::Ne, &Value::I64(5), None)
                .is_none(),
            "ne needs dictionary codes"
        );
        assert!(
            pfor.compile_pushdown(PushOp::Eq, &Value::I32(5), None)
                .is_none(),
            "constant type must match the column"
        );
        assert!(
            pfor.compile_pushdown(PushOp::Eq, &Value::I64(5), Some(&Value::I64(9)))
                .is_none(),
            "stray upper bound"
        );
        assert!(
            pfor.compile_pushdown(PushOp::Between, &Value::I64(5), None)
                .is_none(),
            "missing upper bound"
        );
        let pdict = compress_column_as(&ColumnData::I64(v), ChunkFormat::Pdict).expect("ok");
        assert!(
            pdict
                .compile_pushdown(PushOp::Between, &Value::I64(5), Some(&Value::I64(9)))
                .is_none(),
            "between stays a PFOR-frame rewrite"
        );
        assert!(
            pdict
                .compile_pushdown(PushOp::Ne, &Value::I64(5), None)
                .is_some(),
            "ne over codes is the PDICT-only op"
        );
    }

    #[test]
    fn checksum_detects_torn_write() {
        let v: Vec<i64> = (0..150_000).map(|i| i % 100).collect();
        let data = ColumnData::I64(v);
        let mut col = compress_column_as(&data, ChunkFormat::Pfor).expect("applies");
        assert!(col.verify_chunk(1).is_ok());
        assert!(col.corrupt_payload_byte(1, 7), "chunk 1 has payload");
        let err = col.verify_chunk(1).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        let mut out = Vector::with_capacity(ScalarType::I64, 1024);
        let mut scratch = Vec::new();
        // The intact chunk still reads; any window touching the torn
        // chunk refuses — wrong rows can never escape.
        let mut cursor = DecodeCursor::default();
        col.decode_range(0, 1000, &mut out, &mut cursor, &mut scratch)
            .expect("chunk 0 is intact");
        let mut cursor = DecodeCursor::default();
        let err = col
            .decode_range(66_000, 100, &mut out, &mut cursor, &mut scratch)
            .unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        let p = col
            .compile_pushdown(PushOp::Ge, &Value::I64(50), None)
            .expect("compiles");
        let mut got = Vec::new();
        let mut tmp = Vec::new();
        let mut cursor = DecodeCursor::default();
        assert!(col
            .select_range(&p, 66_000, 100, &mut got, &mut tmp, &mut cursor)
            .is_err());
    }

    #[test]
    fn gather_seeks_all_formats() {
        let mut scratch = Vec::new();
        let mut tmp = Vec::new();
        // PFOR-DELTA: the rowid-column shape — runs seek from sync
        // carries, order and duplicates preserved.
        let v: Vec<u64> = (0..200_000u64).map(|i| i * 3 / 2).collect();
        let col =
            compress_column_as(&ColumnData::U64(v.clone()), ChunkFormat::PforDelta).expect("ok");
        let rowids: Vec<u32> = vec![5, 9, 70_000, 70_001, 65_535, 65_536, 199_999, 0, 0];
        let mut out = Vector::with_capacity(ScalarType::U64, 16);
        let mut cursor = DecodeCursor::default();
        col.gather(&rowids, &mut out, &mut scratch, &mut tmp, &mut cursor)
            .expect("checksum verifies");
        let want: Vec<u64> = rowids.iter().map(|&r| v[r as usize]).collect();
        assert_eq!(out.as_u64(), &want[..]);
        // PFOR f64 goes through the selective decoder.
        let f: Vec<f64> = (0..80_000).map(|i| (i % 5000) as f64 / 100.0).collect();
        let col = compress_column_as(&ColumnData::F64(f.clone()), ChunkFormat::Pfor).expect("ok");
        let rowids: Vec<u32> = vec![0, 4_999, 70_000, 3, 79_999];
        let mut out = Vector::with_capacity(ScalarType::F64, 16);
        let mut cursor = DecodeCursor::default();
        col.gather(&rowids, &mut out, &mut scratch, &mut tmp, &mut cursor)
            .expect("checksum verifies");
        let want: Vec<f64> = rowids.iter().map(|&r| f[r as usize]).collect();
        assert_eq!(out.as_f64(), &want[..]);
        // PDICT strings gather by code.
        let name = |i: usize| ["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"][i % 5];
        let mut s = StrVec::new();
        for i in 0..70_000 {
            s.push(name(i));
        }
        let col = compress_column_as(&ColumnData::Str(s), ChunkFormat::Pdict).expect("ok");
        let rowids: Vec<u32> = vec![3, 69_999, 65_536, 1, 2];
        let mut out = Vector::with_capacity(ScalarType::Str, 8);
        let mut cursor = DecodeCursor::default();
        col.gather(&rowids, &mut out, &mut scratch, &mut tmp, &mut cursor)
            .expect("checksum verifies");
        match &out {
            Vector::Str(sv) => {
                assert_eq!(sv.len(), rowids.len());
                for (o, &r) in rowids.iter().enumerate() {
                    assert_eq!(sv.get(o), name(r as usize));
                }
            }
            other => panic!("str gather into {:?}", other.scalar_type()),
        }
    }

    #[test]
    fn decode_sel_sig_matches_format() {
        let v: Vec<i64> = (0..80_000).map(|i| i % 100).collect();
        let pfor = compress_column_as(&ColumnData::I64(v.clone()), ChunkFormat::Pfor).expect("ok");
        assert_eq!(pfor.decode_sel_sig(), Some("decode_sel_pfor_i64_col"));
        let pdict =
            compress_column_as(&ColumnData::I64(v.clone()), ChunkFormat::Pdict).expect("ok");
        assert_eq!(pdict.decode_sel_sig(), Some("decode_sel_pdict_i64_col"));
        let sorted: Vec<i64> = (0..80_000).collect();
        let delta =
            compress_column_as(&ColumnData::I64(sorted), ChunkFormat::PforDelta).expect("ok");
        assert_eq!(
            delta.decode_sel_sig(),
            None,
            "prefix sums: no gather decode"
        );
    }
}
