//! Compressed column fragments: the storage half of lightweight
//! compression (paper §4.3 / §5).
//!
//! At checkpoint / reorganize time a per-column *format chooser* samples
//! each fragment's value range, sort order and cardinality and rewrites
//! it as a sequence of compressed chunks — PFOR, PFOR-DELTA or PDICT —
//! each carrying a self-describing [`ChunkHeader`] plus exception
//! blocks. Columns where compression would not pay (savings below 10%)
//! stay raw. The scan decompresses vector-at-a-time through
//! [`CompressedColumn::decode_range`], so compressed data stays
//! compressed in the buffer pool and expands only into cache-resident
//! vectors.

use crate::column::ColumnData;
use x100_vector::compress as k;
use x100_vector::{ScalarType, StrVec, Vector};

/// Rows per compressed chunk. A multiple of the vector size and of
/// [`k::DELTA_SYNC`], so vector refills decode aligned lanes.
pub const CHUNK_ROWS: usize = 65536;

/// Encoded size of a [`ChunkHeader`].
pub const HEADER_BYTES: usize = 32;

const HEADER_MAGIC: u8 = 0xCB;

/// Physical format of one compressed chunk (or of a whole column, as
/// the chooser's verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFormat {
    /// Uncompressed — the chooser's fallback when compression won't pay.
    Raw,
    /// Patched frame-of-reference.
    Pfor,
    /// PFOR over deltas of a non-decreasing column.
    PforDelta,
    /// Dictionary codes into a column-wide sorted dictionary.
    Pdict,
}

impl ChunkFormat {
    /// Short lowercase name (bench JSON, stats display).
    pub fn name(self) -> &'static str {
        match self {
            ChunkFormat::Raw => "raw",
            ChunkFormat::Pfor => "pfor",
            ChunkFormat::PforDelta => "pfordelta",
            ChunkFormat::Pdict => "pdict",
        }
    }
}

/// Self-describing header written in front of every compressed chunk.
///
/// The header is what makes a chunk readable without consulting the
/// catalog: format tag, row count, frame lane, frame base, decimal
/// scale, payload length and the sizes of the exception / sync blocks
/// that follow the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Chunk format tag.
    pub format: ChunkFormat,
    /// Frame lane in bits (PFOR / PFOR-DELTA) or code width (PDICT).
    pub lane: u8,
    /// Rows in this chunk.
    pub rows: u32,
    /// Decimal scale for f64 frames (0 = integer frames).
    pub scale: u32,
    /// Frame base (chunk minimum / minimum delta).
    pub base: u64,
    /// Packed payload length in bytes.
    pub payload_bytes: u32,
    /// Entries in the exception block.
    pub exceptions: u32,
    /// Entries in the sync-carry block (PFOR-DELTA only).
    pub sync_points: u32,
}

impl ChunkHeader {
    /// Serialize to the on-chunk byte layout.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0] = HEADER_MAGIC;
        b[1] = match self.format {
            ChunkFormat::Raw => 0,
            ChunkFormat::Pfor => 1,
            ChunkFormat::PforDelta => 2,
            ChunkFormat::Pdict => 3,
        };
        b[2] = self.lane;
        b[4..8].copy_from_slice(&self.rows.to_le_bytes());
        b[8..12].copy_from_slice(&self.scale.to_le_bytes());
        b[12..20].copy_from_slice(&self.base.to_le_bytes());
        b[20..24].copy_from_slice(&self.payload_bytes.to_le_bytes());
        b[24..28].copy_from_slice(&self.exceptions.to_le_bytes());
        b[28..32].copy_from_slice(&self.sync_points.to_le_bytes());
        b
    }

    /// Parse the on-chunk byte layout back.
    pub fn decode(b: &[u8; HEADER_BYTES]) -> Result<ChunkHeader, String> {
        if b[0] != HEADER_MAGIC {
            return Err(format!("bad chunk magic 0x{:02x}", b[0]));
        }
        let format = match b[1] {
            0 => ChunkFormat::Raw,
            1 => ChunkFormat::Pfor,
            2 => ChunkFormat::PforDelta,
            3 => ChunkFormat::Pdict,
            t => return Err(format!("unknown chunk format tag {t}")),
        };
        let word32 = |at: usize| u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
        let mut base = [0u8; 8];
        base.copy_from_slice(&b[12..20]);
        Ok(ChunkHeader {
            format,
            lane: b[2],
            rows: word32(4),
            scale: word32(8),
            base: u64::from_le_bytes(base),
            payload_bytes: word32(20),
            exceptions: word32(24),
            sync_points: word32(28),
        })
    }
}

/// Compressed payload of one chunk.
#[derive(Debug, Clone)]
pub enum ChunkBody {
    /// Patched frame-of-reference frames + exception block.
    Pfor(k::PforChunk),
    /// Delta frames + sync carries + exception block.
    PforDelta(k::PforDeltaChunk),
    /// Packed dictionary codes (dictionary lives on the column).
    Pdict(Vec<u8>),
}

/// One compressed chunk: header + typed body.
#[derive(Debug, Clone)]
pub struct CompressedChunk {
    /// The self-describing header.
    pub header: ChunkHeader,
    /// The compressed payload.
    pub body: ChunkBody,
}

impl CompressedChunk {
    /// Total compressed footprint including the header.
    pub fn byte_size(&self) -> usize {
        HEADER_BYTES
            + match &self.body {
                ChunkBody::Pfor(c) => c.byte_size(),
                ChunkBody::PforDelta(c) => c.byte_size(),
                ChunkBody::Pdict(p) => p.len(),
            }
    }
}

/// Column-wide sorted dictionary for PDICT columns.
#[derive(Debug, Clone)]
pub enum PdictValues {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(StrVec),
}

impl PdictValues {
    fn byte_size(&self) -> usize {
        match self {
            PdictValues::I32(v) => v.len() * 4,
            PdictValues::I64(v) => v.len() * 8,
            PdictValues::F64(v) => v.len() * 8,
            PdictValues::Str(v) => v.byte_size(),
        }
    }
}

/// Decode progress of one scan over one compressed column. Sequential
/// refills continue PFOR-DELTA prefix sums from the saved carry instead
/// of replaying from the nearest sync point.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeCursor {
    chunk: usize,
    next_row: usize,
    carry: u64,
}

/// Accounting of one `decode_range` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeStats {
    /// Exception patches applied in the decoded window.
    pub exceptions: u64,
    /// Byte offset of the first compressed byte touched (for chunked
    /// buffer-manager accounting).
    pub comp_offset: u64,
    /// Compressed bytes touched (payload window + exceptions + header).
    pub comp_len: u64,
}

/// One column fragment rewritten as compressed chunks.
#[derive(Debug, Clone)]
pub struct CompressedColumn {
    format: ChunkFormat,
    physical: ScalarType,
    rows: usize,
    chunks: Vec<CompressedChunk>,
    /// Byte offset of each chunk in the compressed stream.
    chunk_offsets: Vec<u64>,
    dict: Option<PdictValues>,
    dict_lane: u32,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl CompressedColumn {
    /// The chooser's format verdict for this column.
    pub fn format(&self) -> ChunkFormat {
        self.format
    }

    /// The physical scalar type the chunks decode to.
    pub fn physical_type(&self) -> ScalarType {
        self.physical
    }

    /// Rows covered (the whole fragment at checkpoint time).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Uncompressed fragment size in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed size in bytes (headers + payloads + dictionary).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Compressed size as a percentage of raw (lower = better).
    pub fn ratio_pct(&self) -> u64 {
        (self.compressed_bytes * 100)
            .checked_div(self.raw_bytes)
            .unwrap_or(100)
    }

    /// The registered decompress-primitive signature the scan must run
    /// to expand this column — `engine::check` verifies it against the
    /// primitive registry like any other compiled instruction.
    pub fn decode_sig(&self) -> &'static str {
        macro_rules! sig {
            ($codec:literal) => {
                match self.physical {
                    ScalarType::I8 => concat!("decompress_", $codec, "_i8_col"),
                    ScalarType::I16 => concat!("decompress_", $codec, "_i16_col"),
                    ScalarType::I32 => concat!("decompress_", $codec, "_i32_col"),
                    ScalarType::I64 => concat!("decompress_", $codec, "_i64_col"),
                    ScalarType::U8 => concat!("decompress_", $codec, "_u8_col"),
                    ScalarType::U16 => concat!("decompress_", $codec, "_u16_col"),
                    ScalarType::U32 => concat!("decompress_", $codec, "_u32_col"),
                    ScalarType::U64 => concat!("decompress_", $codec, "_u64_col"),
                    ScalarType::F64 => concat!("decompress_", $codec, "_f64_col"),
                    ScalarType::Str => concat!("decompress_", $codec, "_str_col"),
                    ScalarType::Bool => unreachable!("Bool is not a storage type"),
                }
            };
        }
        match self.format {
            ChunkFormat::Raw => "raw",
            ChunkFormat::Pfor => sig!("pfor"),
            ChunkFormat::PforDelta => sig!("pfordelta"),
            ChunkFormat::Pdict => sig!("pdict"),
        }
    }

    /// Decompress rows `[start, start + rows)` into `out` (cleared and
    /// refilled, mirroring `ColumnData::read_into`). `cursor` carries
    /// sequential decode state between refills; `scratch` is the reused
    /// frame buffer the governor charges.
    pub fn decode_range(
        &self,
        start: usize,
        rows: usize,
        out: &mut Vector,
        cursor: &mut DecodeCursor,
        scratch: &mut Vec<u64>,
    ) -> DecodeStats {
        assert!(start + rows <= self.rows, "decode_range beyond fragment");
        let mut stats = DecodeStats {
            comp_offset: u64::MAX,
            ..DecodeStats::default()
        };
        if self.physical == ScalarType::Str {
            out.clear();
        } else {
            // Every numeric position is overwritten by the dense decode
            // below, so only growth needs the zero fill — resizing in
            // place (instead of clear + refill) skips one full store
            // pass per refill once the vector reaches steady state.
            out.resize_zeroed(rows);
        }
        let mut done = 0usize;
        while done < rows {
            let abs = start + done;
            let ci = abs / CHUNK_ROWS;
            let chunk = &self.chunks[ci];
            let local = abs - ci * CHUNK_ROWS;
            let n = rows - done;
            let n = n.min(chunk.header.rows as usize - local);
            self.decode_chunk(ci, local, n, done, out, cursor, scratch, &mut stats);
            done += n;
        }
        if stats.comp_offset == u64::MAX {
            stats.comp_offset = 0;
        }
        stats
    }

    /// Decode `n` rows of chunk `ci` starting at chunk-local `local`
    /// into `out` at position `at`.
    #[allow(clippy::too_many_arguments)]
    fn decode_chunk(
        &self,
        ci: usize,
        local: usize,
        n: usize,
        at: usize,
        out: &mut Vector,
        cursor: &mut DecodeCursor,
        scratch: &mut Vec<u64>,
        stats: &mut DecodeStats,
    ) {
        let chunk = &self.chunks[ci];
        let lane_bytes = (chunk.header.lane as u64) / 8;
        let mut touched = HEADER_BYTES as u64 + n as u64 * lane_bytes;
        match &chunk.body {
            ChunkBody::Pfor(c) => {
                let exc = window_exceptions(&c.exc_pos, local, n);
                touched += exc * 12;
                stats.exceptions += exc;
                macro_rules! arm {
                    ($($variant:ident => $dec:path),+ $(,)?) => {
                        match out {
                            $(Vector::$variant(dst) => $dec(&mut dst[at..at + n], c, local, scratch),)+
                            other => panic!("pfor decode into {:?}", other.scalar_type()),
                        }
                    };
                }
                arm! {
                    I8 => k::decompress_pfor_i8_col,
                    I16 => k::decompress_pfor_i16_col,
                    I32 => k::decompress_pfor_i32_col,
                    I64 => k::decompress_pfor_i64_col,
                    U8 => k::decompress_pfor_u8_col,
                    U16 => k::decompress_pfor_u16_col,
                    U32 => k::decompress_pfor_u32_col,
                    U64 => k::decompress_pfor_u64_col,
                    F64 => k::decompress_pfor_f64_col,
                }
            }
            ChunkBody::PforDelta(c) => {
                // Sequential refills continue from the cursor carry; any
                // other entry replays from the preceding sync carry.
                let abs = ci * CHUNK_ROWS + local;
                let (seek, carry) = if cursor.chunk == ci && cursor.next_row == abs && abs != 0 {
                    (local, cursor.carry)
                } else {
                    let sk = local / k::DELTA_SYNC;
                    (sk * k::DELTA_SYNC, c.sync[sk])
                };
                let exc = window_exceptions(&c.exc_pos, seek, local + n - seek);
                touched += exc * 12 + (local - seek) as u64 * lane_bytes + 8;
                stats.exceptions += exc;
                macro_rules! arm {
                    ($($variant:ident => $dec:path),+ $(,)?) => {
                        match out {
                            $(Vector::$variant(dst) => {
                                $dec(&mut dst[at..at + n], c, seek, carry, local, scratch)
                            })+
                            other => panic!("pfordelta decode into {:?}", other.scalar_type()),
                        }
                    };
                }
                let new_carry = arm! {
                    I8 => k::decompress_pfordelta_i8_col,
                    I16 => k::decompress_pfordelta_i16_col,
                    I32 => k::decompress_pfordelta_i32_col,
                    I64 => k::decompress_pfordelta_i64_col,
                    U8 => k::decompress_pfordelta_u8_col,
                    U16 => k::decompress_pfordelta_u16_col,
                    U32 => k::decompress_pfordelta_u32_col,
                    U64 => k::decompress_pfordelta_u64_col,
                };
                cursor.chunk = ci;
                cursor.next_row = abs + n;
                cursor.carry = new_carry;
            }
            ChunkBody::Pdict(payload) => {
                let dict = self.dict.as_ref().expect("pdict column has a dictionary");
                let lane = self.dict_lane;
                match (out, dict) {
                    (Vector::I32(dst), PdictValues::I32(d)) => k::decompress_pdict_i32_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::I64(dst), PdictValues::I64(d)) => k::decompress_pdict_i64_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::F64(dst), PdictValues::F64(d)) => k::decompress_pdict_f64_col(
                        &mut dst[at..at + n],
                        payload,
                        lane,
                        local,
                        d,
                        scratch,
                    ),
                    (Vector::Str(dst), PdictValues::Str(d)) => {
                        k::decompress_pdict_str_col(dst, payload, lane, local, n, d, scratch)
                    }
                    (o, _) => panic!("pdict decode into {:?}", o.scalar_type()),
                }
            }
        }
        let off = self.chunk_offsets[ci] + HEADER_BYTES as u64 + local as u64 * lane_bytes;
        stats.comp_offset = stats.comp_offset.min(off);
        stats.comp_len += touched;
    }
}

/// Exceptions falling in `[start, start + n)` of a sorted patch list.
fn window_exceptions(exc_pos: &[u32], start: usize, n: usize) -> u64 {
    let lo = exc_pos.partition_point(|&p| (p as usize) < start);
    let hi = exc_pos.partition_point(|&p| (p as usize) < start + n);
    (hi - lo) as u64
}

/// Compress `data` in a specific format, or `None` when the format does
/// not apply to this column (wrong type, unsorted for PFOR-DELTA,
/// cardinality too high for PDICT). `Raw` always yields `None`.
pub fn compress_column_as(data: &ColumnData, format: ChunkFormat) -> Option<CompressedColumn> {
    if data.is_empty() {
        return None;
    }
    let (chunks, dict, dict_lane) = match format {
        ChunkFormat::Raw => return None,
        ChunkFormat::Pfor => (pfor_chunks(data)?, None, 0),
        ChunkFormat::PforDelta => (pfordelta_chunks(data)?, None, 0),
        ChunkFormat::Pdict => {
            let (chunks, dict, lane) = pdict_chunks(data)?;
            (chunks, Some(dict), lane)
        }
    };
    let mut chunk_offsets = Vec::with_capacity(chunks.len());
    let mut off = 0u64;
    for c in &chunks {
        chunk_offsets.push(off);
        off += c.byte_size() as u64;
    }
    let compressed_bytes = off + dict.as_ref().map_or(0, |d| d.byte_size() as u64);
    Some(CompressedColumn {
        format,
        physical: data.scalar_type(),
        rows: data.len(),
        chunks,
        chunk_offsets,
        dict,
        dict_lane,
        raw_bytes: data.byte_size() as u64,
        compressed_bytes,
    })
}

/// The per-column format chooser: samples sort order and cardinality,
/// compresses with every applicable format, and keeps the smallest
/// result — unless even the winner saves less than 10% of the raw
/// bytes, in which case the column stays raw (`None`).
pub fn choose_and_compress(data: &ColumnData) -> Option<CompressedColumn> {
    let mut candidates: Vec<ChunkFormat> = Vec::new();
    match data {
        ColumnData::Str(_) => candidates.push(ChunkFormat::Pdict),
        ColumnData::F64(_) => {
            candidates.push(ChunkFormat::Pfor);
            candidates.push(ChunkFormat::Pdict);
        }
        _ => {
            candidates.push(ChunkFormat::Pfor);
            if is_sorted(data) {
                candidates.push(ChunkFormat::PforDelta);
            }
            if matches!(data, ColumnData::I32(_) | ColumnData::I64(_)) {
                candidates.push(ChunkFormat::Pdict);
            }
        }
    }
    let best = candidates
        .into_iter()
        .filter_map(|f| compress_column_as(data, f))
        .min_by_key(|c| c.compressed_bytes)?;
    // Fall back to raw unless compression saves at least 10%.
    if best.compressed_bytes * 10 <= best.raw_bytes * 9 {
        Some(best)
    } else {
        None
    }
}

fn is_sorted(data: &ColumnData) -> bool {
    match data {
        ColumnData::I8(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I16(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I32(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::I64(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U8(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U16(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U32(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::U64(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::F64(_) | ColumnData::Str(_) => false,
    }
}

fn pfor_header(format: ChunkFormat, rows: usize, c: &k::PforChunk) -> ChunkHeader {
    ChunkHeader {
        format,
        lane: c.lane as u8,
        rows: rows as u32,
        scale: c.scale,
        base: c.base,
        payload_bytes: c.payload.len() as u32,
        exceptions: c.exc_pos.len() as u32,
        sync_points: 0,
    }
}

fn pfor_chunks(data: &ColumnData) -> Option<Vec<CompressedChunk>> {
    macro_rules! chunked {
        ($v:expr, $comp:path) => {
            $v.chunks(CHUNK_ROWS)
                .map(|s| {
                    let c = $comp(s);
                    CompressedChunk {
                        header: pfor_header(ChunkFormat::Pfor, s.len(), &c),
                        body: ChunkBody::Pfor(c),
                    }
                })
                .collect()
        };
    }
    Some(match data {
        ColumnData::I8(v) => chunked!(v, k::compress_pfor_i8_col),
        ColumnData::I16(v) => chunked!(v, k::compress_pfor_i16_col),
        ColumnData::I32(v) => chunked!(v, k::compress_pfor_i32_col),
        ColumnData::I64(v) => chunked!(v, k::compress_pfor_i64_col),
        ColumnData::U8(v) => chunked!(v, k::compress_pfor_u8_col),
        ColumnData::U16(v) => chunked!(v, k::compress_pfor_u16_col),
        ColumnData::U32(v) => chunked!(v, k::compress_pfor_u32_col),
        ColumnData::U64(v) => chunked!(v, k::compress_pfor_u64_col),
        ColumnData::F64(v) => chunked!(v, k::compress_pfor_f64_col),
        ColumnData::Str(_) => return None,
    })
}

fn pfordelta_chunks(data: &ColumnData) -> Option<Vec<CompressedChunk>> {
    macro_rules! chunked {
        ($v:expr, $comp:path, $pfor:path) => {
            $v.chunks(CHUNK_ROWS)
                .map(|s| match $comp(s) {
                    // A chunk that is not non-decreasing falls back to
                    // plain PFOR; its header self-describes the switch.
                    None => {
                        let c = $pfor(s);
                        CompressedChunk {
                            header: pfor_header(ChunkFormat::Pfor, s.len(), &c),
                            body: ChunkBody::Pfor(c),
                        }
                    }
                    Some(c) => CompressedChunk {
                        header: ChunkHeader {
                            format: ChunkFormat::PforDelta,
                            lane: c.lane as u8,
                            rows: s.len() as u32,
                            scale: 0,
                            base: c.base,
                            payload_bytes: c.payload.len() as u32,
                            exceptions: c.exc_pos.len() as u32,
                            sync_points: c.sync.len() as u32,
                        },
                        body: ChunkBody::PforDelta(c),
                    },
                })
                .collect()
        };
    }
    Some(match data {
        ColumnData::I8(v) => chunked!(v, k::compress_pfordelta_i8_col, k::compress_pfor_i8_col),
        ColumnData::I16(v) => chunked!(v, k::compress_pfordelta_i16_col, k::compress_pfor_i16_col),
        ColumnData::I32(v) => chunked!(v, k::compress_pfordelta_i32_col, k::compress_pfor_i32_col),
        ColumnData::I64(v) => chunked!(v, k::compress_pfordelta_i64_col, k::compress_pfor_i64_col),
        ColumnData::U8(v) => chunked!(v, k::compress_pfordelta_u8_col, k::compress_pfor_u8_col),
        ColumnData::U16(v) => chunked!(v, k::compress_pfordelta_u16_col, k::compress_pfor_u16_col),
        ColumnData::U32(v) => chunked!(v, k::compress_pfordelta_u32_col, k::compress_pfor_u32_col),
        ColumnData::U64(v) => chunked!(v, k::compress_pfordelta_u64_col, k::compress_pfor_u64_col),
        ColumnData::F64(_) | ColumnData::Str(_) => return None,
    })
}

/// Cardinality cap for PDICT on numeric columns: beyond this the
/// binary-search encode and the dictionary itself stop paying.
const PDICT_NUMERIC_CAP: usize = 4096;

/// Cardinality cap for PDICT on string columns (2-byte codes).
const PDICT_STR_CAP: usize = 65536;

fn pdict_chunks(data: &ColumnData) -> Option<(Vec<CompressedChunk>, PdictValues, u32)> {
    macro_rules! numeric {
        ($v:expr, $variant:ident, $comp:path) => {{
            let mut dict: Vec<_> = $v.clone();
            dict.sort_unstable();
            dict.dedup();
            if dict.len() > PDICT_NUMERIC_CAP {
                return None;
            }
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let chunks = $v
                .chunks(CHUNK_ROWS)
                .map(|s| {
                    let payload = $comp(s, &dict, lane).expect("dict covers the column");
                    CompressedChunk {
                        header: pdict_header(s.len(), lane, payload.len()),
                        body: ChunkBody::Pdict(payload),
                    }
                })
                .collect();
            Some((chunks, PdictValues::$variant(dict), lane))
        }};
    }
    match data {
        ColumnData::I32(v) => numeric!(v, I32, k::compress_pdict_i32_col),
        ColumnData::I64(v) => numeric!(v, I64, k::compress_pdict_i64_col),
        ColumnData::F64(v) => {
            let mut dict: Vec<f64> = v.clone();
            dict.sort_unstable_by(|a, b| a.total_cmp(b));
            dict.dedup_by(|a, b| a.to_bits() == b.to_bits());
            if dict.len() > PDICT_NUMERIC_CAP {
                return None;
            }
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let chunks = v
                .chunks(CHUNK_ROWS)
                .map(|s| {
                    let payload =
                        k::compress_pdict_f64_col(s, &dict, lane).expect("dict covers the column");
                    CompressedChunk {
                        header: pdict_header(s.len(), lane, payload.len()),
                        body: ChunkBody::Pdict(payload),
                    }
                })
                .collect();
            Some((chunks, PdictValues::F64(dict), lane))
        }
        ColumnData::Str(v) => {
            let mut sorted: Vec<&str> = v.iter().collect();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() > PDICT_STR_CAP {
                return None;
            }
            let dict: StrVec = sorted.iter().copied().collect();
            let lane: u32 = if dict.len() <= 256 { 8 } else { 16 };
            let mut chunks = Vec::new();
            let mut start = 0usize;
            while start < v.len() {
                let n = (v.len() - start).min(CHUNK_ROWS);
                let mut slice = StrVec::with_capacity(n, 8);
                for i in start..start + n {
                    slice.push(v.get(i));
                }
                let payload =
                    k::compress_pdict_str_col(&slice, &dict, lane).expect("dict covers the column");
                chunks.push(CompressedChunk {
                    header: pdict_header(n, lane, payload.len()),
                    body: ChunkBody::Pdict(payload),
                });
                start += n;
            }
            Some((chunks, PdictValues::Str(dict), lane))
        }
        _ => None,
    }
}

fn pdict_header(rows: usize, lane: u32, payload_len: usize) -> ChunkHeader {
    ChunkHeader {
        format: ChunkFormat::Pdict,
        lane: lane as u8,
        rows: rows as u32,
        scale: 0,
        base: 0,
        payload_bytes: payload_len as u32,
        exceptions: 0,
        sync_points: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &ColumnData, format: ChunkFormat) -> CompressedColumn {
        let col = compress_column_as(data, format).expect("format applies");
        let mut out = Vector::with_capacity(data.scalar_type(), 1024);
        let mut cursor = DecodeCursor::default();
        let mut scratch = Vec::new();
        // Decode in 1000-row vectors (deliberately misaligned with both
        // CHUNK_ROWS and DELTA_SYNC) and compare to read_into.
        let mut want = Vector::with_capacity(data.scalar_type(), 1024);
        let mut at = 0usize;
        while at < data.len() {
            let n = (data.len() - at).min(1000);
            col.decode_range(at, n, &mut out, &mut cursor, &mut scratch);
            data.read_into(at, n, &mut want);
            assert_eq!(out, want, "window at {at}");
            at += n;
        }
        col
    }

    #[test]
    fn header_roundtrip() {
        let h = ChunkHeader {
            format: ChunkFormat::PforDelta,
            lane: 16,
            rows: 65536,
            scale: 100,
            base: 0xDEAD_BEEF,
            payload_bytes: 131072,
            exceptions: 17,
            sync_points: 64,
        };
        assert_eq!(ChunkHeader::decode(&h.encode()), Ok(h));
        let mut bad = h.encode();
        bad[0] = 0;
        assert!(ChunkHeader::decode(&bad).is_err());
        bad = h.encode();
        bad[1] = 9;
        assert!(ChunkHeader::decode(&bad).is_err());
    }

    #[test]
    fn pfor_column_roundtrip_multi_chunk() {
        let v: Vec<i64> = (0..150_000).map(|i| 50 + (i * 7) % 200).collect();
        let col = roundtrip(&ColumnData::I64(v), ChunkFormat::Pfor);
        assert_eq!(col.num_chunks(), 3);
        assert!(col.ratio_pct() < 20, "8-byte ints in a 1-byte range");
        assert_eq!(col.decode_sig(), "decompress_pfor_i64_col");
    }

    #[test]
    fn pfor_f64_column_roundtrip() {
        let v: Vec<f64> = (0..80_000).map(|i| (i % 5000) as f64 / 100.0).collect();
        let col = roundtrip(&ColumnData::F64(v), ChunkFormat::Pfor);
        assert!(
            col.ratio_pct() <= 30,
            "cents fit 2 bytes: {}",
            col.ratio_pct()
        );
    }

    #[test]
    fn pfordelta_column_roundtrip_with_cursor() {
        let v: Vec<i32> = (0..200_000).map(|i| i * 2).collect();
        let col = roundtrip(&ColumnData::I32(v), ChunkFormat::PforDelta);
        assert!(col.ratio_pct() < 40, "constant deltas: {}", col.ratio_pct());
        assert_eq!(col.decode_sig(), "decompress_pfordelta_i32_col");
    }

    #[test]
    fn pfordelta_random_access_ignores_cursor() {
        let v: Vec<u64> = (0..100_000u64).map(|i| i * i / 1000).collect();
        let data = ColumnData::U64(v.clone());
        let col = compress_column_as(&data, ChunkFormat::PforDelta).expect("sorted");
        let mut out = Vector::with_capacity(ScalarType::U64, 64);
        let mut scratch = Vec::new();
        // Jump around: each decode must be position-correct regardless
        // of the stale cursor.
        for start in [70_000usize, 3, 65_530, 99_990, 0] {
            let mut cursor = DecodeCursor {
                chunk: 1,
                next_row: 12345,
                carry: 999,
            };
            let n = 10.min(v.len() - start);
            col.decode_range(start, n, &mut out, &mut cursor, &mut scratch);
            assert_eq!(out.as_u64(), &v[start..start + n]);
        }
    }

    #[test]
    fn pdict_str_column_roundtrip() {
        let mut s = StrVec::new();
        for i in 0..70_000 {
            s.push(["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"][i % 5]);
        }
        let col = roundtrip(&ColumnData::Str(s), ChunkFormat::Pdict);
        assert_eq!(col.decode_sig(), "decompress_pdict_str_col");
        assert!(col.ratio_pct() < 30, "1-byte codes vs 4+-byte strings");
    }

    #[test]
    fn pdict_f64_column_roundtrip() {
        let v: Vec<f64> = (0..50_000)
            .map(|i| [0.0, -0.0, 0.04, 0.07][i % 4])
            .collect();
        let col = roundtrip(&ColumnData::F64(v), ChunkFormat::Pdict);
        assert_eq!(col.format(), ChunkFormat::Pdict);
    }

    #[test]
    fn chooser_prefers_delta_on_sorted_keys() {
        let v: Vec<i64> = (0..100_000).collect();
        let col = choose_and_compress(&ColumnData::I64(v)).expect("compresses");
        assert_eq!(col.format(), ChunkFormat::PforDelta);
    }

    #[test]
    fn chooser_falls_back_to_raw_on_random_wide_values() {
        // xorshift values spanning the full u64 range: nothing pays.
        let mut x = 0x12345678u64;
        let v: Vec<u64> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        assert!(choose_and_compress(&ColumnData::U64(v)).is_none());
    }

    #[test]
    fn chooser_picks_pdict_for_low_cardinality_strings() {
        let mut s = StrVec::new();
        for i in 0..30_000 {
            s.push(if i % 2 == 0 { "YES" } else { "NO" });
        }
        let col = choose_and_compress(&ColumnData::Str(s)).expect("compresses");
        assert_eq!(col.format(), ChunkFormat::Pdict);
    }

    #[test]
    fn empty_column_stays_raw() {
        assert!(choose_and_compress(&ColumnData::I64(Vec::new())).is_none());
        assert!(compress_column_as(&ColumnData::I64(Vec::new()), ChunkFormat::Pfor).is_none());
    }

    #[test]
    fn decode_stats_account_compressed_bytes() {
        let v: Vec<i64> = (0..70_000).map(|i| i % 100).collect();
        let data = ColumnData::I64(v);
        let col = compress_column_as(&data, ChunkFormat::Pfor).expect("compresses");
        let mut out = Vector::with_capacity(ScalarType::I64, 1024);
        let mut cursor = DecodeCursor::default();
        let mut scratch = Vec::new();
        let stats = col.decode_range(66_000, 1024, &mut out, &mut cursor, &mut scratch);
        // Lane-8 frames: ~1 byte per row plus the header, far below raw.
        assert!(stats.comp_len >= 1024);
        assert!(stats.comp_len < 8 * 1024);
        assert!(stats.comp_offset > 0, "second chunk starts past the first");
    }
}
