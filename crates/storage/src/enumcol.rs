//! Enumeration types: lightweight dictionary compression (paper §4.3).
//!
//! A low-cardinality column is stored as a single-byte or two-byte
//! integer code referring to the `#rowId` of a *mapping table* holding
//! the distinct values. MonetDB/X100 "automatically adds a `Fetch1Join`
//! operation to retrieve the uncompressed value … when such columns are
//! used in a query"; the engine crate performs that rewrite, driven by
//! the [`EnumDict`] attached to a column here.

use crate::column::ColumnData;
use x100_vector::{ScalarType, Value};

/// Maximum cardinality an enumeration type can hold (2-byte codes).
pub const MAX_ENUM_CARD: usize = u16::MAX as usize + 1;

/// The mapping table of an enumeration-typed column: distinct values in
/// code order (`code` = `#rowId` into this dictionary).
#[derive(Debug, Clone)]
pub struct EnumDict {
    values: ColumnData,
}

impl EnumDict {
    /// Wrap a dictionary column. `values.len()` must fit enum codes.
    pub fn new(values: ColumnData) -> Self {
        assert!(
            values.len() <= MAX_ENUM_CARD,
            "enum cardinality {} exceeds u16 codes",
            values.len()
        );
        EnumDict { values }
    }

    /// Cardinality of the enumeration.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// The decoded (logical) type of the column.
    pub fn value_type(&self) -> ScalarType {
        self.values.scalar_type()
    }

    /// The dictionary values as a column (the mapping table).
    pub fn values(&self) -> &ColumnData {
        &self.values
    }

    /// Decode one code (slow path).
    pub fn decode(&self, code: usize) -> Value {
        self.values.get_value(code)
    }
}

/// Result of dictionary-encoding a column: code column + dictionary.
pub struct Encoded {
    /// `U8` codes if cardinality ≤ 256, else `U16` codes.
    pub codes: ColumnData,
    /// The mapping table.
    pub dict: EnumDict,
}

/// Dictionary-encode a string column if its cardinality allows.
///
/// Returns `None` if the column has more than [`MAX_ENUM_CARD`] distinct
/// values (then plain storage must be used). Codes are assigned in first
/// lexicographic order of the distinct values, making the encoding
/// deterministic and order-preserving (`code_a < code_b ⇔ val_a < val_b`),
/// which lets range predicates run directly on codes.
pub fn encode_str(values: impl Iterator<Item = String> + Clone) -> Option<Encoded> {
    let mut distinct: Vec<String> = values.clone().collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() > MAX_ENUM_CARD {
        return None;
    }
    let lookup = |s: &str| {
        distinct
            .binary_search_by(|d| d.as_str().cmp(s))
            .expect("value in dict")
    };
    let codes = if distinct.len() <= 256 {
        ColumnData::U8(values.map(|s| lookup(&s) as u8).collect())
    } else {
        ColumnData::U16(values.map(|s| lookup(&s) as u16).collect())
    };
    let mut dictcol = ColumnData::new(ScalarType::Str);
    for v in &distinct {
        dictcol.push_value(&Value::Str(v.clone()));
    }
    Some(Encoded {
        codes,
        dict: EnumDict::new(dictcol),
    })
}

/// Dictionary-encode an `f64` column (e.g. TPC-H `l_discount`, `l_tax`,
/// `l_quantity`, which the paper stores as enumerated types, §5.1).
///
/// Values are keyed by bit pattern; order-preserving for the
/// non-negative finite values TPC-H uses.
pub fn encode_f64(values: &[f64]) -> Option<Encoded> {
    let mut distinct: Vec<f64> = values.to_vec();
    distinct.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN in enum columns"));
    distinct.dedup();
    if distinct.len() > MAX_ENUM_CARD {
        return None;
    }
    let lookup = |x: f64| {
        distinct
            .binary_search_by(|d| d.partial_cmp(&x).expect("no NaN"))
            .expect("value in dict")
    };
    let codes = if distinct.len() <= 256 {
        ColumnData::U8(values.iter().map(|&x| lookup(x) as u8).collect())
    } else {
        ColumnData::U16(values.iter().map(|&x| lookup(x) as u16).collect())
    };
    Some(Encoded {
        codes,
        dict: EnumDict::new(ColumnData::F64(distinct)),
    })
}

/// Dictionary-encode an `i64` column.
pub fn encode_i64(values: &[i64]) -> Option<Encoded> {
    let mut distinct: Vec<i64> = values.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() > MAX_ENUM_CARD {
        return None;
    }
    let lookup = |x: i64| distinct.binary_search(&x).expect("value in dict");
    let codes = if distinct.len() <= 256 {
        ColumnData::U8(values.iter().map(|&x| lookup(x) as u8).collect())
    } else {
        ColumnData::U16(values.iter().map(|&x| lookup(x) as u16).collect())
    };
    Some(Encoded {
        codes,
        dict: EnumDict::new(ColumnData::I64(distinct)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_strings_u8() {
        let data = vec![
            "N".to_string(),
            "A".to_string(),
            "N".to_string(),
            "R".to_string(),
        ];
        let enc = encode_str(data.clone().into_iter()).expect("fits");
        assert_eq!(enc.dict.cardinality(), 3);
        assert_eq!(enc.dict.value_type(), ScalarType::Str);
        let codes = enc.codes.as_u8();
        // Codes decode back to the original values.
        for (i, s) in data.iter().enumerate() {
            assert_eq!(enc.dict.decode(codes[i] as usize), Value::Str(s.clone()));
        }
        // Order-preserving: A < N < R.
        assert!(codes[1] < codes[0] && codes[0] < codes[3]);
    }

    #[test]
    fn encode_f64_discounts() {
        let data: Vec<f64> = (0..100).map(|i| (i % 11) as f64 / 100.0).collect();
        let enc = encode_f64(&data).expect("fits");
        assert_eq!(enc.dict.cardinality(), 11);
        let codes = enc.codes.as_u8();
        let dict = enc.dict.values().as_f64();
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(dict[codes[i] as usize], x);
        }
    }

    #[test]
    fn wide_cardinality_uses_u16() {
        let data: Vec<i64> = (0..1000).map(|i| i % 500).collect();
        let enc = encode_i64(&data).expect("fits");
        assert_eq!(enc.codes.scalar_type(), ScalarType::U16);
        assert_eq!(enc.dict.cardinality(), 500);
    }

    #[test]
    fn over_cardinality_returns_none() {
        let data: Vec<i64> = (0..(MAX_ENUM_CARD as i64 + 1)).collect();
        assert!(encode_i64(&data).is_none());
    }

    #[test]
    fn compression_saves_space() {
        // 8-byte floats with 11 distinct values compress 8:1 to u8 codes.
        let data: Vec<f64> = (0..10_000).map(|i| (i % 11) as f64).collect();
        let plain = ColumnData::F64(data.clone());
        let enc = encode_f64(&data).expect("fits");
        let compressed = enc.codes.byte_size() + enc.dict.values().byte_size();
        assert!(
            compressed * 7 < plain.byte_size(),
            "{} vs {}",
            compressed,
            plain.byte_size()
        );
    }
}
