//! Property-based tests for the storage layer.
//!
//! Key invariants:
//! * a table behaves like a simple row-store model under any sequence of
//!   inserts / deletes / updates / reorganizes;
//! * enum encoding roundtrips and is order-preserving;
//! * summary indices are always conservative.

use proptest::prelude::*;
use x100_storage::{
    choose_and_compress, compress_column_as, encode_i64, ChunkFormat, ColumnData, CompressedColumn,
    DecodeCursor, SummaryIndex, TableBuilder,
};
use x100_vector::{Value, Vector};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(usize),
    Update(usize, i64),
    Reorganize,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>()).prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Delete),
        (0usize..64, any::<i64>()).prop_map(|(i, v)| Op::Update(i, v)),
        Just(Op::Reorganize),
        Just(Op::Checkpoint),
    ]
}

/// Bit-level vector equality: floats compare by representation, so a
/// decode that flips even one mantissa bit fails (NaNs included).
fn bits_eq(a: &Vector, b: &Vector) -> bool {
    match (a, b) {
        (Vector::F64(x), Vector::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        _ => a == b,
    }
}

/// Decode `cc` in refills of the (cycled) `sizes` and demand the result
/// is bit-identical to the physical column at every step — this drives
/// the per-chunk cursor across chunk boundaries exactly like a scan.
fn assert_decode_matches(cc: &CompressedColumn, data: &ColumnData, sizes: &[usize]) {
    let rows = data.len();
    let mut cursor = DecodeCursor::default();
    let mut scratch = Vec::new();
    let mut got = Vector::with_capacity(data.scalar_type(), 0);
    let mut want = Vector::with_capacity(data.scalar_type(), 0);
    let mut at = 0usize;
    let mut k = 0usize;
    while at < rows {
        let n = sizes[k % sizes.len()].clamp(1, rows - at);
        k += 1;
        cc.decode_range(at, n, &mut got, &mut cursor, &mut scratch)
            .expect("decode");
        data.read_into(at, n, &mut want);
        prop_assert!(
            bits_eq(&got, &want),
            "decode mismatch at rows [{at}, {})",
            at + n
        );
        at += n;
    }
}

proptest! {
    #[test]
    fn table_matches_row_model(init in prop::collection::vec(any::<i64>(), 0..40),
                               ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut table = TableBuilder::new("t")
            .column("v", ColumnData::I64(init.clone()))
            .build();
        // Model: live rows in #rowId order, as (value) list.
        let mut model: Vec<i64> = init.clone();
        // Map from live position -> rowid is implicit; we track rowids.
        let mut rowids: Vec<u32> = (0..init.len() as u32).collect();

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = table.insert(&[Value::I64(v)]);
                    model.push(v);
                    rowids.push(id);
                }
                Op::Delete(pos) => {
                    if !model.is_empty() {
                        let pos = pos % model.len();
                        prop_assert!(table.delete(rowids[pos]));
                        model.remove(pos);
                        rowids.remove(pos);
                    }
                }
                Op::Update(pos, v) => {
                    if !model.is_empty() {
                        let pos = pos % model.len();
                        let new_id = table.update(rowids[pos], &[Value::I64(v)]).expect("live row");
                        model.remove(pos);
                        rowids.remove(pos);
                        model.push(v);
                        rowids.push(new_id);
                    }
                }
                Op::Reorganize => {
                    table.reorganize();
                    rowids = (0..model.len() as u32).collect();
                }
                Op::Checkpoint => {
                    table.checkpoint();
                }
            }
            prop_assert_eq!(table.live_rows(), model.len());
        }
        // Final check: every live row matches the model.
        for (pos, &id) in rowids.iter().enumerate() {
            prop_assert_eq!(table.get_row(id), vec![Value::I64(model[pos])]);
        }
        // Any checkpoint-compressed fragment must decode bit-identically
        // to the physical column it mirrors.
        let sc = table.column(0);
        if let Some(cc) = sc.compressed() {
            prop_assert_eq!(cc.rows(), sc.physical().len());
            assert_decode_matches(cc, sc.physical(), &[7, 1, 13]);
        }
    }

    #[test]
    fn enum_roundtrip_and_order(values in prop::collection::vec(-50i64..50, 1..300)) {
        let enc = encode_i64(&values).expect("small domain");
        let dict = enc.dict.values().as_i64();
        let decode = |i: usize| -> i64 {
            match &enc.codes {
                ColumnData::U8(c) => dict[c[i] as usize],
                ColumnData::U16(c) => dict[c[i] as usize],
                _ => unreachable!(),
            }
        };
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(decode(i), v);
        }
        // Order-preserving encoding.
        prop_assert!(dict.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn summary_always_conservative(col in prop::collection::vec(-1000i64..1000, 0..500),
                                   gran in 1usize..64,
                                   lo in -1000i64..1000,
                                   width in 0i64..500) {
        let idx = SummaryIndex::build_with_granularity(&col, gran);
        let hi = lo + width;
        let (s, e) = idx.range_candidates(Some(lo), Some(hi));
        prop_assert!(s <= e && e <= col.len());
        for (i, &v) in col.iter().enumerate() {
            if v >= lo && v <= hi {
                prop_assert!(s <= i && i < e, "qualifying row {i} outside [{s},{e})");
            }
        }
    }

    #[test]
    fn summary_sorted_pruning_is_tight(n in 1usize..2000, gran in 1usize..100, q in 0i64..2000) {
        let col: Vec<i64> = (0..n as i64).collect();
        let idx = SummaryIndex::build_with_granularity(&col, gran);
        let (s, e) = idx.range_candidates(Some(q), Some(q));
        if (q as usize) < n {
            // Candidate window around the hit is at most 2 granules wide.
            prop_assert!(e - s <= 2 * gran);
            prop_assert!(s <= q as usize && (q as usize) < e);
        } else {
            prop_assert_eq!(s, e);
        }
    }
}

/// PFOR round-trips for every integer column type: arbitrary values,
/// arbitrary refill sizes. `compress_column_as` must accept (PFOR has a
/// raw-exception escape hatch for any distribution).
macro_rules! pfor_int_roundtrip {
    ($($test:ident : $ty:ty => $variant:ident);* $(;)?) => {
        proptest! {
            $(
                #[test]
                fn $test(values in prop::collection::vec(any::<$ty>(), 1..300),
                         sizes in prop::collection::vec(1usize..80, 1..5)) {
                    let data = ColumnData::$variant(values);
                    let cc = compress_column_as(&data, ChunkFormat::Pfor)
                        .expect("pfor accepts any integer column");
                    assert_decode_matches(&cc, &data, &sizes);
                }
            )*
        }
    };
}

pfor_int_roundtrip! {
    pfor_roundtrip_i8:  i8  => I8;
    pfor_roundtrip_i16: i16 => I16;
    pfor_roundtrip_i32: i32 => I32;
    pfor_roundtrip_i64: i64 => I64;
    pfor_roundtrip_u8:  u8  => U8;
    pfor_roundtrip_u16: u16 => U16;
    pfor_roundtrip_u32: u32 => U32;
    pfor_roundtrip_u64: u64 => U64;
}

proptest! {
    /// PFOR over decimal-scaled floats (the TPC-H money shape): every
    /// value must survive the scaled round trip bit-exactly.
    #[test]
    fn pfor_roundtrip_f64_decimal(cents in prop::collection::vec(-2_000_000i64..2_000_000, 1..300),
                                  scale_idx in 0usize..5,
                                  sizes in prop::collection::vec(1usize..80, 1..5)) {
        let scale = [1i64, 10, 100, 1000, 10000][scale_idx];
        let values: Vec<f64> = cents.iter().map(|&c| c as f64 / scale as f64).collect();
        let data = ColumnData::F64(values);
        let cc = compress_column_as(&data, ChunkFormat::Pfor).expect("pfor accepts any f64 column");
        assert_decode_matches(&cc, &data, &sizes);
    }

    /// PFOR over arbitrary finite doubles: almost none are representable
    /// as scaled integers, so this exercises all-exception blocks — the
    /// payload is noise and every value rides the patch list.
    #[test]
    fn pfor_roundtrip_f64_all_exceptions(bits in prop::collection::vec(any::<u64>(), 1..200),
                                         sizes in prop::collection::vec(1usize..80, 1..5)) {
        let values: Vec<f64> = bits
            .iter()
            .map(|&b| {
                let v = f64::from_bits(b);
                if v.is_finite() { v } else { f64::from_bits(b & !(0x7ff << 52)) }
            })
            .collect();
        let data = ColumnData::F64(values);
        let cc = compress_column_as(&data, ChunkFormat::Pfor).expect("pfor accepts any f64 column");
        assert_decode_matches(&cc, &data, &sizes);
    }

    /// PFOR-DELTA round-trips over every integer type (sorted input is a
    /// precondition of the format; the chooser enforces it upstream).
    #[test]
    fn pfordelta_roundtrip_ints(deltas in prop::collection::vec(0u32..1000, 1..300),
                                start in -1_000_000i64..1_000_000,
                                sizes in prop::collection::vec(1usize..80, 1..5)) {
        let mut acc = start;
        let sorted: Vec<i64> = deltas.iter().map(|&d| { acc += d as i64; acc }).collect();
        let data = ColumnData::I64(sorted.clone());
        let cc = compress_column_as(&data, ChunkFormat::PforDelta)
            .expect("pfordelta accepts sorted input");
        assert_decode_matches(&cc, &data, &sizes);
        // Narrower physical types, same logical content.
        let data32 = ColumnData::I32(sorted.iter().map(|&v| (v % (1 << 20)) as i32).collect());
        if let Some(cc) = compress_column_as(&data32, ChunkFormat::PforDelta) {
            assert_decode_matches(&cc, &data32, &sizes);
        }
    }

    /// PFOR-DELTA decode must also be correct under *random seeks* (a
    /// pruned scan entering mid-chunk replays from the last sync point).
    #[test]
    fn pfordelta_random_seeks(deltas in prop::collection::vec(0u32..50, 50..400),
                              seeks in prop::collection::vec((0usize..400, 1usize..60), 1..12)) {
        let mut acc = 0i64;
        let sorted: Vec<i64> = deltas.iter().map(|&d| { acc += d as i64; acc }).collect();
        let data = ColumnData::I64(sorted.clone());
        let cc = compress_column_as(&data, ChunkFormat::PforDelta)
            .expect("pfordelta accepts sorted input");
        let mut cursor = DecodeCursor::default();
        let mut scratch = Vec::new();
        let mut got = Vector::with_capacity(data.scalar_type(), 0);
        let mut want = Vector::with_capacity(data.scalar_type(), 0);
        for (start, n) in seeks {
            let start = start % sorted.len();
            let n = n.min(sorted.len() - start).max(1);
            cc.decode_range(start, n, &mut got, &mut cursor, &mut scratch).expect("decode");
            data.read_into(start, n, &mut want);
            prop_assert!(bits_eq(&got, &want), "seek mismatch at [{start}, {})", start + n);
        }
    }

    /// PDICT round-trips for low-cardinality i64 / f64 / string columns.
    #[test]
    fn pdict_roundtrip(picks in prop::collection::vec(0usize..12, 1..300),
                       domain in prop::collection::vec(any::<i64>(), 12),
                       sizes in prop::collection::vec(1usize..80, 1..5)) {
        let ints: Vec<i64> = picks.iter().map(|&p| domain[p]).collect();
        let data = ColumnData::I64(ints.clone());
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality i64");
        assert_decode_matches(&cc, &data, &sizes);

        let floats: Vec<f64> = picks.iter().map(|&p| domain[p] as f64 + 0.5).collect();
        let data = ColumnData::F64(floats);
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality f64");
        assert_decode_matches(&cc, &data, &sizes);

        let mut strs = x100_vector::StrVec::default();
        for &p in &picks {
            strs.push(&format!("tag-{}", domain[p] % 16));
        }
        let data = ColumnData::Str(strs);
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality str");
        assert_decode_matches(&cc, &data, &sizes);
    }

    /// The chooser must never pick a format that fails to round-trip,
    /// whatever the distribution thrown at it.
    #[test]
    fn chooser_roundtrip_any_distribution(values in prop::collection::vec(-5000i64..5000, 1..300),
                                          sort in any::<bool>(),
                                          sizes in prop::collection::vec(1usize..80, 1..5)) {
        let mut values = values;
        if sort {
            values.sort_unstable();
        }
        let data = ColumnData::I64(values);
        if let Some(cc) = choose_and_compress(&data) {
            assert_decode_matches(&cc, &data, &sizes);
        }
    }
}

// ---------------------------------------------------------------------------
// Encoded-space predicate pushdown: `select_range` + `decode_positions`
// must be observationally equivalent to decode-then-select, across
// codec × type × predicate × selectivity — including all-exception
// chunks and windowed refills that stride chunk boundaries.
// ---------------------------------------------------------------------------

use x100_storage::{PushOp, Pushdown};

/// Native-comparison reference: filter the raw column over
/// `[start, start + n)` exactly as a decode-then-select pipeline would,
/// returning window-relative positions.
fn ref_filter(data: &ColumnData, start: usize, n: usize, p: &Pushdown) -> Vec<u32> {
    fn keep<T: PartialOrd + Copy>(x: T, lo: T, hi: Option<T>, op: PushOp) -> bool {
        match op {
            PushOp::Eq => x == lo,
            PushOp::Ne => x != lo,
            PushOp::Lt => x < lo,
            PushOp::Le => x <= lo,
            PushOp::Gt => x > lo,
            PushOp::Ge => x >= lo,
            PushOp::Between => x >= lo && hi.is_some_and(|h| x <= h),
        }
    }
    macro_rules! f {
        ($b:expr, $vv:ident) => {{
            let lo = match p.lo() {
                Value::$vv(x) => *x,
                other => panic!("constant {other:?} on {} column", stringify!($vv)),
            };
            let hi = p.hi().map(|h| match h {
                Value::$vv(x) => *x,
                other => panic!("constant {other:?} on {} column", stringify!($vv)),
            });
            $b[start..start + n]
                .iter()
                .enumerate()
                .filter(|(_, &x)| keep(x, lo, hi, p.op()))
                .map(|(i, _)| i as u32)
                .collect()
        }};
    }
    match data {
        ColumnData::I32(b) => f!(b, I32),
        ColumnData::I64(b) => f!(b, I64),
        ColumnData::F64(b) => f!(b, F64),
        ColumnData::Str(b) => {
            let lo = match p.lo() {
                Value::Str(x) => x.as_str(),
                other => panic!("constant {other:?} on Str column"),
            };
            (0..n)
                .filter(|&i| keep(b.get(start + i), lo, None, p.op()))
                .map(|i| i as u32)
                .collect()
        }
        other => panic!("unexercised column type {:?}", other.scalar_type()),
    }
}

/// Drive `select_range` in refills of the (cycled) `sizes` — sharing
/// one cursor, exactly like a scan — and demand window-relative
/// positions identical to the reference filter; then decode only the
/// survivors via `decode_positions` and demand bit-identical values.
fn assert_pushdown_matches(
    cc: &CompressedColumn,
    data: &ColumnData,
    op: PushOp,
    lo: &Value,
    hi: Option<&Value>,
    sizes: &[usize],
) {
    let Some(p) = cc.compile_pushdown(op, lo, hi) else {
        return; // unsupported codec/op pair: binder falls back
    };
    let rows = data.len();
    let mut cursor = DecodeCursor::default();
    let (mut sel, mut tmp) = (Vec::new(), Vec::new());
    let mut got = Vector::with_capacity(data.scalar_type(), 0);
    let mut want = Vector::with_capacity(data.scalar_type(), 0);
    let (mut at, mut k) = (0usize, 0usize);
    while at < rows {
        let n = sizes[k % sizes.len()].clamp(1, rows - at);
        k += 1;
        sel.clear();
        cc.select_range(&p, at, n, &mut sel, &mut tmp, &mut cursor)
            .expect("select_range");
        let expect = ref_filter(data, at, n, &p);
        prop_assert_eq!(
            &sel,
            &expect,
            "pushdown {} diverged in window [{}, {})",
            p.sig(),
            at,
            at + n
        );
        if cc.decode_sel_sig().is_some() && !sel.is_empty() {
            cc.decode_positions(at, &sel, &mut got, &mut tmp, &mut cursor)
                .expect("decode_positions");
            data.read_into(at, n, &mut want);
            let dense: Vec<Value> = sel.iter().map(|&i| want.get_value(i as usize)).collect();
            let lazy: Vec<Value> = (0..got.len()).map(|i| got.get_value(i)).collect();
            prop_assert_eq!(
                lazy,
                dense,
                "lazy decode diverged in window [{}, {})",
                at,
                at + n
            );
        }
        at += n;
    }
}

/// Predicate operators each codec claims to support.
const PFOR_OPS: [PushOp; 6] = [
    PushOp::Eq,
    PushOp::Lt,
    PushOp::Le,
    PushOp::Gt,
    PushOp::Ge,
    PushOp::Between,
];
const PDICT_OPS: [PushOp; 6] = [
    PushOp::Eq,
    PushOp::Ne,
    PushOp::Lt,
    PushOp::Le,
    PushOp::Gt,
    PushOp::Ge,
];

proptest! {
    /// PFOR i64 pushdown with patched exceptions: each value is either
    /// in-lane or an outlier, so chunks range from exception-free to
    /// all-exception. Constants drawn from the data (plus the random
    /// offset) sweep selectivity from ~0% to ~100%.
    #[test]
    fn pfor_pushdown_matches_decode_then_select(
        values in prop::collection::vec(
            (0i64..120, any::<bool>()).prop_map(|(v, wide)| {
                if wide { v * 1_000_000_007 } else { v }
            }),
            1..400,
        ),
        op_i in 0usize..6,
        lit_i in 0usize..400,
        off in -2i64..3,
        sizes in prop::collection::vec(1usize..90, 1..5),
    ) {
        let data = ColumnData::I64(values.clone());
        let cc = compress_column_as(&data, ChunkFormat::Pfor).expect("pfor i64");
        let lo = Value::I64(values[lit_i % values.len()] + off);
        let hi = Value::I64(values[(lit_i + 7) % values.len()].max(values[lit_i % values.len()] + off));
        assert_pushdown_matches(&cc, &data, PFOR_OPS[op_i], &lo, Some(&hi).filter(|_| PFOR_OPS[op_i] == PushOp::Between), &sizes);
    }

    /// Scaled-f64 PFOR: the encoded-space translation must honor the
    /// scale trick; quarter steps keep every value representable.
    #[test]
    fn pfor_f64_pushdown_matches(
        values in prop::collection::vec(-300i64..300, 1..300),
        op_i in 0usize..6,
        lit_i in 0usize..300,
        sizes in prop::collection::vec(1usize..90, 1..5),
    ) {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64 * 0.25).collect();
        let data = ColumnData::F64(floats.clone());
        let cc = compress_column_as(&data, ChunkFormat::Pfor).expect("pfor f64");
        let lo = Value::F64(floats[lit_i % floats.len()]);
        let hi = Value::F64(floats[(lit_i + 3) % floats.len()].max(floats[lit_i % floats.len()]));
        assert_pushdown_matches(&cc, &data, PFOR_OPS[op_i], &lo, Some(&hi).filter(|_| PFOR_OPS[op_i] == PushOp::Between), &sizes);
    }

    /// PDICT pushdown evaluates the predicate once over the dictionary;
    /// i64, f64, and string domains, any comparison operator.
    #[test]
    fn pdict_pushdown_matches_decode_then_select(
        picks in prop::collection::vec(0usize..12, 1..300),
        domain in prop::collection::vec(any::<i64>(), 12),
        op_i in 0usize..6,
        lit_i in 0usize..300,
        sizes in prop::collection::vec(1usize..90, 1..5),
    ) {
        let op = PDICT_OPS[op_i];
        let ints: Vec<i64> = picks.iter().map(|&p| domain[p]).collect();
        let data = ColumnData::I64(ints.clone());
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality i64");
        // In-dictionary and (likely) out-of-dictionary constants.
        for lo in [Value::I64(ints[lit_i % ints.len()]), Value::I64(domain[0].wrapping_add(1))] {
            assert_pushdown_matches(&cc, &data, op, &lo, None, &sizes);
        }

        let floats: Vec<f64> = picks.iter().map(|&p| (domain[p] % 1000) as f64 + 0.5).collect();
        let data = ColumnData::F64(floats.clone());
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality f64");
        let lo = Value::F64(floats[lit_i % floats.len()]);
        assert_pushdown_matches(&cc, &data, op, &lo, None, &sizes);

        let mut strs = x100_vector::StrVec::default();
        for &p in &picks {
            strs.push(&format!("tag-{}", domain[p] % 16));
        }
        let data = ColumnData::Str(strs);
        let cc = compress_column_as(&data, ChunkFormat::Pdict).expect("low-cardinality str");
        let lo = Value::Str(format!("tag-{}", domain[lit_i % 12] % 16));
        assert_pushdown_matches(&cc, &data, op, &lo, None, &sizes);
    }

    /// `gather` (the positional sync-point seek path) agrees with the
    /// raw column for arbitrary rowid sequences — ascending runs,
    /// restarts, and duplicates — across every codec the chooser picks.
    #[test]
    fn gather_matches_raw_for_any_rowids(
        values in prop::collection::vec(-5000i64..5000, 1..400),
        sort in any::<bool>(),
        rowids in prop::collection::vec(0usize..400, 1..200),
    ) {
        let mut values = values;
        if sort {
            values.sort_unstable();
        }
        let data = ColumnData::I64(values.clone());
        if let Some(cc) = choose_and_compress(&data) {
            let rowids: Vec<u32> = rowids.iter().map(|&r| (r % values.len()) as u32).collect();
            let mut out = Vector::with_capacity(data.scalar_type(), 0);
            let (mut scratch, mut tmp) = (Vec::new(), Vec::new());
            let mut cursor = DecodeCursor::default();
            cc.gather(&rowids, &mut out, &mut scratch, &mut tmp, &mut cursor).expect("gather");
            let got = out.as_i64();
            for (i, &r) in rowids.iter().enumerate() {
                prop_assert_eq!(got[i], values[r as usize], "rowid {} at {}", r, i);
            }
        }
    }

    /// Codec capability matrix is exact: PFOR refuses `!=`, PDICT
    /// refuses `Between`, PFOR-DELTA refuses all pushdowns, and a
    /// mistyped constant never compiles.
    #[test]
    fn pushdown_capability_matrix(values in prop::collection::vec(0i64..100, 10..200)) {
        let data = ColumnData::I64(values.clone());
        let pfor = compress_column_as(&data, ChunkFormat::Pfor).expect("pfor");
        prop_assert!(pfor.compile_pushdown(PushOp::Ne, &Value::I64(5), None).is_none());
        prop_assert!(pfor.compile_pushdown(PushOp::Lt, &Value::I32(5), None).is_none());
        prop_assert!(pfor.compile_pushdown(PushOp::Lt, &Value::I64(5), None).is_some());
        prop_assert!(pfor
            .compile_pushdown(PushOp::Between, &Value::I64(2), Some(&Value::I64(7)))
            .is_some());
        let pdict = compress_column_as(&data, ChunkFormat::Pdict).expect("pdict");
        prop_assert!(pdict
            .compile_pushdown(PushOp::Between, &Value::I64(2), Some(&Value::I64(7)))
            .is_none());
        prop_assert!(pdict.compile_pushdown(PushOp::Ne, &Value::I64(5), None).is_some());
        let mut sorted = values;
        sorted.sort_unstable();
        let delta = compress_column_as(&ColumnData::I64(sorted), ChunkFormat::PforDelta)
            .expect("pfordelta");
        for op in PFOR_OPS {
            prop_assert!(delta.compile_pushdown(op, &Value::I64(5), Some(&Value::I64(9))).is_none());
            prop_assert!(delta.compile_pushdown(op, &Value::I64(5), None).is_none());
        }
    }
}
