//! Property-based tests for the storage layer.
//!
//! Key invariants:
//! * a table behaves like a simple row-store model under any sequence of
//!   inserts / deletes / updates / reorganizes;
//! * enum encoding roundtrips and is order-preserving;
//! * summary indices are always conservative.

use proptest::prelude::*;
use x100_storage::{encode_i64, ColumnData, SummaryIndex, TableBuilder};
use x100_vector::Value;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(usize),
    Update(usize, i64),
    Reorganize,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>()).prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Delete),
        (0usize..64, any::<i64>()).prop_map(|(i, v)| Op::Update(i, v)),
        Just(Op::Reorganize),
    ]
}

proptest! {
    #[test]
    fn table_matches_row_model(init in prop::collection::vec(any::<i64>(), 0..40),
                               ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut table = TableBuilder::new("t")
            .column("v", ColumnData::I64(init.clone()))
            .build();
        // Model: live rows in #rowId order, as (value) list.
        let mut model: Vec<i64> = init.clone();
        // Map from live position -> rowid is implicit; we track rowids.
        let mut rowids: Vec<u32> = (0..init.len() as u32).collect();

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = table.insert(&[Value::I64(v)]);
                    model.push(v);
                    rowids.push(id);
                }
                Op::Delete(pos) => {
                    if !model.is_empty() {
                        let pos = pos % model.len();
                        prop_assert!(table.delete(rowids[pos]));
                        model.remove(pos);
                        rowids.remove(pos);
                    }
                }
                Op::Update(pos, v) => {
                    if !model.is_empty() {
                        let pos = pos % model.len();
                        let new_id = table.update(rowids[pos], &[Value::I64(v)]).expect("live row");
                        model.remove(pos);
                        rowids.remove(pos);
                        model.push(v);
                        rowids.push(new_id);
                    }
                }
                Op::Reorganize => {
                    table.reorganize();
                    rowids = (0..model.len() as u32).collect();
                }
            }
            prop_assert_eq!(table.live_rows(), model.len());
        }
        // Final check: every live row matches the model.
        for (pos, &id) in rowids.iter().enumerate() {
            prop_assert_eq!(table.get_row(id), vec![Value::I64(model[pos])]);
        }
    }

    #[test]
    fn enum_roundtrip_and_order(values in prop::collection::vec(-50i64..50, 1..300)) {
        let enc = encode_i64(&values).expect("small domain");
        let dict = enc.dict.values().as_i64();
        let decode = |i: usize| -> i64 {
            match &enc.codes {
                ColumnData::U8(c) => dict[c[i] as usize],
                ColumnData::U16(c) => dict[c[i] as usize],
                _ => unreachable!(),
            }
        };
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(decode(i), v);
        }
        // Order-preserving encoding.
        prop_assert!(dict.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn summary_always_conservative(col in prop::collection::vec(-1000i64..1000, 0..500),
                                   gran in 1usize..64,
                                   lo in -1000i64..1000,
                                   width in 0i64..500) {
        let idx = SummaryIndex::build_with_granularity(&col, gran);
        let hi = lo + width;
        let (s, e) = idx.range_candidates(Some(lo), Some(hi));
        prop_assert!(s <= e && e <= col.len());
        for (i, &v) in col.iter().enumerate() {
            if v >= lo && v <= hi {
                prop_assert!(s <= i && i < e, "qualifying row {i} outside [{s},{e})");
            }
        }
    }

    #[test]
    fn summary_sorted_pruning_is_tight(n in 1usize..2000, gran in 1usize..100, q in 0i64..2000) {
        let col: Vec<i64> = (0..n as i64).collect();
        let idx = SummaryIndex::build_with_granularity(&col, gran);
        let (s, e) = idx.range_candidates(Some(q), Some(q));
        if (q as usize) < n {
            // Candidate window around the hit is at most 2 granules wide.
            prop_assert!(e - s <= 2 * gran);
            prop_assert!(s <= q as usize && (q as usize) < e);
        } else {
            prop_assert_eq!(s, e);
        }
    }
}
