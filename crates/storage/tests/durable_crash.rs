//! Crash-consistency suite for the durable chunk store.
//!
//! `FaultPlan::pin_site(site, nth)` makes the nth governor check of a
//! durable fault site fail *hard* (one attempt, no retry) — the
//! process-model equivalent of SIGKILL at that exact write step.
//! `write_atomic` checks its site twice per file (before the temp
//! write, before the commit rename), so sweeping `nth` upward kills
//! the checkpoint at every distinct on-disk state it can leave behind:
//! partial `.tmp`, complete-but-unrenamed temp, each chunk replica,
//! and the manifest itself. After every kill, `Table::open` must
//! recover the *previous* checkpoint byte-identically.
//!
//! Exercised sites: [`FaultSite::DurableChunkWrite`],
//! [`FaultSite::ManifestWrite`], [`FaultSite::ManifestRead`],
//! [`FaultSite::DurableChunkRead`] (xtask lint rule 8 requires each
//! durable variant by name here). The fault-driven tests need
//! `cargo test --features fault-inject`; the on-disk corruption tests
//! run in every build.

use std::path::PathBuf;

use x100_storage::{
    encode_str, ColumnData, DurableError, DurableOptions, FaultSite, Table, TableBuilder,
};
use x100_vector::Vector;

/// Fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("x100-durable-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic sample table; `seed` perturbs every value so
/// successive checkpoints are distinguishable byte-for-byte.
fn sample_table(seed: i64) -> Table {
    let n = 4000usize;
    let ids: Vec<i64> = (0..n as i64).map(|i| i + seed).collect();
    let vals: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 + seed as f64).collect();
    let flags: Vec<String> = (0..n)
        .map(|i| format!("F{}", (i as i64 + seed) % 7))
        .collect();
    let enc = encode_str(flags.into_iter()).expect("low cardinality");
    TableBuilder::new("crash")
        .column("id", ColumnData::I64(ids))
        .column("val", ColumnData::F64(vals))
        .enum_column("flag", enc.codes, enc.dict)
        .build()
}

/// Bit-exact image of every column's physical fragment.
fn snapshot(t: &Table) -> Vec<(String, Vec<u8>)> {
    (0..t.num_columns())
        .map(|i| {
            let sc = t.column(i);
            let rows = sc.physical().len();
            let mut v = Vector::with_capacity(sc.physical_type(), rows);
            sc.physical().read_into(0, rows, &mut v);
            let bytes = match &v {
                Vector::I64(x) => x.iter().flat_map(|p| p.to_le_bytes()).collect(),
                Vector::F64(x) => x.iter().flat_map(|p| p.to_bits().to_le_bytes()).collect(),
                Vector::U8(x) => x.clone(),
                Vector::U16(x) => x.iter().flat_map(|p| p.to_le_bytes()).collect(),
                other => format!("{other:?}").into_bytes(),
            };
            (sc.field().name.clone(), bytes)
        })
        .collect()
}

/// Kill the checkpoint at the nth check of `site`, for every nth until
/// the checkpoint finally succeeds; after each kill the directory must
/// still open to the exact previous checkpoint.
#[cfg(feature = "fault-inject")]
fn sweep_kill_points(site: FaultSite, tag: &str) {
    use x100_storage::{FaultPlan, FaultState};
    let dir = scratch(tag);
    let opts = DurableOptions::default();
    let mut t1 = sample_table(0);
    t1.checkpoint_durable(&dir, &opts).expect("seed checkpoint");
    let mut base = snapshot(&Table::open(&dir).expect("seed open"));

    let mut kills = 0u32;
    for nth in 0..256u32 {
        let seed = 1 + i64::from(nth);
        let mut t2 = sample_table(seed);
        let fault = FaultState::new(FaultPlan::default().pin_site(site, nth));
        match t2.try_checkpoint_durable(&dir, &opts, Some(&fault)) {
            Err(_) => {
                assert!(fault.injected() >= 1, "pin at {site} #{nth} never fired");
                kills += 1;
                let rec = Table::open(&dir).expect("recovery after kill");
                assert_eq!(
                    snapshot(&rec),
                    base,
                    "kill at {site} #{nth} lost the previous checkpoint"
                );
                // The *next* attempt must also survive the orphan
                // files this kill left behind — `base` stays.
            }
            Ok(_) => {
                // No check left to pin: the checkpoint ran to the end.
                assert_eq!(fault.injected(), 0);
                assert!(kills >= 2, "{site}: expected several kill points");
                let rec = Table::open(&dir).expect("open after commit");
                assert_eq!(snapshot(&rec), snapshot(&t2));
                base = snapshot(&rec);
                let _ = base;
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
        }
    }
    panic!("checkpoint never succeeded while sweeping {site}");
}

#[cfg(feature = "fault-inject")]
#[test]
fn kill_at_every_chunk_write_point_recovers_previous_checkpoint() {
    sweep_kill_points(FaultSite::DurableChunkWrite, "chunkwrite");
}

#[cfg(feature = "fault-inject")]
#[test]
fn kill_at_every_manifest_write_point_recovers_previous_checkpoint() {
    sweep_kill_points(FaultSite::ManifestWrite, "manifestwrite");
}

#[cfg(feature = "fault-inject")]
#[test]
fn manifest_read_fault_is_a_hard_error() {
    use x100_storage::{FaultPlan, FaultState};
    let dir = scratch("manifestread");
    let mut t = sample_table(3);
    t.checkpoint_durable(&dir, &DurableOptions::default())
        .expect("checkpoint");
    // The site models the directory being unreadable: no fallback.
    let fault = FaultState::new(FaultPlan::default().pin_site(FaultSite::ManifestRead, 0));
    let err = Table::try_open(&dir, Some(&fault)).expect_err("pinned manifest read");
    assert!(
        matches!(err, DurableError::Io { site, .. } if site == FaultSite::ManifestRead),
        "wrong error: {err}"
    );
    // Without the pin the same directory opens fine.
    assert!(Table::open(&dir).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn chunk_read_fault_fails_over_to_the_other_replica() {
    use x100_storage::{FaultPlan, FaultState};
    let dir = scratch("chunkread");
    let mut t = sample_table(4);
    t.checkpoint_durable(&dir, &DurableOptions::default())
        .expect("checkpoint");
    let base = snapshot(&t);
    // Kill the very first replica read: recovery must fall over to the
    // second copy and heal the "failed" one, not error out.
    let fault = FaultState::new(FaultPlan::default().pin_site(FaultSite::DurableChunkRead, 0));
    let rec = Table::try_open(&dir, Some(&fault)).expect("replica failover");
    assert_eq!(snapshot(&rec), base);
    assert!(rec.durable_source().expect("durable").heals() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_replica_heals_in_place_on_open() {
    let dir = scratch("heal");
    let mut t = sample_table(5);
    t.checkpoint_durable(&dir, &DurableOptions::default())
        .expect("checkpoint");
    let base = snapshot(&t);
    let version = t.durable_source().expect("durable").version();

    // Flip one byte in the middle of column 0's first replica.
    let bad = dir.join(format!("col000-v{version:010}-r0.chunks"));
    let mut bytes = std::fs::read(&bad).expect("replica 0");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&bad, &bytes).expect("corrupt replica 0");

    let rec = Table::open(&dir).expect("open with one bad replica");
    assert_eq!(snapshot(&rec), base, "healed open must be byte-identical");
    assert_eq!(rec.durable_source().expect("durable").heals(), 1);

    // The bad copy was rewritten in place from the good one …
    let healed = std::fs::read(&bad).expect("healed replica 0");
    let good =
        std::fs::read(dir.join(format!("col000-v{version:010}-r1.chunks"))).expect("replica 1");
    assert_eq!(healed, good);
    // … so the next open needs no heal at all.
    let again = Table::open(&dir).expect("reopen");
    assert_eq!(again.durable_source().expect("durable").heals(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_replicas_bad_is_a_typed_io_error() {
    let dir = scratch("allbad");
    let mut t = sample_table(6);
    t.checkpoint_durable(&dir, &DurableOptions::default().with_replicas(1))
        .expect("checkpoint");
    let version = t.durable_source().expect("durable").version();
    let only = dir.join(format!("col001-v{version:010}-r0.chunks"));
    let mut bytes = std::fs::read(&only).expect("sole replica");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&only, &bytes).expect("corrupt sole replica");

    let err = Table::open(&dir).expect_err("no good copy left");
    assert!(
        matches!(err, DurableError::Io { site, .. } if site == FaultSite::DurableChunkRead),
        "wrong error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn checkpoint_under_random_durable_faults_retries_through() {
    use x100_storage::{FaultPlan, FaultState};
    // Rate-based (retryable) faults on all four durable sites: the
    // bounded-backoff retry loops must absorb a 30% failure rate
    // without surfacing an error.
    let dir = scratch("rates");
    let opts = DurableOptions::default();
    let mut plan = FaultPlan::default().durable_rates(0.3);
    plan.seed = 7;
    let fault = FaultState::new(plan);
    let mut t = sample_table(7);
    t.try_checkpoint_durable(&dir, &opts, Some(&fault))
        .expect("retries absorb rate faults");
    assert!(
        fault.injected() >= 1,
        "a 30% rate should fire at least once"
    );
    let rec = Table::try_open(&dir, Some(&fault)).expect("open under faults");
    assert_eq!(snapshot(&rec), snapshot(&t));
    let _ = std::fs::remove_dir_all(&dir);
}
