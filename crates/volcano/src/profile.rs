//! Per-routine call accounting (paper Table 2).
//!
//! The paper's Table 2 is a gprof trace of MySQL running Q1, showing
//! per-routine call counts, time shares, instructions per call, and
//! IPC. Our substitution: exact call counts (free-running `u64`
//! increments in the interpreter) plus a per-routine *cost calibration*
//! pass that micro-times each routine class in isolation, from which
//! estimated time shares are derived. The headline observation — the
//! actual "work" items are a small fraction of all calls — reproduces
//! directly from the counts.

/// Call counters for the tuple-at-a-time engine's routine classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// `rec_get_nth_field`-style record navigation calls.
    pub rec_get_nth_field: u64,
    /// `Item_field::val` — field operand evaluation.
    pub item_field_val: u64,
    /// `Item_func_plus::val`.
    pub item_func_plus: u64,
    /// `Item_func_minus::val`.
    pub item_func_minus: u64,
    /// `Item_func_mul::val`.
    pub item_func_mul: u64,
    /// `Item_func_div::val`.
    pub item_func_div: u64,
    /// Comparison item evaluations (the WHERE clause).
    pub item_cmp_val: u64,
    /// Aggregate update calls (`Item_sum_*::update_field`).
    pub item_sum_update: u64,
    /// Hash table probe/insert calls (`hash_get_nth_cell` etc.).
    pub hash_lookup: u64,
    /// Volcano `next()` calls across all operators.
    pub next_calls: u64,
    /// Storage-to-server record copies (`row_sel_store_mysql_rec`).
    pub row_sel_store_rec: u64,
    /// The interpreter's `null_value` flag (MySQL threads one through
    /// every `Item::val`); set by field accessors, checked/propagated
    /// by every item evaluation.
    pub null_flag: bool,
}

impl Counters {
    /// Total recorded calls.
    pub fn total_calls(&self) -> u64 {
        self.rec_get_nth_field
            + self.item_field_val
            + self.item_func_plus
            + self.item_func_minus
            + self.item_func_mul
            + self.item_func_div
            + self.item_cmp_val
            + self.item_sum_update
            + self.hash_lookup
            + self.next_calls
            + self.row_sel_store_rec
    }

    /// Calls that perform the query's actual "work" (+, -, *, SUM/AVG
    /// updates) — the boldface rows of Table 2.
    pub fn work_calls(&self) -> u64 {
        self.item_func_plus
            + self.item_func_minus
            + self.item_func_mul
            + self.item_func_div
            + self.item_sum_update
    }

    /// The paper's headline ratio: work calls / total calls.
    pub fn work_fraction(&self) -> f64 {
        if self.total_calls() == 0 {
            0.0
        } else {
            self.work_calls() as f64 / self.total_calls() as f64
        }
    }

    /// Named (routine, calls) rows, descending by count.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut v = vec![
            ("rec_get_nth_field", self.rec_get_nth_field),
            ("Item_field::val", self.item_field_val),
            ("Item_func_plus::val", self.item_func_plus),
            ("Item_func_minus::val", self.item_func_minus),
            ("Item_func_mul::val", self.item_func_mul),
            ("Item_func_div::val", self.item_func_div),
            ("Item_cmp::val", self.item_cmp_val),
            ("Item_sum::update_field", self.item_sum_update),
            ("hash_get_nth_cell", self.hash_lookup),
            ("handler::next", self.next_calls),
            ("row_sel_store_mysql_rec", self.row_sel_store_rec),
        ];
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_fraction() {
        let c = Counters {
            rec_get_nth_field: 90,
            item_func_plus: 5,
            item_sum_update: 5,
            ..Default::default()
        };
        assert_eq!(c.total_calls(), 100);
        assert_eq!(c.work_calls(), 10);
        assert!((c.work_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rows_sorted_descending() {
        let c = Counters {
            item_func_mul: 3,
            rec_get_nth_field: 10,
            ..Default::default()
        };
        let rows = c.rows();
        assert_eq!(rows[0], ("rec_get_nth_field", 10));
        assert_eq!(rows[1], ("Item_func_mul::val", 3));
    }

    #[test]
    fn empty_counters() {
        let c = Counters::default();
        assert_eq!(c.work_fraction(), 0.0);
    }
}
