//! NSM (N-ary storage model) record storage.
//!
//! The tuple-at-a-time baseline stores rows slotted back-to-back in a
//! byte heap, like MySQL/InnoDB record pages. Field access goes through
//! `rec_get_nth_field`-style navigation — computing the field offset
//! and reinterpreting bytes on every call — which is a large share of
//! where MySQL's Q1 time goes in the paper's Table 2 trace (routines
//! like `rec_get_nth_field`, `row_sel_store_mysql_rec`, `field_conv`).

use crate::profile::Counters;

/// Field types of the NSM schema (fixed width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// 8-byte float.
    F64,
    /// 8-byte integer.
    I64,
    /// 4-byte integer (dates).
    I32,
    /// Single character.
    Char,
}

impl FieldType {
    /// Width in bytes.
    pub fn width(self) -> usize {
        match self {
            FieldType::F64 | FieldType::I64 => 8,
            FieldType::I32 => 4,
            FieldType::Char => 1,
        }
    }
}

/// An NSM table: a schema plus a row-major byte heap.
///
/// Each row carries a null bitmap (one byte per 8 fields), checked on
/// every field access like MySQL's record format does.
#[derive(Debug)]
pub struct RecordTable {
    fields: Vec<(String, FieldType)>,
    offsets: Vec<usize>,
    row_width: usize,
    null_bytes: usize,
    data: Vec<u8>,
    rows: usize,
}

impl RecordTable {
    /// An empty table with the given schema.
    pub fn new(fields: Vec<(String, FieldType)>) -> Self {
        let null_bytes = fields.len().div_ceil(8);
        let mut offsets = Vec::with_capacity(fields.len());
        let mut off = null_bytes;
        for (_, t) in &fields {
            offsets.push(off);
            off += t.width();
        }
        RecordTable {
            fields,
            offsets,
            row_width: off,
            null_bytes,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Null-bitmap bytes at the head of each record.
    pub fn null_bitmap_bytes(&self) -> usize {
        self.null_bytes
    }

    /// Field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// Field type at index.
    pub fn field_type(&self, i: usize) -> FieldType {
        self.fields[i].1
    }

    /// Total heap bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// Begin a row; returns a writer that must set every field.
    pub fn append_row(&mut self) -> RowWriter<'_> {
        let base = self.data.len();
        self.data.resize(base + self.row_width, 0);
        self.rows += 1;
        RowWriter { table: self, base }
    }

    /// Row accessor for tuple-at-a-time field navigation.
    #[inline]
    pub fn row(&self, r: usize) -> RowRef<'_> {
        RowRef {
            table: self,
            base: r * self.row_width,
        }
    }

    /// Copy row `r` into a server-format record buffer — the
    /// `row_sel_store_mysql_rec` step every tuple-at-a-time RDBMS
    /// performs between its storage engine and executor row formats
    /// (2.4% + 1.5% of MySQL's Q1 in the paper's Table 2).
    #[inline(never)]
    pub fn store_server_rec(&self, r: usize, buf: &mut Vec<u8>, c: &mut Counters) {
        c.row_sel_store_rec += 1;
        let base = r * self.row_width;
        buf.clear();
        buf.extend_from_slice(&self.data[base..base + self.row_width]);
    }
}

/// Writes one row's fields (loader path).
pub struct RowWriter<'a> {
    table: &'a mut RecordTable,
    base: usize,
}

impl RowWriter<'_> {
    /// Set field `i` to an f64.
    pub fn set_f64(&mut self, i: usize, v: f64) -> &mut Self {
        debug_assert_eq!(self.table.fields[i].1, FieldType::F64);
        let off = self.base + self.table.offsets[i];
        self.table.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
        self
    }

    /// Set field `i` to an i64.
    pub fn set_i64(&mut self, i: usize, v: i64) -> &mut Self {
        debug_assert_eq!(self.table.fields[i].1, FieldType::I64);
        let off = self.base + self.table.offsets[i];
        self.table.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
        self
    }

    /// Set field `i` to an i32.
    pub fn set_i32(&mut self, i: usize, v: i32) -> &mut Self {
        debug_assert_eq!(self.table.fields[i].1, FieldType::I32);
        let off = self.base + self.table.offsets[i];
        self.table.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
        self
    }

    /// Set field `i` to a char.
    pub fn set_char(&mut self, i: usize, v: u8) -> &mut Self {
        debug_assert_eq!(self.table.fields[i].1, FieldType::Char);
        let off = self.base + self.table.offsets[i];
        self.table.data[off] = v;
        self
    }
}

/// A borrowed row: per-field access navigates the record each call
/// (the `rec_get_nth_field` cost model).
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    table: &'a RecordTable,
    base: usize,
}

impl RowRef<'_> {
    /// Null-bitmap probe, performed by every field accessor (MySQL's
    /// `rec_get_bit_field_1`, 2.6% of Q1 in Table 2). Sets the
    /// interpreter's null flag.
    #[inline(always)]
    fn check_null(&self, i: usize, c: &mut Counters) {
        let byte = self.table.data[self.base + i / 8];
        c.null_flag = (byte >> (i % 8)) & 1 != 0;
    }

    /// `rec_get_nth_field` + `Field_float::val_real` analogue.
    #[inline(never)]
    pub fn get_f64(&self, i: usize, c: &mut Counters) -> f64 {
        c.rec_get_nth_field += 1;
        self.check_null(i, c);
        let off = self.base + self.table.offsets[i];
        f64::from_le_bytes(self.table.data[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Integer field access.
    #[inline(never)]
    pub fn get_i64(&self, i: usize, c: &mut Counters) -> i64 {
        c.rec_get_nth_field += 1;
        self.check_null(i, c);
        let off = self.base + self.table.offsets[i];
        i64::from_le_bytes(self.table.data[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Date field access.
    #[inline(never)]
    pub fn get_i32(&self, i: usize, c: &mut Counters) -> i32 {
        c.rec_get_nth_field += 1;
        self.check_null(i, c);
        let off = self.base + self.table.offsets[i];
        i32::from_le_bytes(self.table.data[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Char field access.
    #[inline(never)]
    pub fn get_char(&self, i: usize, c: &mut Counters) -> u8 {
        c.rec_get_nth_field += 1;
        self.check_null(i, c);
        self.table.data[self.base + self.table.offsets[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_layout() {
        let t = RecordTable::new(vec![
            ("a".into(), FieldType::Char),
            ("b".into(), FieldType::F64),
            ("c".into(), FieldType::I32),
        ]);
        // 1 null-bitmap byte + 1 + 8 + 4 payload bytes.
        assert_eq!(t.row_width, 14);
        assert_eq!(t.field_index("c"), Some(2));
        assert_eq!(t.field_type(1), FieldType::F64);
    }

    #[test]
    fn write_and_read_rows() {
        let mut t = RecordTable::new(vec![
            ("flag".into(), FieldType::Char),
            ("price".into(), FieldType::F64),
            ("day".into(), FieldType::I32),
            ("n".into(), FieldType::I64),
        ]);
        for i in 0..5 {
            t.append_row()
                .set_char(0, b'A' + i as u8)
                .set_f64(1, i as f64 * 1.5)
                .set_i32(2, 100 + i)
                .set_i64(3, -(i as i64));
        }
        assert_eq!(t.num_rows(), 5);
        let mut c = Counters::default();
        let r = t.row(3);
        assert_eq!(r.get_char(0, &mut c), b'D');
        assert_eq!(r.get_f64(1, &mut c), 4.5);
        assert_eq!(r.get_i32(2, &mut c), 103);
        assert_eq!(r.get_i64(3, &mut c), -3);
        assert_eq!(c.rec_get_nth_field, 4);
    }
}
