//! # volcano — the tuple-at-a-time baseline engine
//!
//! A faithful miniature of the architecture §3.1 of the paper dissects:
//! NSM record storage with per-call field navigation
//! ([`record::RecordTable`]), a MySQL-style interpreted `Item`
//! expression tree with one virtual call per operation per tuple
//! ([`item`]), Volcano iterators producing one tuple per `next()`
//! ([`exec`]), and gprof-style per-routine call accounting
//! ([`profile::Counters`]) that reproduces Table 2's headline: the
//! query's actual work is a tiny fraction of executed routine calls.

pub mod exec;
pub mod item;
pub mod profile;
pub mod record;

pub use exec::{AggKind, AggResult, AggSpec, HashAggregate, ScanSelect, TupleOp};
pub use item::{build, CondItem, Item, ItemOp};
pub use profile::Counters;
pub use record::{FieldType, RecordTable};
