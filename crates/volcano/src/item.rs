//! The `Item` expression interpreter.
//!
//! MySQL evaluates expressions through a tree of `Item` objects whose
//! virtual `val()` methods each perform *one* operation per tuple
//! (paper §3.1): "Item_func_plus::val only performs one addition,
//! preventing the compiler from creating a pipelined loop", and the
//! call overhead "must be amortized over only one operation".
//!
//! We reproduce that architecture faithfully: boxed trait objects, a
//! virtual call per node per tuple, `#[inline(never)]` so the optimizer
//! cannot collapse the interpretation overhead away.

use crate::profile::Counters;
use crate::record::RowRef;
use x100_vector::CmpOp;

/// A MySQL-style expression item: one virtual `val()` per tuple.
pub trait Item {
    /// Evaluate to a double for the given row.
    fn val(&self, row: RowRef<'_>, c: &mut Counters) -> f64;
}

/// A field operand (`Item_field`).
pub struct ItemField {
    /// NSM field index.
    pub field: usize,
}

impl Item for ItemField {
    #[inline(never)]
    fn val(&self, row: RowRef<'_>, c: &mut Counters) -> f64 {
        c.item_field_val += 1;
        row.get_f64(self.field, c)
    }
}

/// An i32 (date) field evaluated as double.
pub struct ItemFieldI32 {
    /// NSM field index.
    pub field: usize,
}

impl Item for ItemFieldI32 {
    #[inline(never)]
    fn val(&self, row: RowRef<'_>, c: &mut Counters) -> f64 {
        c.item_field_val += 1;
        row.get_i32(self.field, c) as f64
    }
}

/// A constant (`Item_real`).
pub struct ItemConst(
    /// The constant value.
    pub f64,
);

impl Item for ItemConst {
    #[inline(never)]
    fn val(&self, _row: RowRef<'_>, c: &mut Counters) -> f64 {
        c.null_flag = false;
        self.0
    }
}

/// `Item_func_plus` / `minus` / `mul` / `div`.
pub struct ItemFunc {
    /// Which arithmetic function.
    pub op: ItemOp,
    /// Left operand.
    pub l: Box<dyn Item>,
    /// Right operand.
    pub r: Box<dyn Item>,
}

/// Arithmetic function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemOp {
    /// Addition.
    Plus,
    /// Subtraction.
    Minus,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl Item for ItemFunc {
    #[inline(never)]
    fn val(&self, row: RowRef<'_>, c: &mut Counters) -> f64 {
        // NULL propagation, MySQL-style: check the null flag after each
        // operand evaluation.
        let l = self.l.val(row, c);
        if c.null_flag {
            return 0.0;
        }
        let r = self.r.val(row, c);
        if c.null_flag {
            return 0.0;
        }
        match self.op {
            ItemOp::Plus => {
                c.item_func_plus += 1;
                l + r
            }
            ItemOp::Minus => {
                c.item_func_minus += 1;
                l - r
            }
            ItemOp::Mul => {
                c.item_func_mul += 1;
                l * r
            }
            ItemOp::Div => {
                c.item_func_div += 1;
                l / r
            }
        }
    }
}

/// A boolean predicate item over one row.
pub trait CondItem {
    /// Evaluate the condition for the given row.
    fn val_bool(&self, row: RowRef<'_>, c: &mut Counters) -> bool;
}

/// Numeric comparison against the value of two items.
pub struct ItemCmp {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub l: Box<dyn Item>,
    /// Right operand.
    pub r: Box<dyn Item>,
}

impl CondItem for ItemCmp {
    #[inline(never)]
    fn val_bool(&self, row: RowRef<'_>, c: &mut Counters) -> bool {
        c.item_cmp_val += 1;
        let l = self.l.val(row, c);
        if c.null_flag {
            return false;
        }
        let r = self.r.val(row, c);
        if c.null_flag {
            return false;
        }
        self.op.eval(l, r)
    }
}

/// Comparison of an i32 (date) field against a constant — the Q1 WHERE
/// clause shape.
pub struct ItemCmpI32Field {
    /// Comparison operator.
    pub op: CmpOp,
    /// NSM field index.
    pub field: usize,
    /// Literal right-hand side.
    pub value: i32,
}

impl CondItem for ItemCmpI32Field {
    #[inline(never)]
    fn val_bool(&self, row: RowRef<'_>, c: &mut Counters) -> bool {
        c.item_cmp_val += 1;
        let v = row.get_i32(self.field, c);
        self.op.eval(v, self.value)
    }
}

/// Conjunction of conditions (`Item_cond_and`).
pub struct ItemCondAnd {
    /// The conjuncts.
    pub items: Vec<Box<dyn CondItem>>,
}

impl CondItem for ItemCondAnd {
    #[inline(never)]
    fn val_bool(&self, row: RowRef<'_>, c: &mut Counters) -> bool {
        self.items.iter().all(|i| i.val_bool(row, c))
    }
}

/// Helpers for building item trees.
pub mod build {
    use super::*;

    /// Field item.
    pub fn field(i: usize) -> Box<dyn Item> {
        Box::new(ItemField { field: i })
    }

    /// Constant item.
    pub fn constant(v: f64) -> Box<dyn Item> {
        Box::new(ItemConst(v))
    }

    /// Arithmetic item.
    pub fn func(op: ItemOp, l: Box<dyn Item>, r: Box<dyn Item>) -> Box<dyn Item> {
        Box::new(ItemFunc { op, l, r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldType, RecordTable};

    fn one_row_table() -> RecordTable {
        let mut t = RecordTable::new(vec![
            ("price".into(), FieldType::F64),
            ("discount".into(), FieldType::F64),
            ("day".into(), FieldType::I32),
        ]);
        t.append_row()
            .set_f64(0, 100.0)
            .set_f64(1, 0.1)
            .set_i32(2, 42);
        t
    }

    #[test]
    fn item_tree_evaluates_per_tuple() {
        let t = one_row_table();
        let mut c = Counters::default();
        // price * (1 - discount)
        let expr = build::func(
            ItemOp::Mul,
            build::field(0),
            build::func(ItemOp::Minus, build::constant(1.0), build::field(1)),
        );
        let v = expr.val(t.row(0), &mut c);
        assert!((v - 90.0).abs() < 1e-12);
        assert_eq!(c.item_func_mul, 1);
        assert_eq!(c.item_func_minus, 1);
        assert_eq!(c.item_field_val, 2);
        assert_eq!(c.rec_get_nth_field, 2);
    }

    #[test]
    fn conditions() {
        let t = one_row_table();
        let mut c = Counters::default();
        let cond = ItemCmpI32Field {
            op: CmpOp::Le,
            field: 2,
            value: 42,
        };
        assert!(cond.val_bool(t.row(0), &mut c));
        let cond2 = ItemCmpI32Field {
            op: CmpOp::Lt,
            field: 2,
            value: 42,
        };
        assert!(!cond2.val_bool(t.row(0), &mut c));
        let both = ItemCondAnd {
            items: vec![Box::new(cond), Box::new(cond2)],
        };
        assert!(!both.val_bool(t.row(0), &mut c));
        assert!(c.item_cmp_val >= 3);
    }
}
