//! Volcano tuple-at-a-time execution.
//!
//! The classical iterator model (Graefe \[10\]) as relational systems
//! implement it: every operator exposes `next()` returning *one tuple*,
//! predicates and projections are interpreted `Item` trees, and
//! aggregation updates per-value through per-call routines. This is the
//! architecture whose interpretation overhead §3.1 quantifies.

use crate::item::{CondItem, Item};
use crate::profile::Counters;
use crate::record::{RecordTable, RowRef};
use std::collections::HashMap;

/// A tuple-at-a-time operator.
pub trait TupleOp<'a> {
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self, c: &mut Counters) -> Option<RowRef<'a>>;
}

/// `ScanSelect(R, b)` — full scan with an interpreted predicate.
///
/// Like MySQL's handler interface, every qualifying row is copied into
/// a server-format record buffer (`row_sel_store_mysql_rec`) before the
/// executor sees it.
pub struct ScanSelect<'a> {
    table: &'a RecordTable,
    pos: usize,
    cond: Option<Box<dyn CondItem>>,
    rec_buf: Vec<u8>,
}

impl<'a> ScanSelect<'a> {
    /// Scan `table`, keeping rows satisfying `cond` (all rows if `None`).
    pub fn new(table: &'a RecordTable, cond: Option<Box<dyn CondItem>>) -> Self {
        ScanSelect {
            table,
            pos: 0,
            cond,
            rec_buf: Vec::new(),
        }
    }
}

impl<'a> TupleOp<'a> for ScanSelect<'a> {
    #[inline(never)]
    fn next(&mut self, c: &mut Counters) -> Option<RowRef<'a>> {
        loop {
            c.next_calls += 1;
            if self.pos >= self.table.num_rows() {
                return None;
            }
            let r = self.pos;
            let row = self.table.row(r);
            self.pos += 1;
            let qualifies = match &self.cond {
                None => true,
                Some(cond) => cond.val_bool(row, c),
            };
            if qualifies {
                self.table.store_server_rec(r, &mut self.rec_buf, c);
                std::hint::black_box(self.rec_buf.as_slice());
                return Some(row);
            }
        }
    }
}

/// One aggregate of a [`HashAggregate`].
pub struct AggSpec {
    /// Output name.
    pub name: String,
    /// Kind.
    pub kind: AggKind,
    /// Argument item (`None` for count).
    pub item: Option<Box<dyn Item>>,
}

/// Aggregate function kinds of the baseline engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// SUM(expr).
    Sum,
    /// AVG(expr).
    Avg,
    /// COUNT(*).
    Count,
}

/// One result group: key chars + per-aggregate state.
struct GroupState {
    key: Vec<u8>,
    sums: Vec<f64>,
    count: i64,
}

/// Aggregation result: group keys and finalized aggregate values.
pub struct AggResult {
    /// Aggregate output names (after the key chars).
    pub names: Vec<String>,
    /// Per group: (key chars, aggregate values).
    pub groups: Vec<(Vec<u8>, Vec<f64>)>,
}

impl AggResult {
    /// Rows sorted by key for deterministic comparison.
    pub fn sorted_rows(&self) -> Vec<(Vec<u8>, Vec<f64>)> {
        let mut rows = self.groups.clone();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

/// `HashAggregate` — per-tuple hash grouping + per-value aggregate
/// updates (`Item_sum_*::update_field`).
pub struct HashAggregate {
    key_fields: Vec<usize>,
    aggs: Vec<AggSpec>,
}

impl HashAggregate {
    /// Group by the given char fields, computing `aggs`.
    pub fn new(key_fields: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        HashAggregate { key_fields, aggs }
    }

    /// Drain `child`, returning the finalized groups.
    pub fn run<'a>(&self, child: &mut dyn TupleOp<'a>, c: &mut Counters) -> AggResult {
        let mut table: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut groups: Vec<GroupState> = Vec::new();
        let mut keybuf: Vec<u8> = Vec::with_capacity(self.key_fields.len());
        while let Some(row) = child.next(c) {
            keybuf.clear();
            for &f in &self.key_fields {
                keybuf.push(row.get_char(f, c));
            }
            c.hash_lookup += 1;
            let gid = match table.get(&keybuf) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    table.insert(keybuf.clone(), g);
                    groups.push(GroupState {
                        key: keybuf.clone(),
                        sums: vec![0.0; self.aggs.len()],
                        count: 0,
                    });
                    g
                }
            };
            let st = &mut groups[gid];
            st.count += 1;
            for (a, spec) in self.aggs.iter().enumerate() {
                match spec.kind {
                    AggKind::Count => {}
                    AggKind::Sum | AggKind::Avg => {
                        let v = spec
                            .item
                            .as_ref()
                            .expect("sum/avg need an item")
                            .val(row, c);
                        update_field(&mut st.sums[a], v, c);
                    }
                }
            }
        }
        let names = self.aggs.iter().map(|a| a.name.clone()).collect();
        let groups = groups
            .into_iter()
            .map(|g| {
                let vals = self
                    .aggs
                    .iter()
                    .enumerate()
                    .map(|(a, spec)| match spec.kind {
                        AggKind::Sum => g.sums[a],
                        AggKind::Avg => g.sums[a] / g.count as f64,
                        AggKind::Count => g.count as f64,
                    })
                    .collect();
                (g.key, vals)
            })
            .collect();
        AggResult { names, groups }
    }
}

/// `Item_sum_sum::update_field` — one accumulator update per call.
#[inline(never)]
fn update_field(acc: &mut f64, v: f64, c: &mut Counters) {
    c.item_sum_update += 1;
    *acc += v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{build, ItemCmpI32Field, ItemOp};
    use crate::record::{FieldType, RecordTable};
    use x100_vector::CmpOp;

    fn table() -> RecordTable {
        let mut t = RecordTable::new(vec![
            ("flag".into(), FieldType::Char),
            ("qty".into(), FieldType::F64),
            ("day".into(), FieldType::I32),
        ]);
        for i in 0..10 {
            t.append_row()
                .set_char(0, if i % 2 == 0 { b'A' } else { b'B' })
                .set_f64(1, i as f64)
                .set_i32(2, i);
        }
        t
    }

    #[test]
    fn scan_select_filters() {
        let t = table();
        let mut c = Counters::default();
        let mut scan = ScanSelect::new(
            &t,
            Some(Box::new(ItemCmpI32Field {
                op: CmpOp::Lt,
                field: 2,
                value: 5,
            })),
        );
        let mut n = 0;
        while scan.next(&mut c).is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        // next() was called once per input row + the final None probe.
        assert_eq!(c.next_calls, 11);
        assert_eq!(c.item_cmp_val, 10);
    }

    #[test]
    fn hash_aggregate_groups() {
        let t = table();
        let mut c = Counters::default();
        let mut scan = ScanSelect::new(&t, None);
        let agg = HashAggregate::new(
            vec![0],
            vec![
                AggSpec {
                    name: "sum_qty".into(),
                    kind: AggKind::Sum,
                    item: Some(build::field(1)),
                },
                AggSpec {
                    name: "avg_qty".into(),
                    kind: AggKind::Avg,
                    item: Some(build::field(1)),
                },
                AggSpec {
                    name: "n".into(),
                    kind: AggKind::Count,
                    item: None,
                },
            ],
        );
        let res = agg.run(&mut scan, &mut c);
        let rows = res.sorted_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, b"A".to_vec());
        assert_eq!(rows[0].1, vec![20.0, 4.0, 5.0]); // 0+2+4+6+8
        assert_eq!(rows[1].1, vec![25.0, 5.0, 5.0]); // 1+3+5+7+9
        assert_eq!(c.hash_lookup, 10);
        assert_eq!(c.item_sum_update, 20); // sum + avg each update once per row
    }

    #[test]
    fn expression_aggregate() {
        let t = table();
        let mut c = Counters::default();
        let mut scan = ScanSelect::new(&t, None);
        // sum(qty * (1 - 0.5))
        let agg = HashAggregate::new(
            vec![0],
            vec![AggSpec {
                name: "half".into(),
                kind: AggKind::Sum,
                item: Some(build::func(
                    ItemOp::Mul,
                    build::field(1),
                    build::func(ItemOp::Minus, build::constant(1.0), build::constant(0.5)),
                )),
            }],
        );
        let res = agg.run(&mut scan, &mut c);
        let rows = res.sorted_rows();
        assert_eq!(rows[0].1, vec![10.0]);
        assert_eq!(rows[1].1, vec![12.5]);
        // Work counters advanced: one mul and one minus per row.
        assert_eq!(c.item_func_mul, 10);
        assert_eq!(c.item_func_minus, 10);
        assert!(c.work_fraction() < 0.5, "interpretation overhead dominates");
    }
}
