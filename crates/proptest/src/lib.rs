//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest API used by the workspace's
//! property tests: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`], [`any`],
//! `prop::collection::vec`, `prop::bool::ANY`, [`Union`] (behind
//! `prop_oneof!`), [`ProptestConfig`], and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest: failing cases are not shrunk (the
//! failing inputs are reported as-is by the assertion message), and
//! case generation is seeded deterministically from the test name so
//! failures reproduce across runs.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Per-test RNG. Seeded from the test name, so each test sees a stable
/// stream across runs.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform value over the full domain of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A type-erased sampling arm of a [`Union`].
pub type UnionArm<V> = Rc<dyn Fn(&mut TestRng) -> V>;

/// Weightless union of same-valued strategies; backs `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Build from type-erased sampling arms.
    pub fn new(arms: Vec<UnionArm<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// `prop::collection` — sized containers of generated elements.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::bool` — boolean strategies.
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Either boolean with equal probability (`prop::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, Any, Just, ProptestConfig, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion inside `proptest!` bodies (no shrinking, plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among the listed strategies; all arms must produce
/// the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let __s = $arm;
                ::std::rc::Rc::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&__s, rng))
                    as ::std::rc::Rc<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(-5i64..5, 0..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in -3i64..3, y in 0u8..4) {
            prop_assert!((-3..3).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths(v in small_vec(), flag in prop::bool::ANY) {
            prop_assert!(v.len() < 10);
            prop_assert!(matches!(flag, true | false));
        }

        #[test]
        fn oneof_and_maps((a, b) in (0i32..5, 0i32..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(b >= a);
        }
    }

    #[test]
    fn union_clone_samples_all_arms() {
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let u2 = u.clone();
        let mut rng = TestRng::deterministic("union");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u2.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_dependent_sizes() {
        let s = (1usize..6).prop_flat_map(|n| prop::collection::vec(0i64..10, n));
        let mut rng = TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }
}
