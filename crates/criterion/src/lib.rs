//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the API surface the workspace's `harness = false` benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `throughput` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: a short warm-up, then batches
//! of iterations timed with `std::time::Instant` until a per-benchmark
//! wall-clock budget is spent; the median batch time is reported as
//! ns/iter (plus derived element throughput when set). No statistics
//! machinery, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many items.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Two-part benchmark name: function plus parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Number of timed samples to collect (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), &mut |b| f(b));
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.id, &mut |b| f(b, input));
    }

    /// End the group (parity with criterion; reporting is per-bench).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let Some(median) = b.median_ns() else {
            eprintln!("{}/{id:<40} (no samples)", self.name);
            return;
        };
        let mut line = format!("{}/{id}: {} ns/iter", self.name, fmt_thousands(median));
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                let rate = n as f64 / (median as f64 * 1e-9) / 1e6;
                line.push_str(&format!(" ({rate:.1} Melem/s)"));
            }
            Some(Throughput::Bytes(n)) if median > 0 => {
                let rate = n as f64 / (median as f64 * 1e-9) / 1e6;
                line.push_str(&format!(" ({rate:.1} MB/s)"));
            }
            _ => {}
        }
        eprintln!("{line}");
    }
}

/// Collects timed samples of the closure under test.
pub struct Bencher {
    samples: Vec<u64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called in warm-up plus `sample_size` timed
    /// batches sized to a total budget of ~300 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(30) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let budget_ns = 300_000_000u64;
        let iters_per_sample =
            (budget_ns / self.sample_size as u64 / per_iter.max(1)).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as u64 / iters_per_sample);
        }
    }

    fn median_ns(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

fn fmt_thousands(mut n: u64) -> String {
    let mut parts = Vec::new();
    loop {
        if n < 1000 {
            parts.push(n.to_string());
            break;
        }
        parts.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

/// Declare a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("branch", 50).to_string(), "branch/50");
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(5), "5");
        assert_eq!(fmt_thousands(1_234), "1,234");
        assert_eq!(fmt_thousands(12_345_678), "12,345,678");
    }

    #[test]
    fn bencher_records_samples() {
        let mut g = Criterion::default().benchmark_group("t");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
        g.finish();
    }
}
