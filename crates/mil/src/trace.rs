//! Per-statement tracing for MIL plans (paper Table 3).
//!
//! Table 3 lists, per MIL invocation: elapsed time, the bandwidth
//! achieved "counting both the size of the input BATs and the produced
//! output BAT", and the result size. A [`MilSession`] wraps every
//! operator call, capturing exactly those numbers.

use crate::bat::Bat;
use std::time::Instant;

/// One traced MIL statement.
#[derive(Debug, Clone)]
pub struct MilTraceEntry {
    /// The statement text, e.g. `s0 := select(l_shipdate).mark`.
    pub statement: String,
    /// Elapsed microseconds.
    pub micros: f64,
    /// Input + output bytes.
    pub bytes: usize,
    /// Result BUN count.
    pub result_len: usize,
}

impl MilTraceEntry {
    /// Bandwidth in MB/s (Table 3's "BW" columns).
    pub fn mb_per_sec(&self) -> f64 {
        if self.micros == 0.0 {
            0.0
        } else {
            (self.bytes as f64 / (1 << 20) as f64) / (self.micros * 1e-6)
        }
    }
}

/// A tracing session for one MIL query plan execution.
#[derive(Debug, Default)]
pub struct MilSession {
    entries: Vec<MilTraceEntry>,
}

impl MilSession {
    /// A fresh session.
    pub fn new() -> Self {
        MilSession::default()
    }

    /// Run one MIL statement: `inputs` are the consumed BATs (for byte
    /// accounting), `f` produces the result, `statement` is the display
    /// text.
    pub fn run(&mut self, statement: &str, inputs: &[&Bat], f: impl FnOnce() -> Bat) -> Bat {
        let in_bytes: usize = inputs.iter().map(|b| b.byte_size()).sum();
        let t0 = Instant::now();
        let out = f();
        let micros = t0.elapsed().as_nanos() as f64 / 1000.0;
        self.entries.push(MilTraceEntry {
            statement: statement.to_owned(),
            micros,
            bytes: in_bytes + out.byte_size(),
            result_len: out.len(),
        });
        out
    }

    /// The trace entries, in execution order.
    pub fn entries(&self) -> &[MilTraceEntry] {
        &self.entries
    }

    /// Total elapsed milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.entries.iter().map(|e| e.micros).sum::<f64>() / 1000.0
    }

    /// Total bytes materialized (the "artificially high bandwidths" the
    /// paper criticizes).
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Render a Table 3-style trace.
    pub fn render_table3(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{:>9} {:>9} {:>9} {:>9}  MIL statement",
            "us", "BW MB/s", "MB", "result"
        )
        .expect("write to String");
        for e in &self.entries {
            writeln!(
                s,
                "{:>9.0} {:>9.0} {:>9.2} {:>9}  {}",
                e.micros,
                e.mb_per_sec(),
                e.bytes as f64 / (1 << 20) as f64,
                e.result_len,
                e.statement
            )
            .expect("write to String");
        }
        writeln!(
            s,
            "{:>9.1} ms TOTAL, {:.1} MB materialized",
            self.total_millis(),
            self.total_bytes() as f64 / (1 << 20) as f64
        )
        .expect("write to String");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use x100_vector::{CmpOp, Value};

    #[test]
    fn session_traces_statements() {
        let mut s = MilSession::new();
        let col = Bat::I64((0..1000).collect());
        let sel = s.run("s0 := select(col).mark", &[&col], || {
            ops::select_cmp(&col, CmpOp::Lt, &Value::I64(500))
        });
        assert_eq!(sel.len(), 500);
        let fetched = s.run("s1 := join(s0, col)", &[&sel, &col], || {
            ops::join_fetch(&sel, &col)
        });
        assert_eq!(fetched.len(), 500);
        assert_eq!(s.entries().len(), 2);
        // Byte accounting: first stmt = input col + oid list out.
        assert_eq!(s.entries()[0].bytes, 1000 * 8 + 500 * 4);
        assert!(s.total_millis() >= 0.0);
        let rendered = s.render_table3();
        assert!(rendered.contains("s0 := select(col).mark"));
        assert!(rendered.contains("TOTAL"));
    }
}
