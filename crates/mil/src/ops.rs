//! The MIL operator set used by the paper's Q1 trace (Table 3).
//!
//! Every operator is *column-at-a-time with full materialization*: it
//! consumes whole BATs and materializes a whole result BAT. This is
//! exactly what gives MonetDB/MIL its two-edged-sword profile (§3.2):
//! tight loop-pipelined kernels, but every intermediate result flows
//! through memory, so at scale the engine is bandwidth-bound.
//!
//! Operators have *no degrees of freedom* ("the MIL algebra does not
//! have any degree of freedom. Its algebraic operators have a fixed
//! number of parameters of a fixed format") — hence the per-type
//! monomorphic entry points.

use crate::bat::Bat;
use x100_vector::CmpOp;

/// `select(b, v, op).mark` — positions (oids) of qualifying tuples.
pub fn select_cmp(b: &Bat, op: CmpOp, v: &x100_vector::Value) -> Bat {
    macro_rules! sel {
        ($data:expr, $v:expr) => {{
            let mut out = Vec::new();
            for (i, &x) in $data.iter().enumerate() {
                if op.eval(x, $v) {
                    out.push(i as u32);
                }
            }
            Bat::Oid(out)
        }};
    }
    match b {
        Bat::I32(d) => sel!(d, v.as_i64() as i32),
        Bat::I64(d) => sel!(d, v.as_i64()),
        Bat::F64(d) => sel!(d, v.as_f64()),
        Bat::U8(d) => sel!(d, v.as_i64() as u8),
        Bat::U16(d) => sel!(d, v.as_i64() as u16),
        Bat::Oid(d) => sel!(d, v.as_i64() as u32),
        Bat::Str(d) => {
            let x100_vector::Value::Str(s) = v else {
                panic!("string select needs a string literal")
            };
            let mut out = Vec::new();
            for i in 0..d.len() {
                if op.eval(d.get(i), s.as_str()) {
                    out.push(i as u32);
                }
            }
            Bat::Oid(out)
        }
    }
}

/// `join(oids, col)` — the positional join of an oid list into a
/// `BAT[void,T]`: materializes `col[oids[i]]` for all i. "Positional
/// joins allow to deal with the 'extra' joins needed for vertical
/// fragmentation in a highly efficient way" (§4.1.2).
pub fn join_fetch(oids: &Bat, col: &Bat) -> Bat {
    let idx = oids.as_oid();
    match col {
        Bat::U8(d) => Bat::U8(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::U16(d) => Bat::U16(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::I32(d) => Bat::I32(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::I64(d) => Bat::I64(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::F64(d) => Bat::F64(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::Oid(d) => Bat::Oid(idx.iter().map(|&i| d[i as usize]).collect()),
        Bat::Str(d) => {
            let mut out = x100_vector::StrVec::with_capacity(idx.len(), 8);
            for &i in idx {
                out.push(d.get(i as usize));
            }
            Bat::Str(out)
        }
    }
}

/// Multiplex `[op](val, b)` — map a scalar-constant arithmetic over a
/// whole BAT (e.g. `[-](1.0, tax)`), materializing the result.
pub fn multiplex_val_f64(op: MilArith, v: f64, b: &Bat) -> Bat {
    let d = b.as_f64();
    Bat::F64(match op {
        MilArith::Add => d.iter().map(|&x| v + x).collect(),
        MilArith::Sub => d.iter().map(|&x| v - x).collect(),
        MilArith::Mul => d.iter().map(|&x| v * x).collect(),
        MilArith::Div => d.iter().map(|&x| v / x).collect(),
    })
}

/// Multiplex `[op](a, b)` — map a column-to-column arithmetic.
pub fn multiplex_col_f64(op: MilArith, a: &Bat, b: &Bat) -> Bat {
    let x = a.as_f64();
    let y = b.as_f64();
    assert_eq!(x.len(), y.len(), "multiplex over unequal BATs");
    Bat::F64(match op {
        MilArith::Add => x.iter().zip(y).map(|(&a, &b)| a + b).collect(),
        MilArith::Sub => x.iter().zip(y).map(|(&a, &b)| a - b).collect(),
        MilArith::Mul => x.iter().zip(y).map(|(&a, &b)| a * b).collect(),
        MilArith::Div => x.iter().zip(y).map(|(&a, &b)| a / b).collect(),
    })
}

/// The multiplexable arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilArith {
    /// `[+]`.
    Add,
    /// `[-]`.
    Sub,
    /// `[*]`.
    Mul,
    /// `[/]`.
    Div,
}

/// `group(b)` — assign a dense group id per distinct tail value.
/// Returns `(group ids, number of groups)`.
pub fn group(b: &Bat) -> (Bat, usize) {
    group_refine(None, b)
}

/// `group(prev, b)` — refine an existing grouping by a further column
/// (the paper's `s8 := group(s7, s2)`).
pub fn group_refine(prev: Option<(&Bat, usize)>, b: &Bat) -> (Bat, usize) {
    use std::collections::HashMap;
    let n = b.len();
    let mut ids = vec![0u32; n];
    let mut next = 0u32;
    // Key = (previous group, value bits).
    let mut map: HashMap<(u32, u64), u32> = HashMap::new();
    let mut strmap: HashMap<(u32, String), u32> = HashMap::new();
    for i in 0..n {
        let pg = match prev {
            None => 0,
            Some((p, _)) => p.as_oid()[i],
        };
        let id = match b {
            Bat::U8(d) => *map.entry((pg, d[i] as u64)).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::U16(d) => *map.entry((pg, d[i] as u64)).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::I32(d) => *map.entry((pg, d[i] as u32 as u64)).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::I64(d) => *map.entry((pg, d[i] as u64)).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::F64(d) => *map.entry((pg, d[i].to_bits())).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::Oid(d) => *map.entry((pg, d[i] as u64)).or_insert_with(|| {
                next += 1;
                next - 1
            }),
            Bat::Str(d) => *strmap.entry((pg, d.get(i).to_owned())).or_insert_with(|| {
                next += 1;
                next - 1
            }),
        };
        ids[i] = id;
    }
    (Bat::Oid(ids), next as usize)
}

/// `unique(groups.mirror)` — the distinct group ids `0..n_groups`
/// (the paper's `s9`). With dense group ids this is just a void range.
pub fn unique(n_groups: usize) -> Bat {
    Bat::Oid((0..n_groups as u32).collect())
}

/// `{sum}(vals, groups, ids)` — grouped sum over f64.
pub fn sum_grouped_f64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_f64();
    let g = groups.as_oid();
    assert_eq!(v.len(), g.len());
    let mut acc = vec![0.0f64; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        acc[gi as usize] += x;
    }
    Bat::F64(acc)
}

/// `{sum}(vals, groups, ids)` — grouped sum over i64.
pub fn sum_grouped_i64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_i64();
    let g = groups.as_oid();
    let mut acc = vec![0i64; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        acc[gi as usize] += x;
    }
    Bat::I64(acc)
}

/// `{min}(vals, groups, ids)` — grouped minimum over f64.
pub fn min_grouped_f64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_f64();
    let g = groups.as_oid();
    let mut acc = vec![f64::MAX; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        let a = &mut acc[gi as usize];
        if *x < *a {
            *a = *x;
        }
    }
    Bat::F64(acc)
}

/// `{max}(vals, groups, ids)` — grouped maximum over f64.
pub fn max_grouped_f64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_f64();
    let g = groups.as_oid();
    let mut acc = vec![f64::MIN; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        let a = &mut acc[gi as usize];
        if *x > *a {
            *a = *x;
        }
    }
    Bat::F64(acc)
}

/// `{min}(vals, groups, ids)` — grouped minimum over i64.
pub fn min_grouped_i64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_i64();
    let g = groups.as_oid();
    let mut acc = vec![i64::MAX; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        let a = &mut acc[gi as usize];
        if *x < *a {
            *a = *x;
        }
    }
    Bat::I64(acc)
}

/// `{max}(vals, groups, ids)` — grouped maximum over i64.
pub fn max_grouped_i64(vals: &Bat, groups: &Bat, n_groups: usize) -> Bat {
    let v = vals.as_i64();
    let g = groups.as_oid();
    let mut acc = vec![i64::MIN; n_groups];
    for (x, &gi) in v.iter().zip(g.iter()) {
        let a = &mut acc[gi as usize];
        if *x > *a {
            *a = *x;
        }
    }
    Bat::I64(acc)
}

/// `{count}(groups, ids)` — grouped count.
pub fn count_grouped(groups: &Bat, n_groups: usize) -> Bat {
    let g = groups.as_oid();
    let mut acc = vec![0i64; n_groups];
    for &gi in g {
        acc[gi as usize] += 1;
    }
    Bat::I64(acc)
}

/// `[/](sums, counts)` — the AVG epilogue.
pub fn div_f64_i64(sums: &Bat, counts: &Bat) -> Bat {
    let s = sums.as_f64();
    let c = counts.as_i64();
    Bat::F64(
        s.iter()
            .zip(c.iter())
            .map(|(&x, &n)| x / n as f64)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_vector::Value;

    #[test]
    fn select_produces_oids() {
        let b = Bat::I32(vec![5, 1, 9, 3]);
        let s = select_cmp(&b, CmpOp::Le, &Value::I32(4));
        assert_eq!(s.as_oid(), &[1, 3]);
    }

    #[test]
    fn positional_join_fetches() {
        let oids = Bat::Oid(vec![2, 0]);
        let col = Bat::F64(vec![1.5, 2.5, 3.5]);
        assert_eq!(join_fetch(&oids, &col).as_f64(), &[3.5, 1.5]);
        let strs = Bat::Str(["a", "b", "c"].into_iter().collect());
        let fetched = join_fetch(&oids, &strs);
        assert_eq!(fetched.get(0), Value::Str("c".into()));
    }

    #[test]
    fn multiplex_ops() {
        let b = Bat::F64(vec![0.1, 0.2]);
        assert_eq!(
            multiplex_val_f64(MilArith::Sub, 1.0, &b).as_f64(),
            &[0.9, 0.8]
        );
        let a = Bat::F64(vec![10.0, 10.0]);
        assert_eq!(
            multiplex_col_f64(MilArith::Mul, &a, &b).as_f64(),
            &[1.0, 2.0]
        );
    }

    #[test]
    fn grouping_and_refinement() {
        let flags = Bat::U8(vec![b'A', b'B', b'A', b'B']);
        let (g1, n1) = group(&flags);
        assert_eq!(n1, 2);
        assert_eq!(g1.as_oid(), &[0, 1, 0, 1]);
        let status = Bat::U8(vec![b'X', b'X', b'Y', b'X']);
        let (g2, n2) = group_refine(Some((&g1, n1)), &status);
        assert_eq!(n2, 3);
        assert_eq!(g2.as_oid(), &[0, 1, 2, 1]);
        assert_eq!(unique(n2).as_oid(), &[0, 1, 2]);
    }

    #[test]
    fn grouped_min_max() {
        let groups = Bat::Oid(vec![0, 1, 0, 1]);
        let vals = Bat::F64(vec![5.0, -2.0, 3.0, 8.0]);
        assert_eq!(min_grouped_f64(&vals, &groups, 2).as_f64(), &[3.0, -2.0]);
        assert_eq!(max_grouped_f64(&vals, &groups, 2).as_f64(), &[5.0, 8.0]);
        let ivals = Bat::I64(vec![5, -2, 3, 8]);
        assert_eq!(min_grouped_i64(&ivals, &groups, 2).as_i64(), &[3, -2]);
        assert_eq!(max_grouped_i64(&ivals, &groups, 2).as_i64(), &[5, 8]);
    }

    #[test]
    fn grouped_aggregates() {
        let groups = Bat::Oid(vec![0, 1, 0]);
        let vals = Bat::F64(vec![1.0, 2.0, 3.0]);
        assert_eq!(sum_grouped_f64(&vals, &groups, 2).as_f64(), &[4.0, 2.0]);
        assert_eq!(count_grouped(&groups, 2).as_i64(), &[2, 1]);
        let avg = div_f64_i64(
            &sum_grouped_f64(&vals, &groups, 2),
            &count_grouped(&groups, 2),
        );
        assert_eq!(avg.as_f64(), &[2.0, 2.0]);
    }
}
