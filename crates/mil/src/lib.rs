//! # monet-mil — the MonetDB/MIL column-at-a-time baseline
//!
//! The paper's §3.2 baseline: MonetDB executes queries as sequences of
//! MIL statements over [`Bat`]s, each operator consuming materialized
//! input BATs and materializing a full output BAT. No degrees of
//! freedom, no tuple-at-a-time interpretation — but *full column
//! materialization*, which makes the engine memory-bandwidth bound at
//! scale (Table 3: stuck at the machine's sustainable bandwidth at
//! SF=1, nearly 2× faster when everything fits the cache at SF=0.001).
//!
//! The [`MilSession`] traces every statement with elapsed time, bytes
//! and bandwidth so the Table 3 experiment can be regenerated.

pub mod bat;
pub mod ops;
pub mod trace;

pub use bat::Bat;
pub use ops::MilArith;
pub use trace::{MilSession, MilTraceEntry};
