//! Binary Association Tables (BATs).
//!
//! MonetDB stores each column in a BAT of `[oid, value]` pairs (paper
//! §3.2). When the head oids are densely ascending from 0 they are
//! *virtual* (`void`) and not stored — the BAT degenerates to an array.
//! All BATs this engine materializes are `BAT[void, T]`; the MIL
//! `reverse`/`mark` plumbing that MonetDB uses to renumber heads is
//! zero-cost there and implicit here.

use x100_vector::{ScalarType, Value};

/// A `BAT[void, T]`: dense virtual head, typed tail.
#[derive(Debug, Clone, PartialEq)]
pub enum Bat {
    /// `oid` tail (selection results, group ids).
    Oid(Vec<u32>),
    /// 8-bit unsigned tail (enum codes, chars).
    U8(Vec<u8>),
    /// 16-bit unsigned tail.
    U16(Vec<u16>),
    /// 32-bit signed tail (dates).
    I32(Vec<i32>),
    /// 64-bit signed tail.
    I64(Vec<i64>),
    /// Double tail.
    F64(Vec<f64>),
    /// String tail.
    Str(x100_vector::StrVec),
}

impl Bat {
    /// Number of tuples (BUNs) in the BAT.
    pub fn len(&self) -> usize {
        match self {
            Bat::Oid(v) => v.len(),
            Bat::U8(v) => v.len(),
            Bat::U16(v) => v.len(),
            Bat::I32(v) => v.len(),
            Bat::I64(v) => v.len(),
            Bat::F64(v) => v.len(),
            Bat::Str(v) => v.len(),
        }
    }

    /// True if the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tail type.
    pub fn tail_type(&self) -> ScalarType {
        match self {
            Bat::Oid(_) => ScalarType::U32,
            Bat::U8(_) => ScalarType::U8,
            Bat::U16(_) => ScalarType::U16,
            Bat::I32(_) => ScalarType::I32,
            Bat::I64(_) => ScalarType::I64,
            Bat::F64(_) => ScalarType::F64,
            Bat::Str(_) => ScalarType::Str,
        }
    }

    /// Materialized size in bytes (Table 3's MB / bandwidth accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Bat::Str(v) => v.byte_size(),
            other => other.len() * other.tail_type().width(),
        }
    }

    /// Tail value at `i` (slow path).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Bat::Oid(v) => Value::U32(v[i]),
            Bat::U8(v) => Value::U8(v[i]),
            Bat::U16(v) => Value::U16(v[i]),
            Bat::I32(v) => Value::I32(v[i]),
            Bat::I64(v) => Value::I64(v[i]),
            Bat::F64(v) => Value::F64(v[i]),
            Bat::Str(v) => Value::Str(v.get(i).to_owned()),
        }
    }

    /// Borrow the oid tail.
    ///
    /// # Panics
    /// Panics if the tail is not `Oid`.
    pub fn as_oid(&self) -> &[u32] {
        match self {
            Bat::Oid(v) => v,
            other => panic!("expected oid tail, got {}", other.tail_type()),
        }
    }

    /// Borrow the f64 tail.
    ///
    /// # Panics
    /// Panics if the tail is not `F64`.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Bat::F64(v) => v,
            other => panic!("expected f64 tail, got {}", other.tail_type()),
        }
    }

    /// Borrow the i64 tail.
    ///
    /// # Panics
    /// Panics if the tail is not `I64`.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Bat::I64(v) => v,
            other => panic!("expected i64 tail, got {}", other.tail_type()),
        }
    }

    /// Borrow the i32 tail.
    ///
    /// # Panics
    /// Panics if the tail is not `I32`.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            Bat::I32(v) => v,
            other => panic!("expected i32 tail, got {}", other.tail_type()),
        }
    }

    /// Borrow the u8 tail.
    ///
    /// # Panics
    /// Panics if the tail is not `U8`.
    pub fn as_u8(&self) -> &[u8] {
        match self {
            Bat::U8(v) => v,
            other => panic!("expected u8 tail, got {}", other.tail_type()),
        }
    }

    /// Build a BAT view of a stored column (zero-copy conceptually; we
    /// copy once at load time because MonetDB shares the same memory).
    pub fn from_column(col: &x100_storage::ColumnData) -> Bat {
        use x100_storage::ColumnData as C;
        match col {
            C::U8(v) => Bat::U8(v.clone()),
            C::U16(v) => Bat::U16(v.clone()),
            C::U32(v) => Bat::Oid(v.clone()),
            C::I32(v) => Bat::I32(v.clone()),
            C::I64(v) => Bat::I64(v.clone()),
            C::F64(v) => Bat::F64(v.clone()),
            C::Str(v) => Bat::Str(v.clone()),
            other => panic!("unsupported BAT source {:?}", other.scalar_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bat_basics() {
        let b = Bat::F64(vec![1.0, 2.0]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.tail_type(), ScalarType::F64);
        assert_eq!(b.byte_size(), 16);
        assert_eq!(b.get(1), Value::F64(2.0));
    }

    #[test]
    fn from_column_roundtrip() {
        let col = x100_storage::ColumnData::I64(vec![5, 6]);
        let b = Bat::from_column(&col);
        assert_eq!(b.as_i64(), &[5, 6]);
    }

    #[test]
    #[should_panic]
    fn wrong_tail_access_panics() {
        Bat::F64(vec![1.0]).as_i64();
    }
}
