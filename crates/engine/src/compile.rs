//! Expression compilation: binding names, lowering to primitive programs.
//!
//! An [`crate::expr::Expr`] is lowered into an [`ExprProg`]: a short
//! SSA-style instruction list over a register file of reusable vectors.
//! Each instruction corresponds to exactly one vectorized primitive
//! invocation per batch, identified by its signature string (what the
//! paper's Table 5 traces per row).
//!
//! The compiler also performs the paper's *compound primitive* rewrite
//! (§4.2): expression sub-trees matching a fused kernel — e.g.
//! `*( -(const, col), col)` — compile to a single fused instruction,
//! keeping intermediates in CPU registers. Fusion is on by default and
//! can be disabled for ablation (`ExecOptions::compound_primitives`).

use crate::batch::{Batch, OutField};
use crate::expr::{ArithOp, Expr};
use crate::profile::Profiler;
use x100_vector::{map, CmpOp, ScalarType, SelVec, Value, Vector};

/// A value source: an input column of the batch or a temp register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Batch column index.
    Col(u16),
    /// Register index (always lower than the consuming instruction's dst).
    Reg(u16),
}

/// One lowered instruction. `dst` is always a register strictly greater
/// than every `Reg` source, so the interpreter can split the register
/// file without aliasing.
#[derive(Debug, Clone)]
pub enum Instr {
    /// `dst = l ⊕ r` (column ⊕ column).
    ArithCC {
        op: ArithOp,
        ty: ScalarType,
        l: Src,
        r: Src,
        dst: u16,
    },
    /// `dst = l ⊕ v` (column ⊕ constant).
    ArithCV {
        op: ArithOp,
        ty: ScalarType,
        l: Src,
        v: Value,
        dst: u16,
    },
    /// `dst = v ⊕ r` (constant ⊕ column).
    ArithVC {
        op: ArithOp,
        ty: ScalarType,
        v: Value,
        r: Src,
        dst: u16,
    },
    /// `dst = l ⊙ r` (boolean result).
    CmpCC {
        op: CmpOp,
        ty: ScalarType,
        l: Src,
        r: Src,
        dst: u16,
    },
    /// `dst = l ⊙ v` (boolean result).
    CmpCV {
        op: CmpOp,
        ty: ScalarType,
        l: Src,
        v: Value,
        dst: u16,
    },
    /// `dst = (l == v)` or `!=` for string columns.
    StrEqCV {
        l: Src,
        v: String,
        negate: bool,
        dst: u16,
    },
    /// `dst = l AND r`.
    And { l: Src, r: Src, dst: u16 },
    /// `dst = l OR r`.
    Or { l: Src, r: Src, dst: u16 },
    /// `dst = NOT s`.
    Not { s: Src, dst: u16 },
    /// `dst = cast(s)`.
    Cast {
        from: ScalarType,
        to: ScalarType,
        s: Src,
        dst: u16,
    },
    /// `dst = v` broadcast.
    Fill { v: Value, dst: u16 },
    /// Compound: `dst = (v - a) * b` in one loop.
    FusedSubValMul { v: f64, a: Src, b: Src, dst: u16 },
    /// Compound: `dst = (v + a) * b` in one loop.
    FusedAddValMul { v: f64, a: Src, b: Src, dst: u16 },
    /// `dst = year(s)` over i32 days-since-epoch.
    YearOf { s: Src, dst: u16 },
    /// `dst = s.contains(needle)` over a string column.
    StrContainsCV { s: Src, needle: String, dst: u16 },
}

/// A compiled expression: instructions + register file + result source.
#[derive(Debug)]
pub struct ExprProg {
    instrs: Vec<(Instr, String)>,
    #[allow(dead_code)]
    reg_types: Vec<ScalarType>,
    regs: Vec<Vector>,
    result: Src,
    ty: ScalarType,
}

/// Errors from binding / lowering an expression against a dataflow
/// shape, or from the resource governor during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A referenced column is not in the input shape.
    UnknownColumn(String),
    /// Operation is not defined for the operand type(s).
    TypeMismatch(String),
    /// A table or plan-structure problem.
    Invalid(String),
    /// A stateful operator would exceed the query's memory budget.
    ResourceExhausted {
        /// Operator that requested the memory (e.g. `hash-join build`).
        operator: String,
        /// Bytes the operator wanted charged in total.
        requested: usize,
        /// The query's budget in bytes.
        budget: usize,
    },
    /// The query's cancel token was triggered.
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// A morsel worker panicked; siblings were cancelled and joined.
    WorkerPanic {
        /// Index of the panicking worker.
        worker: usize,
        /// Stringified panic payload.
        cause: String,
    },
    /// A storage access kept failing after its retry budget (or, with
    /// `unrecoverable`, every fallback path failed too — e.g. a torn
    /// compressed chunk whose retained raw fragment also faults).
    Io {
        /// The storage access path that failed.
        site: x100_storage::FaultSite,
        /// True when no recovery path remains: retries were exhausted
        /// *and* the fallback source (raw fragment, re-read) failed.
        unrecoverable: bool,
        /// Human-readable failure detail.
        detail: String,
    },
    /// The bind-time plan verifier rejected the compiled plan.
    PlanCheck {
        /// Path to the offending node, e.g. `root.Select.pred` or
        /// `root.Project.expr[2].instr[1]`.
        path: String,
        /// The defect class and details.
        violation: CheckViolation,
    },
}

/// Defect classes the bind-time verifier ([`crate::check`]) rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckViolation {
    /// A primitive was fed operands whose types don't match its
    /// registered signature (or an expression cannot type at all).
    TypeMismatch {
        /// The signature or expression in question.
        signature: String,
        /// What went wrong.
        detail: String,
    },
    /// Selection-vector discipline violation: a `select_*` output fed
    /// where a dense vector is required, or a dense-only primitive run
    /// under a selection.
    SelVectorMisuse {
        /// The signature at the violation point.
        signature: String,
        /// What went wrong.
        detail: String,
    },
    /// An enum-code column escapes the plan in a decoded-value context
    /// without a `Fetch1Join` dictionary decode.
    UndecodedEnumColumn {
        /// The code-carrying column.
        column: String,
        /// Where it leaked (e.g. `arithmetic operand`, `cast operand`).
        context: String,
    },
    /// A compiled instruction's signature is not in the primitive
    /// registry.
    UnknownSignature {
        /// The unregistered signature.
        signature: String,
    },
    /// A spill budget is configured but a buffering operator's kernel
    /// does not advertise spill capability in the catalog
    /// (`SigInfo::spills`) — the budget could never be honored there.
    SpillUnsupported {
        /// The buffering kernel's signature.
        signature: String,
        /// The plan operator that relies on it.
        operator: String,
    },
    /// The facts analyzer ([`crate::facts`]) proved a defect: e.g. a
    /// fetch whose `#rowId` range lies entirely outside the table.
    /// Only raised under `ExecOptions::enforce_facts`.
    FactViolation {
        /// What the analyzer proved wrong.
        detail: String,
    },
}

impl std::fmt::Display for CheckViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckViolation::TypeMismatch { signature, detail } => {
                write!(f, "type mismatch in `{signature}`: {detail}")
            }
            CheckViolation::SelVectorMisuse { signature, detail } => {
                write!(f, "selection-vector misuse at `{signature}`: {detail}")
            }
            CheckViolation::UndecodedEnumColumn { column, context } => write!(
                f,
                "enum-code column `{column}` used as {context} without a Fetch1Join decode"
            ),
            CheckViolation::UnknownSignature { signature } => {
                write!(
                    f,
                    "signature `{signature}` is not in the primitive registry"
                )
            }
            CheckViolation::SpillUnsupported {
                signature,
                operator,
            } => write!(
                f,
                "spill budget set but `{operator}` relies on `{signature}`, \
                 which does not advertise spill capability"
            ),
            CheckViolation::FactViolation { detail } => {
                write!(f, "fact violation: {detail}")
            }
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            PlanError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            PlanError::Invalid(m) => write!(f, "invalid plan: {m}"),
            PlanError::ResourceExhausted {
                operator,
                requested,
                budget,
            } => write!(
                f,
                "resource exhausted: {operator} needs {requested} bytes, budget is {budget}"
            ),
            PlanError::Cancelled => write!(f, "query cancelled"),
            PlanError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            PlanError::WorkerPanic { worker, cause } => {
                write!(f, "worker {worker} panicked: {cause}")
            }
            PlanError::Io {
                site,
                unrecoverable,
                detail,
            } => write!(
                f,
                "storage I/O error ({site}{}): {detail}",
                if *unrecoverable {
                    ", unrecoverable"
                } else {
                    ""
                }
            ),
            PlanError::PlanCheck { path, violation } => {
                write!(f, "plan check failed at {path}: {violation}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Numeric promotion rank (i32-class < i64-class < f64).
fn rank(ty: ScalarType) -> Option<u8> {
    match ty {
        ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::U8 | ScalarType::U16 => {
            Some(1)
        }
        ScalarType::I64 | ScalarType::U32 => Some(2),
        ScalarType::F64 => Some(3),
        _ => None,
    }
}

/// The canonical arithmetic type at a promotion rank.
fn rank_type(r: u8) -> ScalarType {
    match r {
        1 => ScalarType::I32,
        2 => ScalarType::I64,
        _ => ScalarType::F64,
    }
}

struct Lowering<'a> {
    fields: &'a [OutField],
    instrs: Vec<(Instr, String)>,
    #[allow(dead_code)]
    reg_types: Vec<ScalarType>,
    compound: bool,
}

impl<'a> Lowering<'a> {
    fn alloc(&mut self, ty: ScalarType) -> u16 {
        self.reg_types.push(ty);
        (self.reg_types.len() - 1) as u16
    }

    fn src_type(&self, s: Src) -> ScalarType {
        match s {
            Src::Col(i) => self.fields[i as usize].ty,
            Src::Reg(i) => self.reg_types[i as usize],
        }
    }

    /// Coerce `s` to exactly `ty`, inserting a cast if needed.
    fn coerce(&mut self, s: Src, ty: ScalarType) -> Result<Src, PlanError> {
        let from = self.src_type(s);
        if from == ty {
            return Ok(s);
        }
        let ok = matches!(
            (from, ty),
            (
                ScalarType::I8
                    | ScalarType::I16
                    | ScalarType::I32
                    | ScalarType::U8
                    | ScalarType::U16
                    | ScalarType::U32
                    | ScalarType::I64,
                ScalarType::I64
            ) | (
                ScalarType::I8
                    | ScalarType::I16
                    | ScalarType::I32
                    | ScalarType::U8
                    | ScalarType::U16,
                ScalarType::I32
            ) | (
                ScalarType::I8
                    | ScalarType::I16
                    | ScalarType::I32
                    | ScalarType::U8
                    | ScalarType::U16
                    | ScalarType::U32
                    | ScalarType::I64,
                ScalarType::F64
            ) | (ScalarType::U8 | ScalarType::U16, ScalarType::U32)
                | (ScalarType::Bool, ScalarType::I64 | ScalarType::F64)
        );
        if !ok {
            return Err(PlanError::TypeMismatch(format!(
                "cannot cast {from} to {ty}"
            )));
        }
        let dst = self.alloc(ty);
        self.instrs.push((
            Instr::Cast {
                from,
                to: ty,
                s,
                dst,
            },
            format!("map_cast_{}_{}_col", from.sig_name(), ty.sig_name()),
        ));
        Ok(Src::Reg(dst))
    }

    /// Coerce a literal to `ty`.
    fn coerce_value(v: &Value, ty: ScalarType) -> Result<Value, PlanError> {
        let out =
            match ty {
                ScalarType::F64 => Value::F64(v.as_f64()),
                ScalarType::I64 => Value::I64(v.as_i64()),
                ScalarType::I32 => Value::I32(i32::try_from(v.as_i64()).map_err(|_| {
                    PlanError::TypeMismatch(format!("literal {v} out of i32 range"))
                })?),
                other => {
                    if v.scalar_type() == other {
                        v.clone()
                    } else {
                        return Err(PlanError::TypeMismatch(format!(
                            "literal {v} is not {other}"
                        )));
                    }
                }
            };
        Ok(out)
    }

    fn lower(&mut self, e: &Expr) -> Result<(Lowered, ScalarType), PlanError> {
        match e {
            Expr::Col(name) => {
                let i = self
                    .fields
                    .iter()
                    .position(|f| &f.name == name)
                    .ok_or_else(|| PlanError::UnknownColumn(name.clone()))?;
                Ok((Lowered::Src(Src::Col(i as u16)), self.fields[i].ty))
            }
            Expr::Lit(v) => Ok((Lowered::Const(v.clone()), v.scalar_type())),
            Expr::Arith(op, l, r) => self.lower_arith(*op, l, r),
            Expr::Cmp(op, l, r) => self.lower_cmp(*op, l, r),
            Expr::And(l, r) | Expr::Or(l, r) => {
                let is_and = matches!(e, Expr::And(..));
                let ls = self.lower_bool(l)?;
                let rs = self.lower_bool(r)?;
                let dst = self.alloc(ScalarType::Bool);
                let (instr, sig) = if is_and {
                    (Instr::And { l: ls, r: rs, dst }, "map_and_bool_col")
                } else {
                    (Instr::Or { l: ls, r: rs, dst }, "map_or_bool_col")
                };
                self.instrs.push((instr, sig.to_owned()));
                Ok((Lowered::Src(Src::Reg(dst)), ScalarType::Bool))
            }
            Expr::Not(x) => {
                let s = self.lower_bool(x)?;
                let dst = self.alloc(ScalarType::Bool);
                self.instrs
                    .push((Instr::Not { s, dst }, "map_not_bool_col".to_owned()));
                Ok((Lowered::Src(Src::Reg(dst)), ScalarType::Bool))
            }
            Expr::Cast(ty, x) => {
                let (lx, xty) = self.lower(x)?;
                match lx {
                    Lowered::Const(v) => Ok((Lowered::Const(Self::coerce_value(&v, *ty)?), *ty)),
                    Lowered::Src(s) => {
                        let _ = xty;
                        let out = self.coerce(s, *ty)?;
                        Ok((Lowered::Src(out), *ty))
                    }
                }
            }
            Expr::Year(x) => {
                let (lx, xty) = self.lower(x)?;
                if xty != ScalarType::I32 {
                    return Err(PlanError::TypeMismatch(format!(
                        "year() expects i32 days-since-epoch, got {xty}"
                    )));
                }
                match lx {
                    Lowered::Const(v) => Ok((
                        Lowered::Const(Value::I32(
                            x100_vector::date::from_days(v.as_i64() as i32).0,
                        )),
                        ScalarType::I32,
                    )),
                    Lowered::Src(s) => {
                        let dst = self.alloc(ScalarType::I32);
                        self.instrs
                            .push((Instr::YearOf { s, dst }, "map_year_i32_col".to_owned()));
                        Ok((Lowered::Src(Src::Reg(dst)), ScalarType::I32))
                    }
                }
            }
            Expr::StrContains(x, needle) => {
                let (lx, xty) = self.lower(x)?;
                if xty != ScalarType::Str {
                    return Err(PlanError::TypeMismatch(format!(
                        "contains() expects a string column, got {xty}"
                    )));
                }
                match lx {
                    Lowered::Const(Value::Str(s)) => Ok((
                        Lowered::Const(Value::Bool(s.contains(needle))),
                        ScalarType::Bool,
                    )),
                    Lowered::Const(_) => unreachable!("typed as Str above"),
                    Lowered::Src(s) => {
                        let dst = self.alloc(ScalarType::Bool);
                        self.instrs.push((
                            Instr::StrContainsCV {
                                s,
                                needle: needle.clone(),
                                dst,
                            },
                            "map_contains_str_col_val".to_owned(),
                        ));
                        Ok((Lowered::Src(Src::Reg(dst)), ScalarType::Bool))
                    }
                }
            }
        }
    }

    fn lower_bool(&mut self, e: &Expr) -> Result<Src, PlanError> {
        let (l, ty) = self.lower(e)?;
        if ty != ScalarType::Bool {
            return Err(PlanError::TypeMismatch(format!(
                "expected boolean expression, got {ty}"
            )));
        }
        match l {
            Lowered::Src(s) => Ok(s),
            Lowered::Const(v) => {
                let dst = self.alloc(ScalarType::Bool);
                self.instrs
                    .push((Instr::Fill { v, dst }, "map_fill_const".to_owned()));
                Ok(Src::Reg(dst))
            }
        }
    }

    fn lower_arith(
        &mut self,
        op: ArithOp,
        l: &Expr,
        r: &Expr,
    ) -> Result<(Lowered, ScalarType), PlanError> {
        let (ll, lty) = self.lower(l)?;
        let (rl, rty) = self.lower(r)?;
        let lr = rank(lty).ok_or_else(|| PlanError::TypeMismatch(format!("{op:?} on {lty}")))?;
        let rr = rank(rty).ok_or_else(|| PlanError::TypeMismatch(format!("{op:?} on {rty}")))?;
        let mut ty = rank_type(lr.max(rr));
        if op == ArithOp::Div {
            ty = ScalarType::F64; // division is float-only
        }
        // Constant folding.
        if let (Lowered::Const(lv), Lowered::Const(rv)) = (&ll, &rl) {
            let folded = match ty {
                ScalarType::F64 => {
                    let (a, b) = (lv.as_f64(), rv.as_f64());
                    Value::F64(match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                    })
                }
                _ => {
                    let (a, b) = (lv.as_i64(), rv.as_i64());
                    let x = match op {
                        ArithOp::Add => a.wrapping_add(b),
                        ArithOp::Sub => a.wrapping_sub(b),
                        ArithOp::Mul => a.wrapping_mul(b),
                        ArithOp::Div => unreachable!("div folded as f64"),
                    };
                    if ty == ScalarType::I32 {
                        Value::I32(x as i32)
                    } else {
                        Value::I64(x)
                    }
                }
            };
            return Ok((Lowered::Const(folded), ty));
        }
        // Compound fusion: *( -(const, a), b ) and *( +(const, a), b ).
        if self.compound && op == ArithOp::Mul && ty == ScalarType::F64 {
            if let Some((fused, sig)) = self.try_fuse(&ll, &rl)? {
                let dst = self.alloc(ScalarType::F64);
                let instr = match fused {
                    FusedShape::SubValMul { v, a, b } => Instr::FusedSubValMul { v, a, b, dst },
                    FusedShape::AddValMul { v, a, b } => Instr::FusedAddValMul { v, a, b, dst },
                };
                self.instrs.push((instr, sig));
                return Ok((Lowered::Src(Src::Reg(dst)), ScalarType::F64));
            }
        }
        let tyn = ty.sig_name();
        let opn = op.sig_name();
        // Coerce operands *before* allocating `dst`: the interpreter
        // requires every source register index to be below `dst`.
        let (instr_builder, sig): (Box<dyn FnOnce(u16) -> Instr>, String) = match (ll, rl) {
            (Lowered::Src(ls), Lowered::Src(rs)) => {
                let ls = self.coerce(ls, ty)?;
                let rs = self.coerce(rs, ty)?;
                (
                    Box::new(move |dst| Instr::ArithCC {
                        op,
                        ty,
                        l: ls,
                        r: rs,
                        dst,
                    }),
                    format!("map_{opn}_{tyn}_col_{tyn}_col"),
                )
            }
            (Lowered::Src(ls), Lowered::Const(rv)) => {
                let ls = self.coerce(ls, ty)?;
                let rv = Self::coerce_value(&rv, ty)?;
                (
                    Box::new(move |dst| Instr::ArithCV {
                        op,
                        ty,
                        l: ls,
                        v: rv,
                        dst,
                    }),
                    format!("map_{opn}_{tyn}_col_{tyn}_val"),
                )
            }
            (Lowered::Const(lv), Lowered::Src(rs)) => {
                let rs = self.coerce(rs, ty)?;
                let lv = Self::coerce_value(&lv, ty)?;
                (
                    Box::new(move |dst| Instr::ArithVC {
                        op,
                        ty,
                        v: lv,
                        r: rs,
                        dst,
                    }),
                    format!("map_{opn}_{tyn}_val_{tyn}_col"),
                )
            }
            (Lowered::Const(_), Lowered::Const(_)) => unreachable!("folded above"),
        };
        let dst = self.alloc(ty);
        self.instrs.push((instr_builder(dst), sig));
        Ok((Lowered::Src(Src::Reg(dst)), ty))
    }

    /// Detect the fusable shapes: the last emitted instruction produced
    /// one multiplicand as `const ± col`.
    fn try_fuse(
        &mut self,
        ll: &Lowered,
        rl: &Lowered,
    ) -> Result<Option<(FusedShape, String)>, PlanError> {
        // Only Src×Src shapes can fuse (a constant multiplicand folds anyway).
        let (Lowered::Src(ls), Lowered::Src(rs)) = (ll, rl) else {
            return Ok(None);
        };
        // Check whether ls (or rs) is the result of the *immediately
        // preceding* `ArithVC{Sub|Add, F64}` instruction; if so, replace it.
        let candidate = |s: &Src, instrs: &[(Instr, String)]| -> Option<(f64, Src, ArithOp)> {
            let Src::Reg(r) = s else { return None };
            let (
                Instr::ArithVC {
                    op,
                    ty: ScalarType::F64,
                    v,
                    r: inner,
                    dst,
                },
                _,
            ) = instrs.last()?
            else {
                return None;
            };
            if *dst == *r && matches!(op, ArithOp::Sub | ArithOp::Add) {
                Some((v.as_f64(), *inner, *op))
            } else {
                None
            }
        };
        for (side, other) in [(ls, rs), (rs, ls)] {
            if let Some((v, a, op)) = candidate(side, &self.instrs) {
                // `other` must not be the register being fused away
                // (e.g. `(1-a) * (1-a)` reuses the same result twice).
                let depends = matches!((*side, *other), (Src::Reg(d), Src::Reg(r)) if r == d);
                if depends {
                    continue;
                }
                self.instrs.pop(); // drop the simple sub/add
                let shape = match op {
                    ArithOp::Sub => FusedShape::SubValMul { v, a, b: *other },
                    ArithOp::Add => FusedShape::AddValMul { v, a, b: *other },
                    _ => unreachable!(),
                };
                let sig = match op {
                    ArithOp::Sub => "map_fused_sub_f64_val_f64_col_mul_f64_col",
                    _ => "map_fused_add_f64_val_f64_col_mul_f64_col",
                };
                return Ok(Some((shape, sig.to_owned())));
            }
        }
        Ok(None)
    }

    fn lower_cmp(
        &mut self,
        op: CmpOp,
        l: &Expr,
        r: &Expr,
    ) -> Result<(Lowered, ScalarType), PlanError> {
        let (ll, lty) = self.lower(l)?;
        let (rl, rty) = self.lower(r)?;
        // String equality special case.
        if lty == ScalarType::Str || rty == ScalarType::Str {
            let negate = match op {
                CmpOp::Eq => false,
                CmpOp::Ne => true,
                other => {
                    return Err(PlanError::TypeMismatch(format!(
                        "{other:?} not supported on strings"
                    )))
                }
            };
            let (s, v) = match (ll, rl) {
                (Lowered::Src(s), Lowered::Const(Value::Str(v)))
                | (Lowered::Const(Value::Str(v)), Lowered::Src(s)) => (s, v),
                _ => {
                    return Err(PlanError::TypeMismatch(
                        "string comparison requires column vs literal".to_owned(),
                    ))
                }
            };
            let dst = self.alloc(ScalarType::Bool);
            self.instrs.push((
                Instr::StrEqCV {
                    l: s,
                    v,
                    negate,
                    dst,
                },
                "map_eq_str_col_val".to_owned(),
            ));
            return Ok((Lowered::Src(Src::Reg(dst)), ScalarType::Bool));
        }
        // Numeric comparison: compare in the *native* shared type when the
        // two sides already agree, otherwise promote.
        let ty = if lty == rty {
            lty
        } else {
            let lr =
                rank(lty).ok_or_else(|| PlanError::TypeMismatch(format!("{op:?} on {lty}")))?;
            let rr =
                rank(rty).ok_or_else(|| PlanError::TypeMismatch(format!("{op:?} on {rty}")))?;
            rank_type(lr.max(rr))
        };
        if let (Lowered::Const(a), Lowered::Const(b)) = (&ll, &rl) {
            let res = if ty == ScalarType::F64 {
                op.eval(a.as_f64(), b.as_f64())
            } else {
                op.eval(a.as_i64(), b.as_i64())
            };
            return Ok((Lowered::Const(Value::Bool(res)), ScalarType::Bool));
        }
        let tyn = ty.sig_name();
        let opn = op.sig_name();
        // Coerce operands before allocating `dst` (interpreter invariant:
        // source register indices < dst).
        let (instr_builder, sig): (Box<dyn FnOnce(u16) -> Instr>, String) = match (ll, rl) {
            (Lowered::Src(ls), Lowered::Src(rs)) => {
                let ls = self.coerce(ls, ty)?;
                let rs = self.coerce(rs, ty)?;
                (
                    Box::new(move |dst| Instr::CmpCC {
                        op,
                        ty,
                        l: ls,
                        r: rs,
                        dst,
                    }),
                    format!("map_{opn}_{tyn}_col_col"),
                )
            }
            (Lowered::Src(ls), Lowered::Const(rv)) => {
                // Comparing a narrow column against a literal that fits its
                // type keeps the narrow type (enum-code predicates).
                let (ls, rv) = self.narrow_or_promote(ls, rv, ty)?;
                let sty = self.src_type(ls);
                (
                    Box::new(move |dst| Instr::CmpCV {
                        op,
                        ty: sty,
                        l: ls,
                        v: rv,
                        dst,
                    }),
                    format!("map_{opn}_{}_col_val", sty.sig_name()),
                )
            }
            (Lowered::Const(lv), Lowered::Src(rs)) => {
                // Flip `v ⊙ col` into `col ⊙' v`.
                let flipped = match op {
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Ne => CmpOp::Ne,
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                };
                let (rs, lv) = self.narrow_or_promote(rs, lv, ty)?;
                let sty = self.src_type(rs);
                (
                    Box::new(move |dst| Instr::CmpCV {
                        op: flipped,
                        ty: sty,
                        l: rs,
                        v: lv,
                        dst,
                    }),
                    format!("map_{}_{}_col_val", flipped.sig_name(), sty.sig_name()),
                )
            }
            (Lowered::Const(_), Lowered::Const(_)) => unreachable!("folded above"),
        };
        let dst = self.alloc(ScalarType::Bool);
        self.instrs.push((instr_builder(dst), sig));
        Ok((Lowered::Src(Src::Reg(dst)), ScalarType::Bool))
    }

    /// For `col ⊙ literal`: keep the column's native type when the literal
    /// fits it (avoids casting 6M enum codes to compare against one value),
    /// else cast the column up to `ty`.
    fn narrow_or_promote(
        &mut self,
        s: Src,
        v: Value,
        ty: ScalarType,
    ) -> Result<(Src, Value), PlanError> {
        let sty = self.src_type(s);
        let fits = match sty {
            ScalarType::I8 => {
                i8::try_from(v.as_i64()).is_ok() && v.scalar_type() != ScalarType::F64
            }
            ScalarType::I16 => {
                i16::try_from(v.as_i64()).is_ok() && v.scalar_type() != ScalarType::F64
            }
            ScalarType::I32 => {
                v.scalar_type() != ScalarType::F64 && i32::try_from(v.as_i64()).is_ok()
            }
            ScalarType::I64 => v.scalar_type() != ScalarType::F64,
            ScalarType::U8 => {
                v.scalar_type() != ScalarType::F64 && u8::try_from(v.as_i64()).is_ok()
            }
            ScalarType::U16 => {
                v.scalar_type() != ScalarType::F64 && u16::try_from(v.as_i64()).is_ok()
            }
            ScalarType::U32 => {
                v.scalar_type() != ScalarType::F64 && u32::try_from(v.as_i64()).is_ok()
            }
            ScalarType::F64 => true,
            _ => false,
        };
        if fits {
            let lit = match sty {
                ScalarType::I8 => Value::I8(v.as_i64() as i8),
                ScalarType::I16 => Value::I16(v.as_i64() as i16),
                ScalarType::I32 => Value::I32(v.as_i64() as i32),
                ScalarType::I64 => Value::I64(v.as_i64()),
                ScalarType::U8 => Value::U8(v.as_i64() as u8),
                ScalarType::U16 => Value::U16(v.as_i64() as u16),
                ScalarType::U32 => Value::U32(v.as_i64() as u32),
                ScalarType::F64 => Value::F64(v.as_f64()),
                _ => unreachable!(),
            };
            Ok((s, lit))
        } else {
            let s = self.coerce(s, ty)?;
            Ok((s, Self::coerce_value(&v, ty)?))
        }
    }
}

enum Lowered {
    Src(Src),
    Const(Value),
}

enum FusedShape {
    SubValMul { v: f64, a: Src, b: Src },
    AddValMul { v: f64, a: Src, b: Src },
}

impl ExprProg {
    /// Compile `expr` against the input shape `fields`.
    ///
    /// `vector_size` pre-sizes the register file; `compound` enables the
    /// fused-primitive rewrite.
    pub fn compile(
        expr: &Expr,
        fields: &[OutField],
        vector_size: usize,
        compound: bool,
    ) -> Result<Self, PlanError> {
        let mut low = Lowering {
            fields,
            instrs: Vec::new(),
            reg_types: Vec::new(),
            compound,
        };
        let (res, ty) = low.lower(expr)?;
        let result = match res {
            Lowered::Src(s) => s,
            Lowered::Const(v) => {
                // Pure-literal expression: broadcast per batch.
                let dst = low.alloc(v.scalar_type());
                low.instrs
                    .push((Instr::Fill { v, dst }, "map_fill_const".to_owned()));
                Src::Reg(dst)
            }
        };
        let regs = low
            .reg_types
            .iter()
            .map(|&t| Vector::with_capacity(t, vector_size))
            .collect();
        Ok(ExprProg {
            instrs: low.instrs,
            reg_types: low.reg_types,
            regs,
            result,
            ty,
        })
    }

    /// The result type of the expression.
    pub fn result_type(&self) -> ScalarType {
        self.ty
    }

    /// True if the program is a bare column reference (no instructions).
    pub fn as_col_ref(&self) -> Option<usize> {
        match (self.instrs.is_empty(), self.result) {
            (true, Src::Col(i)) => Some(i as usize),
            _ => None,
        }
    }

    /// Number of lowered instructions (tests / introspection).
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// The primitive signatures this program invokes, in order.
    pub fn signatures(&self) -> impl Iterator<Item = &str> {
        self.instrs.iter().map(|(_, s)| s.as_str())
    }

    /// The lowered instructions with their signatures, for bind-time
    /// verification ([`crate::check`]).
    pub fn instr_list(&self) -> &[(Instr, String)] {
        &self.instrs
    }

    /// Register types of the program's temp file (bind-time
    /// verification resolves `Src::Reg` operand types through this).
    pub fn reg_types(&self) -> &[ScalarType] {
        &self.reg_types
    }

    /// The source of the program's result (column pass-through or a
    /// register), for the abstract interpreter ([`crate::facts`]).
    pub fn result_src(&self) -> Src {
        self.result
    }

    /// Swap the result register's buffer with `buf` (zero-copy handoff
    /// of a computed column into an output batch).
    ///
    /// # Panics
    /// Panics if the program is a bare column reference
    /// ([`Self::as_col_ref`] returns `Some` in that case — share the
    /// input column instead).
    pub fn swap_result(&mut self, buf: &mut Vector) {
        match self.result {
            Src::Reg(i) => std::mem::swap(&mut self.regs[i as usize], buf),
            Src::Col(_) => panic!("swap_result on a column reference"),
        }
    }

    /// Evaluate over a batch under `sel`, returning the result vector.
    ///
    /// Results are positional: only selected positions are computed and
    /// valid. The returned reference borrows either the batch (bare
    /// column refs) or this program's register file.
    pub fn eval<'a>(
        &'a mut self,
        batch: &'a Batch,
        sel: Option<&SelVec>,
        prof: &mut Profiler,
    ) -> &'a Vector {
        let n = batch.len;
        for (instr, sig) in &self.instrs {
            let t0 = prof.start();
            let (tuples, bytes) = exec_instr(instr, batch, &mut self.regs, n, sel);
            prof.record_prim(sig, t0, tuples, bytes);
        }
        match self.result {
            Src::Col(i) => &batch.columns[i as usize],
            Src::Reg(i) => &self.regs[i as usize],
        }
    }
}

/// Resolve a source to a vector, given the register prefix below `dst`.
fn src_vec<'a>(batch: &'a Batch, head: &'a [Vector], s: Src) -> &'a Vector {
    match s {
        Src::Col(i) => &batch.columns[i as usize],
        Src::Reg(i) => &head[i as usize],
    }
}

/// Execute one instruction; returns (tuples, bytes touched) for tracing.
#[allow(clippy::needless_range_loop)] // positional writes under a selection
fn exec_instr(
    instr: &Instr,
    batch: &Batch,
    regs: &mut [Vector],
    n: usize,
    sel: Option<&SelVec>,
) -> (usize, usize) {
    let live = sel.map_or(n, |s| s.len());
    macro_rules! with_dst {
        ($dst:expr, |$d:ident, $head:ident| $body:expr) => {{
            let (head, tail) = regs.split_at_mut(*$dst as usize);
            let $d = &mut tail[0];
            $d.resize_zeroed(n);
            let $head = &*head;
            $body
        }};
    }
    match instr {
        Instr::ArithCC { op, ty, l, r, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let rv = src_vec(batch, head, *r);
            let bytes = 3 * n * ty.width();
            match ty {
                ScalarType::F64 => arith_cc_f64(*op, d.as_f64_mut(), lv.as_f64(), rv.as_f64(), sel),
                ScalarType::I64 => arith_cc_i64(*op, d.as_i64_mut(), lv.as_i64(), rv.as_i64(), sel),
                ScalarType::I32 => arith_cc_i32(*op, d.as_i32_mut(), lv.as_i32(), rv.as_i32(), sel),
                other => panic!("arith on {other}"),
            }
            (live, bytes)
        }),
        Instr::ArithCV { op, ty, l, v, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let bytes = 2 * n * ty.width();
            match ty {
                ScalarType::F64 => arith_cv_f64(*op, d.as_f64_mut(), lv.as_f64(), v.as_f64(), sel),
                ScalarType::I64 => arith_cv_i64(*op, d.as_i64_mut(), lv.as_i64(), v.as_i64(), sel),
                ScalarType::I32 => {
                    arith_cv_i32(*op, d.as_i32_mut(), lv.as_i32(), v.as_i64() as i32, sel)
                }
                other => panic!("arith on {other}"),
            }
            (live, bytes)
        }),
        Instr::ArithVC { op, ty, v, r, dst } => with_dst!(dst, |d, head| {
            let rv = src_vec(batch, head, *r);
            let bytes = 2 * n * ty.width();
            match ty {
                ScalarType::F64 => arith_vc_f64(*op, d.as_f64_mut(), v.as_f64(), rv.as_f64(), sel),
                ScalarType::I64 => arith_vc_i64(*op, d.as_i64_mut(), v.as_i64(), rv.as_i64(), sel),
                ScalarType::I32 => {
                    arith_vc_i32(*op, d.as_i32_mut(), v.as_i64() as i32, rv.as_i32(), sel)
                }
                other => panic!("arith on {other}"),
            }
            (live, bytes)
        }),
        Instr::CmpCC { op, ty, l, r, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let rv = src_vec(batch, head, *r);
            let bytes = 2 * n * ty.width() + n;
            let o = d.as_bool_mut();
            match ty {
                ScalarType::F64 => map::map_cmp_col_col(o, lv.as_f64(), rv.as_f64(), *op, sel),
                ScalarType::I64 => map::map_cmp_col_col(o, lv.as_i64(), rv.as_i64(), *op, sel),
                ScalarType::I32 => map::map_cmp_col_col(o, lv.as_i32(), rv.as_i32(), *op, sel),
                other => panic!("cmp on {other}"),
            }
            (live, bytes)
        }),
        Instr::CmpCV { op, ty, l, v, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let bytes = n * ty.width() + n;
            let o = d.as_bool_mut();
            match ty {
                ScalarType::F64 => map::map_cmp_col_val(o, lv.as_f64(), v.as_f64(), *op, sel),
                ScalarType::I64 => map::map_cmp_col_val(o, lv.as_i64(), v.as_i64(), *op, sel),
                ScalarType::I32 => {
                    map::map_cmp_col_val(o, lv.as_i32(), v.as_i64() as i32, *op, sel)
                }
                ScalarType::I16 => {
                    map::map_cmp_col_val(o, lv.as_i16(), v.as_i64() as i16, *op, sel)
                }
                ScalarType::I8 => map::map_cmp_col_val(o, lv.as_i8(), v.as_i64() as i8, *op, sel),
                ScalarType::U8 => map::map_cmp_col_val(o, lv.as_u8(), v.as_i64() as u8, *op, sel),
                ScalarType::U16 => {
                    map::map_cmp_col_val(o, lv.as_u16(), v.as_i64() as u16, *op, sel)
                }
                ScalarType::U32 => {
                    map::map_cmp_col_val(o, lv.as_u32(), v.as_i64() as u32, *op, sel)
                }
                other => panic!("cmp on {other}"),
            }
            (live, bytes)
        }),
        Instr::StrEqCV { l, v, negate, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l).as_str();
            let o = d.as_bool_mut();
            match sel {
                None => {
                    for i in 0..n {
                        o[i] = (lv.get(i) == v.as_str()) != *negate;
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        o[i] = (lv.get(i) == v.as_str()) != *negate;
                    }
                }
            }
            (live, n * 16 + n)
        }),
        Instr::And { l, r, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let rv = src_vec(batch, head, *r);
            map::map_and(d.as_bool_mut(), lv.as_bool(), rv.as_bool(), sel);
            (live, 3 * n)
        }),
        Instr::Or { l, r, dst } => with_dst!(dst, |d, head| {
            let lv = src_vec(batch, head, *l);
            let rv = src_vec(batch, head, *r);
            map::map_or(d.as_bool_mut(), lv.as_bool(), rv.as_bool(), sel);
            (live, 3 * n)
        }),
        Instr::Not { s, dst } => with_dst!(dst, |d, head| {
            let sv = src_vec(batch, head, *s);
            map::map_not(d.as_bool_mut(), sv.as_bool(), sel);
            (live, 2 * n)
        }),
        Instr::Cast { from, to, s, dst } => with_dst!(dst, |d, head| {
            let sv = src_vec(batch, head, *s);
            let bytes = n * (from.width() + to.width());
            cast_vec(*from, *to, sv, d, sel);
            (live, bytes)
        }),
        Instr::Fill { v, dst } => with_dst!(dst, |d, _head| {
            fill_vec(d, v, n);
            (n, n * v.scalar_type().width())
        }),
        Instr::FusedSubValMul { v, a, b, dst } => with_dst!(dst, |d, head| {
            let av = src_vec(batch, head, *a);
            let bv = src_vec(batch, head, *b);
            x100_vector::compound::map_fused_sub_f64_val_f64_col_mul_f64_col(
                d.as_f64_mut(),
                *v,
                av.as_f64(),
                bv.as_f64(),
                sel,
            );
            (live, 3 * n * 8)
        }),
        Instr::FusedAddValMul { v, a, b, dst } => with_dst!(dst, |d, head| {
            let av = src_vec(batch, head, *a);
            let bv = src_vec(batch, head, *b);
            x100_vector::compound::map_fused_add_f64_val_f64_col_mul_f64_col(
                d.as_f64_mut(),
                *v,
                av.as_f64(),
                bv.as_f64(),
                sel,
            );
            (live, 3 * n * 8)
        }),
        Instr::YearOf { s, dst } => with_dst!(dst, |d, head| {
            let sv = src_vec(batch, head, *s);
            map::map_year_i32_col(d.as_i32_mut(), sv.as_i32(), sel);
            (live, 2 * n * 4)
        }),
        Instr::StrContainsCV { s, needle, dst } => with_dst!(dst, |d, head| {
            let sv = src_vec(batch, head, *s).as_str();
            let o = d.as_bool_mut();
            match sel {
                None => {
                    for i in 0..n {
                        o[i] = sv.get(i).contains(needle.as_str());
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        o[i] = sv.get(i).contains(needle.as_str());
                    }
                }
            }
            (live, n * 16 + n)
        }),
    }
}

macro_rules! arith_impl {
    ($cc:ident, $cv:ident, $vc:ident, $ty:ty, $div:expr) => {
        fn $cc(op: ArithOp, d: &mut [$ty], l: &[$ty], r: &[$ty], sel: Option<&SelVec>) {
            match op {
                ArithOp::Add => map::map2_col_col(d, l, r, sel, |a, b| add_op(a, b)),
                ArithOp::Sub => map::map2_col_col(d, l, r, sel, |a, b| sub_op(a, b)),
                ArithOp::Mul => map::map2_col_col(d, l, r, sel, |a, b| mul_op(a, b)),
                ArithOp::Div => {
                    let f: fn($ty, $ty) -> $ty = $div;
                    map::map2_col_col(d, l, r, sel, f)
                }
            }
        }
        fn $cv(op: ArithOp, d: &mut [$ty], l: &[$ty], v: $ty, sel: Option<&SelVec>) {
            match op {
                ArithOp::Add => map::map2_col_val(d, l, v, sel, |a, b| add_op(a, b)),
                ArithOp::Sub => map::map2_col_val(d, l, v, sel, |a, b| sub_op(a, b)),
                ArithOp::Mul => map::map2_col_val(d, l, v, sel, |a, b| mul_op(a, b)),
                ArithOp::Div => {
                    let f: fn($ty, $ty) -> $ty = $div;
                    map::map2_col_val(d, l, v, sel, f)
                }
            }
        }
        fn $vc(op: ArithOp, d: &mut [$ty], v: $ty, r: &[$ty], sel: Option<&SelVec>) {
            match op {
                ArithOp::Add => map::map2_val_col(d, v, r, sel, |a, b| add_op(a, b)),
                ArithOp::Sub => map::map2_val_col(d, v, r, sel, |a, b| sub_op(a, b)),
                ArithOp::Mul => map::map2_val_col(d, v, r, sel, |a, b| mul_op(a, b)),
                ArithOp::Div => {
                    let f: fn($ty, $ty) -> $ty = $div;
                    map::map2_val_col(d, v, r, sel, f)
                }
            }
        }
    };
}

trait ArithScalar: Copy {
    fn add_s(self, o: Self) -> Self;
    fn sub_s(self, o: Self) -> Self;
    fn mul_s(self, o: Self) -> Self;
}

impl ArithScalar for f64 {
    fn add_s(self, o: Self) -> Self {
        self + o
    }
    fn sub_s(self, o: Self) -> Self {
        self - o
    }
    fn mul_s(self, o: Self) -> Self {
        self * o
    }
}

impl ArithScalar for i64 {
    fn add_s(self, o: Self) -> Self {
        self.wrapping_add(o)
    }
    fn sub_s(self, o: Self) -> Self {
        self.wrapping_sub(o)
    }
    fn mul_s(self, o: Self) -> Self {
        self.wrapping_mul(o)
    }
}

impl ArithScalar for i32 {
    fn add_s(self, o: Self) -> Self {
        self.wrapping_add(o)
    }
    fn sub_s(self, o: Self) -> Self {
        self.wrapping_sub(o)
    }
    fn mul_s(self, o: Self) -> Self {
        self.wrapping_mul(o)
    }
}

#[inline(always)]
fn add_op<T: ArithScalar>(a: T, b: T) -> T {
    a.add_s(b)
}
#[inline(always)]
fn sub_op<T: ArithScalar>(a: T, b: T) -> T {
    a.sub_s(b)
}
#[inline(always)]
fn mul_op<T: ArithScalar>(a: T, b: T) -> T {
    a.mul_s(b)
}

arith_impl!(arith_cc_f64, arith_cv_f64, arith_vc_f64, f64, |a, b| a / b);
arith_impl!(
    arith_cc_i64,
    arith_cv_i64,
    arith_vc_i64,
    i64,
    |_a, _b| panic!("integer division lowers to f64")
);
arith_impl!(
    arith_cc_i32,
    arith_cv_i32,
    arith_vc_i32,
    i32,
    |_a, _b| panic!("integer division lowers to f64")
);

fn cast_vec(from: ScalarType, to: ScalarType, s: &Vector, d: &mut Vector, sel: Option<&SelVec>) {
    use x100_vector::map::map1;
    match (from, to) {
        (ScalarType::I8, ScalarType::I32) => map1(d.as_i32_mut(), s.as_i8(), sel, |x| x as i32),
        (ScalarType::I16, ScalarType::I32) => map1(d.as_i32_mut(), s.as_i16(), sel, |x| x as i32),
        (ScalarType::U8, ScalarType::I32) => map1(d.as_i32_mut(), s.as_u8(), sel, |x| x as i32),
        (ScalarType::U16, ScalarType::I32) => map1(d.as_i32_mut(), s.as_u16(), sel, |x| x as i32),
        (ScalarType::I8, ScalarType::I64) => map1(d.as_i64_mut(), s.as_i8(), sel, |x| x as i64),
        (ScalarType::I16, ScalarType::I64) => map1(d.as_i64_mut(), s.as_i16(), sel, |x| x as i64),
        (ScalarType::I32, ScalarType::I64) => map1(d.as_i64_mut(), s.as_i32(), sel, |x| x as i64),
        (ScalarType::U8, ScalarType::I64) => map1(d.as_i64_mut(), s.as_u8(), sel, |x| x as i64),
        (ScalarType::U16, ScalarType::I64) => map1(d.as_i64_mut(), s.as_u16(), sel, |x| x as i64),
        (ScalarType::U32, ScalarType::I64) => map1(d.as_i64_mut(), s.as_u32(), sel, |x| x as i64),
        (ScalarType::I8, ScalarType::F64) => map1(d.as_f64_mut(), s.as_i8(), sel, |x| x as f64),
        (ScalarType::I16, ScalarType::F64) => map1(d.as_f64_mut(), s.as_i16(), sel, |x| x as f64),
        (ScalarType::I32, ScalarType::F64) => map1(d.as_f64_mut(), s.as_i32(), sel, |x| x as f64),
        (ScalarType::I64, ScalarType::F64) => map1(d.as_f64_mut(), s.as_i64(), sel, |x| x as f64),
        (ScalarType::U8, ScalarType::F64) => map1(d.as_f64_mut(), s.as_u8(), sel, |x| x as f64),
        (ScalarType::U16, ScalarType::F64) => map1(d.as_f64_mut(), s.as_u16(), sel, |x| x as f64),
        (ScalarType::U32, ScalarType::F64) => map1(d.as_f64_mut(), s.as_u32(), sel, |x| x as f64),
        (ScalarType::U8, ScalarType::U32) => map1(d.as_u32_mut(), s.as_u8(), sel, |x| x as u32),
        (ScalarType::U16, ScalarType::U32) => map1(d.as_u32_mut(), s.as_u16(), sel, |x| x as u32),
        (ScalarType::Bool, ScalarType::I64) => map1(d.as_i64_mut(), s.as_bool(), sel, |x| x as i64),
        (ScalarType::Bool, ScalarType::F64) => {
            map1(d.as_f64_mut(), s.as_bool(), sel, |x| x as u8 as f64)
        }
        (f, t) => panic!("unsupported cast {f} -> {t}"),
    }
}

fn fill_vec(d: &mut Vector, v: &Value, n: usize) {
    d.clear();
    match (d, v) {
        (Vector::F64(b), v) => b.resize(n, v.as_f64()),
        (Vector::I64(b), v) => b.resize(n, v.as_i64()),
        (Vector::I32(b), v) => b.resize(n, v.as_i64() as i32),
        (Vector::Bool(b), Value::Bool(x)) => b.resize(n, *x),
        (Vector::Str(b), Value::Str(x)) => {
            for _ in 0..n {
                b.push(x);
            }
        }
        (d, v) => panic!(
            "fill mismatch: {:?} <- {:?}",
            d.scalar_type(),
            v.scalar_type()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use std::rc::Rc;

    fn fields() -> Vec<OutField> {
        vec![
            OutField::new("a", ScalarType::F64),
            OutField::new("b", ScalarType::F64),
            OutField::new("n", ScalarType::I32),
            OutField::new("s", ScalarType::Str),
            OutField::new("code", ScalarType::U8),
        ]
    }

    fn batch() -> Batch {
        let mut b = Batch::new();
        b.columns
            .push(Rc::new(Vector::F64(vec![1.0, 2.0, 3.0, 4.0])));
        b.columns
            .push(Rc::new(Vector::F64(vec![10.0, 20.0, 30.0, 40.0])));
        b.columns.push(Rc::new(Vector::I32(vec![5, 6, 7, 8])));
        b.columns.push(Rc::new(Vector::Str(
            ["x", "y", "x", "z"].into_iter().collect(),
        )));
        b.columns.push(Rc::new(Vector::U8(vec![0, 1, 2, 3])));
        b.len = 4;
        b
    }

    fn run(e: &Expr, compound: bool) -> Vector {
        let f = fields();
        let mut prog = ExprProg::compile(e, &f, 4, compound).expect("compiles");
        let b = batch();
        let mut prof = Profiler::new(false);
        prog.eval(&b, None, &mut prof).clone()
    }

    #[test]
    fn col_ref_is_zero_instr() {
        let f = fields();
        let prog = ExprProg::compile(&col("a"), &f, 4, true).expect("compiles");
        assert_eq!(prog.num_instrs(), 0);
        assert_eq!(prog.as_col_ref(), Some(0));
        assert_eq!(prog.result_type(), ScalarType::F64);
    }

    #[test]
    fn arithmetic_eval() {
        let v = run(&add(col("a"), col("b")), true);
        assert_eq!(v.as_f64(), &[11.0, 22.0, 33.0, 44.0]);
        let v = run(&mul(col("a"), lit_f64(2.0)), true);
        assert_eq!(v.as_f64(), &[2.0, 4.0, 6.0, 8.0]);
        let v = run(&sub(lit_f64(1.0), col("a")), true);
        assert_eq!(v.as_f64(), &[0.0, -1.0, -2.0, -3.0]);
    }

    #[test]
    fn mixed_type_promotion() {
        // i32 column + f64 literal promotes to f64 via an inserted cast.
        let e = add(col("n"), lit_f64(0.5));
        let f = fields();
        let prog = ExprProg::compile(&e, &f, 4, true).expect("compiles");
        assert_eq!(prog.result_type(), ScalarType::F64);
        let sigs: Vec<&str> = prog.signatures().collect();
        assert!(sigs.contains(&"map_cast_i32_f64_col"), "{sigs:?}");
        let v = run(&e, true);
        assert_eq!(v.as_f64(), &[5.5, 6.5, 7.5, 8.5]);
    }

    #[test]
    fn constant_folding() {
        let e = mul(add(lit_f64(1.0), lit_f64(2.0)), col("a"));
        let f = fields();
        let prog = ExprProg::compile(&e, &f, 4, true).expect("compiles");
        // One instruction: 3.0 * a. No instruction for 1+2.
        assert_eq!(prog.num_instrs(), 1);
        let v = run(&e, true);
        assert_eq!(v.as_f64(), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn compound_fusion_fires() {
        // Q1's discountprice shape: (1.0 - a) * b.
        let e = mul(sub(lit_f64(1.0), col("a")), col("b"));
        let f = fields();
        let fused = ExprProg::compile(&e, &f, 4, true).expect("compiles");
        assert_eq!(fused.num_instrs(), 1);
        assert_eq!(
            fused.signatures().next(),
            Some("map_fused_sub_f64_val_f64_col_mul_f64_col")
        );
        let unfused = ExprProg::compile(&e, &f, 4, false).expect("compiles");
        assert_eq!(unfused.num_instrs(), 2);
        // Both produce identical results.
        let b = batch();
        let mut p = Profiler::new(false);
        let mut fused = fused;
        let mut unfused = unfused;
        let rv1 = fused.eval(&b, None, &mut p).clone();
        let rv2 = unfused.eval(&b, None, &mut p).clone();
        assert_eq!(rv1.as_f64(), rv2.as_f64());
        assert_eq!(rv1.as_f64(), &[0.0, -20.0, -60.0, -120.0]);
    }

    #[test]
    fn fusion_with_flipped_operands() {
        // b * (1.0 + a) also fuses.
        let e = mul(col("b"), add(lit_f64(1.0), col("a")));
        let f = fields();
        let prog = ExprProg::compile(&e, &f, 4, true).expect("compiles");
        assert_eq!(prog.num_instrs(), 1);
        let v = run(&e, true);
        assert_eq!(v.as_f64(), &[20.0, 60.0, 120.0, 200.0]);
    }

    #[test]
    fn comparisons_and_logic() {
        let v = run(&lt(col("a"), lit_f64(2.5)), true);
        assert_eq!(v.as_bool(), &[true, true, false, false]);
        let v = run(
            &and(gt(col("a"), lit_f64(1.5)), lt(col("b"), lit_f64(35.0))),
            true,
        );
        assert_eq!(v.as_bool(), &[false, true, true, false]);
        let v = run(&not(eq(col("s"), lit_str("x"))), true);
        assert_eq!(v.as_bool(), &[false, true, false, true]);
    }

    #[test]
    fn narrow_literal_comparison_keeps_code_type() {
        // u8 enum codes compared against a small literal: no cast emitted.
        let e = le(col("code"), lit_i64(1));
        let f = fields();
        let prog = ExprProg::compile(&e, &f, 4, true).expect("compiles");
        let sigs: Vec<&str> = prog.signatures().collect();
        assert_eq!(sigs, vec!["map_le_u8_col_val"]);
        let v = run(&e, true);
        assert_eq!(v.as_bool(), &[true, true, false, false]);
    }

    #[test]
    fn flipped_constant_comparison() {
        // 2.5 > a  ≡  a < 2.5
        let v = run(&gt(lit_f64(2.5), col("a")), true);
        assert_eq!(v.as_bool(), &[true, true, false, false]);
    }

    #[test]
    fn selection_vector_limits_evaluation() {
        let f = fields();
        let mut prog = ExprProg::compile(&div(col("b"), col("a")), &f, 4, true).expect("compiles");
        let b = batch();
        let sel = SelVec::from_positions(vec![1, 3]);
        let mut prof = Profiler::new(false);
        let v = prog.eval(&b, Some(&sel), &mut prof);
        assert_eq!(v.as_f64()[1], 10.0);
        assert_eq!(v.as_f64()[3], 10.0);
    }

    #[test]
    fn unknown_column_errors() {
        let f = fields();
        let err = ExprProg::compile(&col("zz"), &f, 4, true).expect_err("must fail");
        assert_eq!(err, PlanError::UnknownColumn("zz".into()));
    }

    #[test]
    fn string_range_comparison_rejected() {
        let f = fields();
        let err =
            ExprProg::compile(&lt(col("s"), lit_str("m")), &f, 4, true).expect_err("must fail");
        assert!(matches!(err, PlanError::TypeMismatch(_)));
    }

    #[test]
    fn profiling_records_signatures() {
        let f = fields();
        let mut prog = ExprProg::compile(&mul(sub(lit_f64(1.0), col("a")), col("b")), &f, 4, true)
            .expect("compiles");
        let b = batch();
        let mut prof = Profiler::new(true);
        prog.eval(&b, None, &mut prof);
        let st = prof
            .primitive("map_fused_sub_f64_val_f64_col_mul_f64_col")
            .expect("traced");
        assert_eq!(st.calls, 1);
        assert_eq!(st.tuples, 4);
    }

    #[test]
    fn literal_only_expression_broadcasts() {
        let v = run(&lit_f64(7.0), true);
        assert_eq!(v.as_f64(), &[7.0; 4]);
    }
}
