//! Joins: `CartProd` and the radix-partitioned hash join.
//!
//! "X100 currently only supports left-deep joins. The default physical
//! implementation is a CartProd operator with a Select on top (i.e.
//! nested-loop join)" (§4.1.2). The plan binder composes exactly that
//! for `Join(Dataflow, Table, Exp<bool>, …)`; when a foreign-key join
//! index exists, it uses `Fetch1Join` instead (see
//! [`crate::ops::Fetch1JoinOp`]).
//!
//! [`HashJoinOp`] is our extension beyond the paper's operator list
//! (the paper's TPC-H setup avoids it via join indices): a build+probe
//! equi-join, with inner, left-outer, left-semi and left-anti modes —
//! semi/anti output *selection vectors* over the probe dataflow, so they
//! are zero-copy like `Select`.
//!
//! The build side is **radix-partitioned** on the top bits of the key
//! hash (paper §3: the hot loop must stay cache-resident): instead of
//! one monolithic bucket array that thrashes L2 for large build sides,
//! rows are scattered into `2^B` partition ranges, each with its own
//! bucket array sized under [`crate::ExecOptions::join_cache_budget`].
//! Partition bucket chains build in parallel across worker threads. A
//! blocked Bloom filter over all build hashes is probed *before* the
//! hash table so probe tuples with no possible match skip the chain
//! walk entirely. The finished [`JoinBuildTable`] is immutable and
//! `Send + Sync`: the morsel-parallel driver builds it once and lets
//! every worker probe it through [`HashJoinProbeOp`] (build once,
//! probe many).

use super::aggr::hash_keys;
use crate::batch::{Batch, OutField, SelPool, VecPool};
use crate::compile::ExprProg;
use crate::expr::Expr;
use crate::govern::{panic_cause, MemTracker, QueryContext};
use crate::ops::{eq_at, push_from, Operator};
use crate::profile::Profiler;
use crate::session::ExecOptions;
use crate::PlanError;
use std::sync::Arc;
use x100_storage::Table;
use x100_vector::partition::{
    self, bloom_insert_u64_col, bloom_test_u64_col, gather_rows, map_radix_partition_u64_col,
    map_scatter_u32_col_u32_col, offsets_from_histogram, radix_histogram_u32_col,
    radix_scatter_positions, BlockedBloom, MAX_RADIX_BITS,
};
use x100_vector::{ScalarType, Vector};

/// Join semantics for [`HashJoinOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit probe ⨝ build matches (cardinality-changing).
    Inner,
    /// Like `Inner`, but probe rows without a match are emitted once
    /// with default-valued payload (0 / empty string). The engine has
    /// no NULLs; Q13-style count-including-zero queries rely on the
    /// zero default.
    LeftOuter,
    /// Emit probe rows with ≥1 match (selection-vector only).
    LeftSemi,
    /// Emit probe rows with no match (selection-vector only).
    LeftAnti,
}

/// `CartProd(Dataflow, Table, List<Column>)` — cross product with a
/// (small) materialized table. `Join` = `CartProd` + `Select`.
pub struct CartProdOp {
    child: Box<dyn Operator>,
    table: Arc<Table>,
    fetch_cols: Vec<usize>,
    fields: Vec<OutField>,
    child_arity: usize,
    pools: Vec<VecPool>,
    // Expansion state.
    cur_cols: Vec<std::rc::Rc<Vector>>,
    cur_live: Vec<u32>,
    cpos_idx: usize,
    trow: u32,
    out: Batch,
    #[allow(dead_code)]
    vector_size: usize,
    done: bool,
    ctx: Arc<QueryContext>,
}

impl CartProdOp {
    /// Bind a cross product fetching `fetch` columns of `table`.
    pub fn new(
        child: Box<dyn Operator>,
        table: Arc<Table>,
        fetch: &[(String, String)],
        vector_size: usize,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        if !table.deletes().is_empty() {
            return Err(PlanError::Invalid(
                "CartProd over a table with pending deletes; reorganize first".to_owned(),
            ));
        }
        let child_arity = child.fields().len();
        let mut fields: Vec<OutField> = child.fields().to_vec();
        let mut pools: Vec<VecPool> = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        let mut fetch_cols = Vec::new();
        for (src, alias) in fetch {
            let ci = table
                .column_index(src)
                .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", table.name(), src)))?;
            let ty = table.column(ci).field().logical;
            fields.push(OutField::new(alias.clone(), ty));
            pools.push(VecPool::new(ty, vector_size));
            fetch_cols.push(ci);
        }
        Ok(CartProdOp {
            child,
            table,
            fetch_cols,
            fields,
            child_arity,
            pools,
            cur_cols: Vec::new(),
            cur_live: Vec::new(),
            cpos_idx: 0,
            trow: 0,
            out: Batch::new(),
            vector_size,
            done: false,
            ctx,
        })
    }

    fn refill(&mut self, prof: &mut Profiler) -> Result<bool, PlanError> {
        loop {
            let Some(batch) = self.child.next(prof)? else {
                return Ok(false);
            };
            self.cur_live = match batch.sel.as_deref() {
                None => (0..batch.len as u32).collect(),
                Some(s) => s.positions().to_vec(),
            };
            self.cur_cols = batch.columns.clone();
            self.cpos_idx = 0;
            self.trow = 0;
            if !self.cur_live.is_empty() {
                return Ok(true);
            }
        }
    }
}

impl Operator for CartProdOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if self.done {
            return Ok(None);
        }
        self.ctx.check()?;
        let nrows = self.table.total_rows() as u32;
        if nrows == 0 {
            self.done = true;
            return Ok(None);
        }
        if self.cpos_idx >= self.cur_live.len() && !self.refill(prof)? {
            self.done = true;
            return Ok(None);
        }
        let t_op = prof.start();
        // Gather up to vector_size (child pos, table row) pairs.
        let mut cpos: Vec<u32> = Vec::with_capacity(self.vector_size);
        let mut trows: Vec<u32> = Vec::with_capacity(self.vector_size);
        while cpos.len() < self.vector_size && self.cpos_idx < self.cur_live.len() {
            cpos.push(self.cur_live[self.cpos_idx]);
            trows.push(self.trow);
            self.trow += 1;
            if self.trow == nrows {
                self.trow = 0;
                self.cpos_idx += 1;
            }
        }
        let n = cpos.len();
        self.out.reset();
        self.out.len = n;
        for (k, colv) in self.cur_cols.iter().enumerate() {
            let mut v = self.pools[k].writable();
            for &cp in &cpos {
                push_from(&mut v, colv, cp as usize);
            }
            self.pools[k].publish(v, &mut self.out);
        }
        for (j, &ci) in self.fetch_cols.iter().enumerate() {
            let mut v = self.pools[self.child_arity + j].writable();
            self.table.gather_logical(ci, &trows, &mut v);
            self.pools[self.child_arity + j].publish(v, &mut self.out);
        }
        prof.record_op("CartProd", t_op, n);
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        self.cur_cols.clear();
        self.cur_live.clear();
        self.cpos_idx = 0;
        self.trow = 0;
        self.done = false;
    }
}

/// Build-phase configuration, extracted from [`ExecOptions`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct JoinBuildConfig {
    /// Explicit partition bits (`Some(0)` = monolithic), or `None` to
    /// derive from the cache budget.
    pub partition_bits: Option<u32>,
    /// Per-partition byte budget when deriving the bit count.
    pub cache_budget: usize,
    /// Worker threads for the per-partition bucket-chain build.
    pub threads: usize,
    /// Bind-time estimate of probe-side rows (from table cardinalities;
    /// `None` when the probe shape defies estimation). A probe far
    /// larger than the build makes every Bloom bit cheaper per lookup,
    /// so the filter sizing steps up a tier.
    pub probe_rows_hint: Option<usize>,
}

impl JoinBuildConfig {
    pub(crate) fn from_opts(opts: &ExecOptions) -> Self {
        JoinBuildConfig {
            partition_bits: opts.join_partition_bits,
            cache_budget: opts.join_cache_budget.max(1),
            threads: opts.threads.max(1),
            probe_rows_hint: None,
        }
    }
}

/// One radix partition's bucket array (heads index *global* rows + 1;
/// `0` = empty).
#[derive(Debug, Default)]
struct PartBuckets {
    buckets: Vec<u32>,
    mask: u64,
}

/// The immutable, partition-ordered build side of a hash join.
///
/// Rows are stored in partition order: partition `p` owns global rows
/// `offsets[p]..offsets[p+1]` of `keys` / `payload` / `hashes`. Bucket
/// heads and chain links hold *global* row ids, so match emission needs
/// no partition-local translation. `Send + Sync`: after `build` it is
/// only ever read, so parallel probe workers share one `Arc` of it.
pub struct JoinBuildTable {
    key_types: Vec<ScalarType>,
    payload_fields: Vec<OutField>,
    keys: Vec<Vector>,
    payload: Vec<Vector>,
    hashes: Vec<u64>,
    /// `chain[r]` = next global row + 1 within `r`'s partition (0 = end).
    chain: Vec<u32>,
    /// Partition row offsets (`len == nparts + 1`).
    offsets: Vec<u32>,
    parts: Vec<PartBuckets>,
    bloom: BlockedBloom,
    bits: u32,
    n_build: usize,
    /// Held for its `Drop`: releases the build side's budget charge
    /// when the table itself goes away.
    #[allow(dead_code)]
    mem: MemTracker,
}

impl JoinBuildTable {
    /// Key result types, for probe-side validation.
    pub(crate) fn key_types(&self) -> &[ScalarType] {
        &self.key_types
    }

    /// Aliased payload output fields.
    pub(crate) fn payload_fields(&self) -> &[OutField] {
        &self.payload_fields
    }

    /// Number of build rows.
    pub fn n_build(&self) -> usize {
        self.n_build
    }

    /// Radix partition bits in effect (0 = monolithic).
    pub fn partition_bits(&self) -> u32 {
        self.bits
    }

    /// Partition boundaries in the partition-ordered store: partition
    /// `p` owns rows `offsets[p]..offsets[p+1]`. `[0, n]` when
    /// monolithic.
    pub fn partition_offsets(&self) -> &[u32] {
        &self.offsets
    }

    #[inline(always)]
    fn first_slot(&self, h: u64) -> u32 {
        let p = if self.bits == 0 {
            0
        } else {
            (h >> (64 - self.bits)) as usize
        };
        let pt = &self.parts[p];
        pt.buckets[(h & pt.mask) as usize]
    }

    /// Drain `build`, hash its keys, radix-partition the rows, and build
    /// per-partition bucket chains (in parallel when `cfg.threads > 1`).
    fn build(
        build: &mut dyn Operator,
        build_keys: &mut [ExprProg],
        payload_cols: &[usize],
        payload_fields: Vec<OutField>,
        cfg: &JoinBuildConfig,
        ctx: &Arc<QueryContext>,
        prof: &mut Profiler,
    ) -> Result<JoinBuildTable, PlanError> {
        let mut mem = MemTracker::new(ctx.clone(), "hash-join build");
        let key_types: Vec<ScalarType> = build_keys.iter().map(|p| p.result_type()).collect();
        let mut keys: Vec<Vector> = key_types
            .iter()
            .map(|&ty| Vector::with_capacity(ty, 16))
            .collect();
        let mut payload: Vec<Vector> = payload_fields
            .iter()
            .map(|f| Vector::with_capacity(f.ty, 16))
            .collect();
        let mut hashes: Vec<u64> = Vec::new();
        let mut hash_buf: Vec<u64> = Vec::new();
        while let Some(batch) = build.next(prof)? {
            ctx.check()?;
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let key_vecs: Vec<&Vector> = build_keys
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            hash_buf.resize(n, 0);
            hash_keys(&key_vecs, &mut hash_buf, n, sel, prof);
            let mut insert = |i: usize| {
                for (ks, kv) in keys.iter_mut().zip(key_vecs.iter()) {
                    push_from(ks, kv, i);
                }
                for (bs, &ci) in payload.iter_mut().zip(payload_cols.iter()) {
                    push_from(bs, &batch.columns[ci], i);
                }
                hashes.push(hash_buf[i]);
            };
            match sel {
                None => {
                    for i in 0..n {
                        insert(i);
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        insert(i);
                    }
                }
            }
            let col_bytes: usize = keys
                .iter()
                .chain(payload.iter())
                .map(|v| v.byte_size())
                .sum();
            mem.ensure(col_bytes + hashes.len() * 8)?;
        }
        let n = hashes.len();

        // Blocked Bloom filter over every build hash, sized adaptively
        // from the observed build cardinality: small builds afford a
        // generous 16 bits/key (false-positive rate well under 1%),
        // huge builds drop to 8 bits/key to stay cache-friendly. A
        // negative probe test later proves absence, skipping the chain
        // walk.
        let mut bits_per_key: usize = if n <= 1 << 16 {
            16
        } else if n <= 1 << 20 {
            12
        } else {
            8
        };
        // Probe/build ratio feedback: when the bind-time estimate says
        // the probe side outnumbers the build 32:1 or more, each filter
        // bit is amortized over many lookups — one extra tier of bits
        // per key buys a lower false-positive rate for the whole stream.
        if let Some(probe) = cfg.probe_rows_hint {
            if n > 0 && probe / n >= 32 {
                bits_per_key = (bits_per_key + 4).min(16);
            }
        }
        let mut bloom = BlockedBloom::with_bits_per_key(n, bits_per_key);
        prof.max_counter("join_bloom_bits_per_key", bits_per_key as u64);
        let t0 = prof.start();
        bloom_insert_u64_col(&mut bloom, &hashes, None);
        prof.record_prim("bloom_insert_u64_col", t0, n, n * 8 + bloom.byte_size());

        let bits = match cfg.partition_bits {
            Some(b) => b.min(MAX_RADIX_BITS),
            None => derive_partition_bits(&keys, &payload, n, cfg.cache_budget),
        };

        let (keys, payload, hashes, offsets) = if bits == 0 {
            (keys, payload, hashes, vec![0, n as u32])
        } else {
            // Radix scatter: partition ids from top hash bits, histogram,
            // stable scatter positions, then reorder every column (and
            // the hashes) into partition order with one gather each.
            let nparts = 1usize << bits;
            let mut parts_ids = vec![0u32; n];
            let t0 = prof.start();
            map_radix_partition_u64_col(&mut parts_ids, &hashes, bits, None);
            prof.record_prim("map_radix_partition_u64_col", t0, n, n * 12);
            let mut hist = vec![0u32; nparts];
            radix_histogram_u32_col(&mut hist, &parts_ids, n, None);
            let offsets = offsets_from_histogram(&hist);
            let mut pos = vec![0u32; n];
            let t0 = prof.start();
            radix_scatter_positions(&mut pos, &parts_ids, &offsets, n, None);
            prof.record_prim("radix_scatter_positions", t0, n, n * 8);
            let rowids: Vec<u32> = (0..n as u32).collect();
            let mut order = vec![0u32; n];
            let t0 = prof.start();
            map_scatter_u32_col_u32_col(&mut order, &pos, &rowids, None);
            prof.record_prim("map_scatter_u32_col_u32_col", t0, n, n * 8);
            let reorder = |src: Vec<Vector>, prof: &mut Profiler| -> Vec<Vector> {
                src.into_iter()
                    .map(|v| {
                        let mut dst = Vector::with_capacity(v.scalar_type(), n);
                        let t0 = prof.start();
                        gather_rows(&mut dst, &v, &order);
                        prof.record_prim(
                            &format!("map_fetch_u32_col_{}_col", v.scalar_type()),
                            t0,
                            n,
                            v.byte_size(),
                        );
                        dst
                    })
                    .collect()
            };
            let keys = reorder(keys, prof);
            let payload = reorder(payload, prof);
            let mut h2 = vec![0u64; n];
            partition::scatter(&mut h2, &pos, &hashes, None);
            (keys, payload, h2, offsets)
        };

        // Per-partition bucket chains over contiguous row ranges. Each
        // partition's chain slice is disjoint, so partitions build in
        // parallel with plain scoped threads.
        type PartitionTask<'a> = (usize, u32, &'a [u64], &'a mut [u32]);
        let nparts = offsets.len() - 1;
        let mut chain = vec![0u32; n];
        let mut parts: Vec<PartBuckets> = (0..nparts).map(|_| PartBuckets::default()).collect();
        let t0 = prof.start();
        {
            // Carve (partition id, base row, hash slice, chain slice) tasks.
            let mut tasks: Vec<PartitionTask> = Vec::with_capacity(nparts);
            let mut rest: &mut [u32] = &mut chain;
            for p in 0..nparts {
                let base = offsets[p];
                let end = offsets[p + 1];
                let (head, tail) = rest.split_at_mut((end - base) as usize);
                rest = tail;
                tasks.push((p, base, &hashes[base as usize..end as usize], head));
            }
            let nworkers = cfg.threads.min(nparts);
            if nworkers > 1 {
                let mut groups: Vec<Vec<PartitionTask>> =
                    (0..nworkers).map(|_| Vec::new()).collect();
                for (k, task) in tasks.into_iter().enumerate() {
                    groups[k % nworkers].push(task);
                }
                std::thread::scope(|s| {
                    let handles: Vec<_> = groups
                        .into_iter()
                        .map(|group| {
                            s.spawn(move || {
                                group
                                    .into_iter()
                                    .map(|(p, base, h, c)| (p, build_partition(base, h, c)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    let mut res = Ok(());
                    for (w, h) in handles.into_iter().enumerate() {
                        match h.join() {
                            Ok(built) => {
                                for (p, pb) in built {
                                    parts[p] = pb;
                                }
                            }
                            Err(e) => {
                                ctx.cancel();
                                if res.is_ok() {
                                    res = Err(PlanError::WorkerPanic {
                                        worker: w,
                                        cause: panic_cause(e.as_ref()),
                                    });
                                }
                            }
                        }
                    }
                    res
                })?;
            } else {
                for (p, base, h, c) in tasks {
                    parts[p] = build_partition(base, h, c);
                }
            }
        }
        prof.record_op("HashJoin(partition)", t0, n);
        prof.add_counter("join_partitions", nparts as u64);
        let max_rows = (0..nparts)
            .map(|p| (offsets[p + 1] - offsets[p]) as u64)
            .max()
            .unwrap_or(0);
        prof.max_counter("join_partition_max_rows", max_rows);

        // Final footprint: columns + hashes + chain links + bucket
        // arrays + the Bloom filter.
        let col_bytes: usize = keys
            .iter()
            .chain(payload.iter())
            .map(|v| v.byte_size())
            .sum();
        let bucket_bytes: usize = parts.iter().map(|p| p.buckets.len() * 4).sum();
        mem.ensure(col_bytes + n * 12 + bucket_bytes + bloom.byte_size())?;

        Ok(JoinBuildTable {
            key_types,
            payload_fields,
            keys,
            payload,
            hashes,
            chain,
            offsets,
            parts,
            bloom,
            bits,
            n_build: n,
            mem,
        })
    }
}

/// Build one partition's bucket array over its contiguous hash slice.
/// Bucket heads and chain links are *global* row ids + 1; rows chain in
/// reverse arrival order, so the probe walk emits matches newest-first —
/// identical to the pre-partitioned layout within a partition.
fn build_partition(base: u32, hashes: &[u64], chain: &mut [u32]) -> PartBuckets {
    let cap = (hashes.len().max(1) * 2).next_power_of_two();
    let mask = (cap - 1) as u64;
    let mut buckets = vec![0u32; cap];
    for (j, &h) in hashes.iter().enumerate() {
        let b = (h & mask) as usize;
        chain[j] = buckets[b];
        buckets[b] = base + j as u32 + 1;
    }
    PartBuckets { buckets, mask }
}

/// Pick the smallest partition-bit count whose average partition stays
/// under `budget` bytes (keys + payload + hash/bucket/chain overhead:
/// 8 B hash + ~12 B bucket/chain slots per row).
fn derive_partition_bits(keys: &[Vector], payload: &[Vector], n: usize, budget: usize) -> u32 {
    let col_bytes: usize = keys
        .iter()
        .chain(payload.iter())
        .map(|v| v.byte_size())
        .sum();
    let total = col_bytes + n * 20;
    let nparts = total.div_ceil(budget).max(1);
    (nparts.next_power_of_two().trailing_zeros()).min(MAX_RADIX_BITS)
}

/// The probe-side machinery shared by [`HashJoinOp`] (which owns its
/// build) and [`HashJoinProbeOp`] (which probes a shared table).
struct ProbeCore {
    ctx: Arc<QueryContext>,
    probe_keys: Vec<ExprProg>,
    join_type: JoinType,
    fields: Vec<OutField>,
    probe_arity: usize,
    hash_buf: Vec<u64>,
    bloom_ok: Vec<bool>,
    pools: Vec<VecPool>,
    sel_pool: SelPool,
    out: Batch,
}

impl ProbeCore {
    fn new(
        probe_fields: &[OutField],
        payload_fields: &[OutField],
        probe_keys: Vec<ExprProg>,
        join_type: JoinType,
        vector_size: usize,
        ctx: Arc<QueryContext>,
    ) -> Self {
        let probe_arity = probe_fields.len();
        let mut fields: Vec<OutField> = probe_fields.to_vec();
        fields.extend(payload_fields.iter().cloned());
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        ProbeCore {
            ctx,
            probe_keys,
            join_type,
            fields,
            probe_arity,
            hash_buf: Vec::new(),
            bloom_ok: Vec::new(),
            pools,
            sel_pool: SelPool::default(),
            out: Batch::new(),
        }
    }

    /// Pull probe batches and emit join output against `table`.
    fn next(
        &mut self,
        probe: &mut dyn Operator,
        table: &JoinBuildTable,
        prof: &mut Profiler,
    ) -> Result<Option<&Batch>, PlanError> {
        loop {
            self.ctx.check()?;
            let Some(batch) = probe.next(prof)? else {
                return Ok(None);
            };
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let live = batch.live();
            let t_op = prof.start();
            let key_vecs: Vec<&Vector> = self
                .probe_keys
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            self.hash_buf.resize(n, 0);
            hash_keys(&key_vecs, &mut self.hash_buf, n, sel, prof);
            // Bloom prepass: a negative test proves the key misses the
            // whole build side, so the chain walk is skipped.
            self.bloom_ok.clear();
            self.bloom_ok.resize(n, false);
            let t_bloom = prof.start();
            let rejected =
                bloom_test_u64_col(&mut self.bloom_ok, &table.bloom, &self.hash_buf, sel);
            prof.record_prim("bloom_test_u64_col", t_bloom, live, live * 9);
            prof.add_counter("join_bloom_tested", live as u64);
            prof.add_counter("join_bloom_rejected", rejected);
            // Collect matches.
            let mut m_probe: Vec<u32> = Vec::new();
            let mut m_build: Vec<u32> = Vec::new();
            let semi = matches!(self.join_type, JoinType::LeftSemi | JoinType::LeftAnti);
            let hash_buf = &self.hash_buf;
            let bloom_ok = &self.bloom_ok;
            let probe_one = |i: usize, m_probe: &mut Vec<u32>, m_build: &mut Vec<u32>| {
                if !bloom_ok[i] {
                    return false;
                }
                let h = hash_buf[i];
                let mut slot = table.first_slot(h);
                let mut matched = false;
                while slot != 0 {
                    let r = (slot - 1) as usize;
                    if table.hashes[r] == h
                        && table
                            .keys
                            .iter()
                            .zip(key_vecs.iter())
                            .all(|(ks, kv)| eq_at(ks, r, kv, i))
                    {
                        matched = true;
                        if semi {
                            break;
                        }
                        m_probe.push(i as u32);
                        m_build.push(r as u32);
                    }
                    slot = table.chain[r];
                }
                matched
            };
            match self.join_type {
                JoinType::Inner | JoinType::LeftOuter => {
                    let outer = self.join_type == JoinType::LeftOuter;
                    let one = |i: usize, m_probe: &mut Vec<u32>, m_build: &mut Vec<u32>| {
                        if !probe_one(i, m_probe, m_build) && outer {
                            m_probe.push(i as u32);
                            m_build.push(u32::MAX); // no-match sentinel
                        }
                    };
                    match sel {
                        None => {
                            for i in 0..n {
                                one(i, &mut m_probe, &mut m_build);
                            }
                        }
                        Some(s) => {
                            for i in s.iter() {
                                one(i, &mut m_probe, &mut m_build);
                            }
                        }
                    }
                    prof.record_op("HashJoin(probe)", t_op, live);
                    if m_probe.is_empty() {
                        continue;
                    }
                    let outn = m_probe.len();
                    self.out.reset();
                    self.out.len = outn;
                    for (k, colv) in batch.columns.iter().enumerate() {
                        let mut v = self.pools[k].writable();
                        for &p in &m_probe {
                            push_from(&mut v, colv, p as usize);
                        }
                        self.pools[k].publish(v, &mut self.out);
                    }
                    for (j, bs) in table.payload.iter().enumerate() {
                        let mut v = self.pools[self.probe_arity + j].writable();
                        for &r in &m_build {
                            if r == u32::MAX {
                                push_default(&mut v);
                            } else {
                                push_from(&mut v, bs, r as usize);
                            }
                        }
                        self.pools[self.probe_arity + j].publish(v, &mut self.out);
                    }
                    return Ok(Some(&self.out));
                }
                JoinType::LeftSemi | JoinType::LeftAnti => {
                    let want = self.join_type == JoinType::LeftSemi;
                    let mut newsel = self.sel_pool.writable();
                    {
                        let buf = newsel.buf_mut();
                        match sel {
                            None => {
                                for i in 0..n {
                                    if probe_one(i, &mut m_probe, &mut m_build) == want {
                                        buf.push(i as u32);
                                    }
                                }
                            }
                            Some(s) => {
                                for i in s.iter() {
                                    if probe_one(i, &mut m_probe, &mut m_build) == want {
                                        buf.push(i as u32);
                                    }
                                }
                            }
                        }
                    }
                    prof.record_op("HashJoin(probe)", t_op, live);
                    if newsel.is_empty() {
                        // Recycle and pull the next probe batch.
                        continue;
                    }
                    self.out.reset();
                    self.out.len = n;
                    self.out.columns.extend(batch.columns.iter().cloned());
                    self.sel_pool.publish(newsel, &mut self.out);
                    return Ok(Some(&self.out));
                }
            }
        }
    }

    fn reset(&mut self) {
        self.hash_buf.clear();
        self.bloom_ok.clear();
    }
}

/// Hash equi-join: build side fully consumed into a radix-partitioned
/// hash table, probe side streamed.
pub struct HashJoinOp {
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_keys: Vec<ExprProg>,
    payload_cols: Vec<usize>,
    payload_fields: Vec<OutField>,
    cfg: JoinBuildConfig,
    table: Option<Arc<JoinBuildTable>>,
    core: ProbeCore,
    ctx: Arc<QueryContext>,
}

impl HashJoinOp {
    /// Bind a hash join. `payload` lists build columns (by name) to
    /// carry into the output for inner/outer joins (must be empty for
    /// semi/anti joins).
    #[allow(clippy::too_many_arguments)] // mirrors the algebra operator's arity
    pub fn new(
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_key_exprs: &[Expr],
        probe_key_exprs: &[Expr],
        payload: &[(String, String)],
        join_type: JoinType,
        opts: &ExecOptions,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        if build_key_exprs.len() != probe_key_exprs.len() || build_key_exprs.is_empty() {
            return Err(PlanError::Invalid(
                "hash join needs matching, non-empty key lists".to_owned(),
            ));
        }
        if matches!(join_type, JoinType::LeftSemi | JoinType::LeftAnti) && !payload.is_empty() {
            return Err(PlanError::Invalid(
                "semi/anti joins cannot carry build payload".to_owned(),
            ));
        }
        let vector_size = opts.vector_size;
        let compound = opts.compound_primitives;
        let mut build_keys = Vec::new();
        for e in build_key_exprs {
            build_keys.push(ExprProg::compile(e, build.fields(), vector_size, compound)?);
        }
        let mut probe_keys = Vec::new();
        for (i, e) in probe_key_exprs.iter().enumerate() {
            let p = ExprProg::compile(e, probe.fields(), vector_size, compound)?;
            if p.result_type() != build_keys[i].result_type() {
                return Err(PlanError::TypeMismatch(format!(
                    "join key {} type mismatch: build {}, probe {}",
                    i,
                    build_keys[i].result_type(),
                    p.result_type()
                )));
            }
            probe_keys.push(p);
        }
        let mut payload_cols = Vec::new();
        let mut payload_fields = Vec::new();
        for (src, alias) in payload {
            let ci = build
                .fields()
                .iter()
                .position(|f| &f.name == src)
                .ok_or_else(|| PlanError::UnknownColumn(src.clone()))?;
            payload_cols.push(ci);
            payload_fields.push(OutField::new(alias.clone(), build.fields()[ci].ty));
        }
        let core = ProbeCore::new(
            probe.fields(),
            &payload_fields,
            probe_keys,
            join_type,
            vector_size,
            ctx.clone(),
        );
        Ok(HashJoinOp {
            build,
            probe,
            build_keys,
            payload_cols,
            payload_fields,
            cfg: JoinBuildConfig::from_opts(opts),
            table: None,
            core,
            ctx,
        })
    }

    /// Supply the bind-time probe cardinality estimate (Bloom sizing
    /// feedback). Only meaningful before the build side materializes.
    pub(crate) fn set_probe_rows_hint(&mut self, hint: Option<usize>) {
        self.cfg.probe_rows_hint = hint;
    }

    /// Build the partitioned table without probing, handing it out for
    /// sharing across parallel probe pipelines (build once, probe many).
    pub(crate) fn build_shared(
        build: &mut dyn Operator,
        build_key_exprs: &[Expr],
        payload: &[(String, String)],
        probe_rows_hint: Option<usize>,
        opts: &ExecOptions,
        ctx: &Arc<QueryContext>,
        prof: &mut Profiler,
    ) -> Result<Arc<JoinBuildTable>, PlanError> {
        let mut build_keys = Vec::new();
        for e in build_key_exprs {
            build_keys.push(ExprProg::compile(
                e,
                build.fields(),
                opts.vector_size,
                opts.compound_primitives,
            )?);
        }
        let mut payload_cols = Vec::new();
        let mut payload_fields = Vec::new();
        for (src, alias) in payload {
            let ci = build
                .fields()
                .iter()
                .position(|f| &f.name == src)
                .ok_or_else(|| PlanError::UnknownColumn(src.clone()))?;
            payload_cols.push(ci);
            payload_fields.push(OutField::new(alias.clone(), build.fields()[ci].ty));
        }
        let mut cfg = JoinBuildConfig::from_opts(opts);
        cfg.probe_rows_hint = probe_rows_hint;
        let t0 = prof.start();
        let table = JoinBuildTable::build(
            build,
            &mut build_keys,
            &payload_cols,
            payload_fields,
            &cfg,
            ctx,
            prof,
        )?;
        prof.record_op("HashJoin(build)", t0, table.n_build);
        Ok(Arc::new(table))
    }
}

impl Operator for HashJoinOp {
    fn fields(&self) -> &[OutField] {
        &self.core.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        let table = if let Some(t) = &self.table {
            t.clone()
        } else {
            let t0 = prof.start();
            let table = Arc::new(JoinBuildTable::build(
                self.build.as_mut(),
                &mut self.build_keys,
                &self.payload_cols,
                self.payload_fields.clone(),
                &self.cfg,
                &self.ctx,
                prof,
            )?);
            prof.record_op("HashJoin(build)", t0, table.n_build);
            self.table = Some(table.clone());
            table
        };
        self.core.next(self.probe.as_mut(), &table, prof)
    }

    fn reset(&mut self) {
        self.build.reset();
        self.probe.reset();
        self.table = None;
        self.core.reset();
    }
}

/// Probe-only hash join against a pre-built shared [`JoinBuildTable`] —
/// the worker-side half of the morsel-parallel join (build once on the
/// main thread, probe many across workers).
pub struct HashJoinProbeOp {
    probe: Box<dyn Operator>,
    table: Arc<JoinBuildTable>,
    core: ProbeCore,
}

impl HashJoinProbeOp {
    /// Bind a probe pipeline over `table`. Probe key expressions must
    /// match the build-side key types recorded in the table.
    pub(crate) fn new(
        probe: Box<dyn Operator>,
        table: Arc<JoinBuildTable>,
        probe_key_exprs: &[Expr],
        join_type: JoinType,
        opts: &ExecOptions,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        if probe_key_exprs.len() != table.key_types().len() {
            return Err(PlanError::Invalid(
                "probe key count differs from shared build table".to_owned(),
            ));
        }
        let mut probe_keys = Vec::new();
        for (i, e) in probe_key_exprs.iter().enumerate() {
            let p = ExprProg::compile(
                e,
                probe.fields(),
                opts.vector_size,
                opts.compound_primitives,
            )?;
            if p.result_type() != table.key_types()[i] {
                return Err(PlanError::TypeMismatch(format!(
                    "join key {} type mismatch: build {}, probe {}",
                    i,
                    table.key_types()[i],
                    p.result_type()
                )));
            }
            probe_keys.push(p);
        }
        let core = ProbeCore::new(
            probe.fields(),
            table.payload_fields(),
            probe_keys,
            join_type,
            opts.vector_size,
            ctx,
        );
        Ok(HashJoinProbeOp { probe, table, core })
    }
}

impl Operator for HashJoinProbeOp {
    fn fields(&self) -> &[OutField] {
        &self.core.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        let table = self.table.clone();
        self.core.next(self.probe.as_mut(), &table, prof)
    }

    fn reset(&mut self) {
        self.probe.reset();
        self.core.reset();
    }
}

/// Default value appended for unmatched outer-join payload slots.
/// Exhaustive over every [`Vector`] variant — a new variant must fail to
/// compile here rather than panic at runtime on the first unmatched
/// outer tuple. Enum-coded (`U8`/`U16`) payload columns default to code
/// 0 like any other unsigned column; the binder keeps their output
/// dictionary-free, so no decode can turn that 0 into a spurious
/// dictionary entry.
fn push_default(v: &mut Vector) {
    match v {
        Vector::I8(b) => b.push(0),
        Vector::I16(b) => b.push(0),
        Vector::I32(b) => b.push(0),
        Vector::I64(b) => b.push(0),
        Vector::U8(b) => b.push(0),
        Vector::U16(b) => b.push(0),
        Vector::U32(b) => b.push(0),
        Vector::U64(b) => b.push(0),
        Vector::F64(b) => b.push(0.0),
        Vector::Bool(b) => b.push(false),
        Vector::Str(b) => b.push(""),
    }
}
