//! Joins: `CartProd` and hash join.
//!
//! "X100 currently only supports left-deep joins. The default physical
//! implementation is a CartProd operator with a Select on top (i.e.
//! nested-loop join)" (§4.1.2). The plan binder composes exactly that
//! for `Join(Dataflow, Table, Exp<bool>, …)`; when a foreign-key join
//! index exists, it uses `Fetch1Join` instead (see
//! [`crate::ops::Fetch1JoinOp`]).
//!
//! [`HashJoinOp`] is our extension beyond the paper's operator list
//! (the paper's TPC-H setup avoids it via join indices): a classic
//! build+probe equi-join, with inner, left-semi and left-anti modes —
//! semi/anti output *selection vectors* over the probe dataflow, so they
//! are zero-copy like `Select`.

use super::aggr::hash_keys;
use crate::batch::{Batch, OutField, SelPool, VecPool};
use crate::compile::ExprProg;
use crate::expr::Expr;
use crate::ops::{eq_at, push_from, Operator};
use crate::profile::Profiler;
use crate::PlanError;
use std::sync::Arc;
use x100_storage::Table;
use x100_vector::Vector;

/// Join semantics for [`HashJoinOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Emit probe ⨝ build matches (cardinality-changing).
    Inner,
    /// Like `Inner`, but probe rows without a match are emitted once
    /// with default-valued payload (0 / empty string). The engine has
    /// no NULLs; Q13-style count-including-zero queries rely on the
    /// zero default.
    LeftOuter,
    /// Emit probe rows with ≥1 match (selection-vector only).
    LeftSemi,
    /// Emit probe rows with no match (selection-vector only).
    LeftAnti,
}

/// `CartProd(Dataflow, Table, List<Column>)` — cross product with a
/// (small) materialized table. `Join` = `CartProd` + `Select`.
pub struct CartProdOp {
    child: Box<dyn Operator>,
    table: Arc<Table>,
    fetch_cols: Vec<usize>,
    fields: Vec<OutField>,
    child_arity: usize,
    pools: Vec<VecPool>,
    // Expansion state.
    cur_cols: Vec<std::rc::Rc<Vector>>,
    cur_live: Vec<u32>,
    cpos_idx: usize,
    trow: u32,
    out: Batch,
    #[allow(dead_code)]
    vector_size: usize,
    done: bool,
}

impl CartProdOp {
    /// Bind a cross product fetching `fetch` columns of `table`.
    pub fn new(
        child: Box<dyn Operator>,
        table: Arc<Table>,
        fetch: &[(String, String)],
        vector_size: usize,
    ) -> Result<Self, PlanError> {
        if !table.deletes().is_empty() {
            return Err(PlanError::Invalid(
                "CartProd over a table with pending deletes; reorganize first".to_owned(),
            ));
        }
        let child_arity = child.fields().len();
        let mut fields: Vec<OutField> = child.fields().to_vec();
        let mut pools: Vec<VecPool> = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        let mut fetch_cols = Vec::new();
        for (src, alias) in fetch {
            let ci = table
                .column_index(src)
                .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", table.name(), src)))?;
            let ty = table.column(ci).field().logical;
            fields.push(OutField::new(alias.clone(), ty));
            pools.push(VecPool::new(ty, vector_size));
            fetch_cols.push(ci);
        }
        Ok(CartProdOp {
            child,
            table,
            fetch_cols,
            fields,
            child_arity,
            pools,
            cur_cols: Vec::new(),
            cur_live: Vec::new(),
            cpos_idx: 0,
            trow: 0,
            out: Batch::new(),
            vector_size,
            done: false,
        })
    }

    fn refill(&mut self, prof: &mut Profiler) -> bool {
        let Some(batch) = self.child.next(prof) else {
            return false;
        };
        self.cur_live = match batch.sel.as_deref() {
            None => (0..batch.len as u32).collect(),
            Some(s) => s.positions().to_vec(),
        };
        self.cur_cols = batch.columns.clone();
        self.cpos_idx = 0;
        self.trow = 0;
        !self.cur_live.is_empty() || self.refill(prof)
    }
}

impl Operator for CartProdOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Option<&Batch> {
        if self.done {
            return None;
        }
        let nrows = self.table.total_rows() as u32;
        if nrows == 0 {
            self.done = true;
            return None;
        }
        if self.cpos_idx >= self.cur_live.len() && !self.refill(prof) {
            self.done = true;
            return None;
        }
        let t_op = prof.start();
        // Gather up to vector_size (child pos, table row) pairs.
        let mut cpos: Vec<u32> = Vec::with_capacity(self.vector_size);
        let mut trows: Vec<u32> = Vec::with_capacity(self.vector_size);
        while cpos.len() < self.vector_size && self.cpos_idx < self.cur_live.len() {
            cpos.push(self.cur_live[self.cpos_idx]);
            trows.push(self.trow);
            self.trow += 1;
            if self.trow == nrows {
                self.trow = 0;
                self.cpos_idx += 1;
            }
        }
        let n = cpos.len();
        self.out.reset();
        self.out.len = n;
        for (k, colv) in self.cur_cols.iter().enumerate() {
            let mut v = self.pools[k].writable();
            for &cp in &cpos {
                push_from(&mut v, colv, cp as usize);
            }
            self.pools[k].publish(v, &mut self.out);
        }
        for (j, &ci) in self.fetch_cols.iter().enumerate() {
            let mut v = self.pools[self.child_arity + j].writable();
            self.table.gather_logical(ci, &trows, &mut v);
            self.pools[self.child_arity + j].publish(v, &mut self.out);
        }
        prof.record_op("CartProd", t_op, n);
        Some(&self.out)
    }

    fn reset(&mut self) {
        self.child.reset();
        self.cur_cols.clear();
        self.cur_live.clear();
        self.cpos_idx = 0;
        self.trow = 0;
        self.done = false;
    }
}

/// Hash equi-join: build side fully consumed into a chained hash table,
/// probe side streamed.
pub struct HashJoinOp {
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_keys: Vec<ExprProg>,
    probe_keys: Vec<ExprProg>,
    join_type: JoinType,
    /// Build columns carried to the output (inner join only).
    payload_cols: Vec<usize>,
    fields: Vec<OutField>,
    probe_arity: usize,
    // Hash table over build rows.
    b_key_store: Vec<Vector>,
    b_cols: Vec<Vector>,
    b_hashes: Vec<u64>,
    buckets: Vec<u32>,
    chain: Vec<u32>,
    n_build: usize,
    built: bool,
    // Scratch.
    hash_buf: Vec<u64>,
    pools: Vec<VecPool>,
    sel_pool: SelPool,
    out: Batch,
    #[allow(dead_code)]
    vector_size: usize,
}

impl HashJoinOp {
    /// Bind a hash join. `payload` lists build columns (by name) to
    /// carry into the output for inner joins (must be empty for
    /// semi/anti joins).
    #[allow(clippy::too_many_arguments)] // mirrors the algebra operator's arity
    pub fn new(
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_key_exprs: &[Expr],
        probe_key_exprs: &[Expr],
        payload: &[(String, String)],
        join_type: JoinType,
        vector_size: usize,
        compound: bool,
    ) -> Result<Self, PlanError> {
        if build_key_exprs.len() != probe_key_exprs.len() || build_key_exprs.is_empty() {
            return Err(PlanError::Invalid(
                "hash join needs matching, non-empty key lists".to_owned(),
            ));
        }
        if matches!(join_type, JoinType::LeftSemi | JoinType::LeftAnti) && !payload.is_empty() {
            return Err(PlanError::Invalid(
                "semi/anti joins cannot carry build payload".to_owned(),
            ));
        }
        let mut build_keys = Vec::new();
        let mut b_key_store = Vec::new();
        for e in build_key_exprs {
            let p = ExprProg::compile(e, build.fields(), vector_size, compound)?;
            b_key_store.push(Vector::with_capacity(p.result_type(), 16));
            build_keys.push(p);
        }
        let mut probe_keys = Vec::new();
        for (i, e) in probe_key_exprs.iter().enumerate() {
            let p = ExprProg::compile(e, probe.fields(), vector_size, compound)?;
            if p.result_type() != build_keys[i].result_type() {
                return Err(PlanError::TypeMismatch(format!(
                    "join key {} type mismatch: build {}, probe {}",
                    i,
                    build_keys[i].result_type(),
                    p.result_type()
                )));
            }
            probe_keys.push(p);
        }
        let probe_arity = probe.fields().len();
        let mut fields: Vec<OutField> = probe.fields().to_vec();
        let mut payload_cols = Vec::new();
        let mut b_cols = Vec::new();
        for (src, alias) in payload {
            let ci = build
                .fields()
                .iter()
                .position(|f| &f.name == src)
                .ok_or_else(|| PlanError::UnknownColumn(src.clone()))?;
            let ty = build.fields()[ci].ty;
            fields.push(OutField::new(alias.clone(), ty));
            payload_cols.push(ci);
            b_cols.push(Vector::with_capacity(ty, 16));
        }
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(HashJoinOp {
            build,
            probe,
            build_keys,
            probe_keys,
            join_type,
            payload_cols,
            fields,
            probe_arity,
            b_key_store,
            b_cols,
            b_hashes: Vec::new(),
            buckets: Vec::new(),
            chain: Vec::new(),
            n_build: 0,
            built: false,
            hash_buf: Vec::new(),
            pools,
            sel_pool: SelPool::default(),
            out: Batch::new(),
            vector_size,
        })
    }

    fn build_table(&mut self, prof: &mut Profiler) {
        while let Some(batch) = self.build.next(prof) {
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let key_vecs: Vec<&Vector> = self
                .build_keys
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            self.hash_buf.resize(n, 0);
            hash_keys(&key_vecs, &mut self.hash_buf, n, sel, prof);
            let mut insert = |i: usize| {
                for (ks, kv) in self.b_key_store.iter_mut().zip(key_vecs.iter()) {
                    push_from(ks, kv, i);
                }
                for (bs, &ci) in self.b_cols.iter_mut().zip(self.payload_cols.iter()) {
                    push_from(bs, &batch.columns[ci], i);
                }
                self.b_hashes.push(self.hash_buf[i]);
                self.n_build += 1;
            };
            match sel {
                None => {
                    for i in 0..n {
                        insert(i);
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        insert(i);
                    }
                }
            }
        }
        // Build the bucket chains.
        let cap = (self.n_build.max(1) * 2).next_power_of_two();
        let mask = (cap - 1) as u64;
        self.buckets = vec![0; cap];
        self.chain = vec![0; self.n_build];
        for r in 0..self.n_build {
            let b = (self.b_hashes[r] & mask) as usize;
            self.chain[r] = self.buckets[b];
            self.buckets[b] = r as u32 + 1;
        }
        self.built = true;
    }
}

impl Operator for HashJoinOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Option<&Batch> {
        if !self.built {
            let t0 = prof.start();
            self.build_table(prof);
            prof.record_op("HashJoin(build)", t0, self.n_build);
        }
        loop {
            let batch = self.probe.next(prof)?;
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let live = batch.live();
            let t_op = prof.start();
            let key_vecs: Vec<&Vector> = self
                .probe_keys
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            self.hash_buf.resize(n, 0);
            hash_keys(&key_vecs, &mut self.hash_buf, n, sel, prof);
            let mask = (self.buckets.len() - 1) as u64;
            // Collect matches.
            let mut m_probe: Vec<u32> = Vec::new();
            let mut m_build: Vec<u32> = Vec::new();
            let semi = matches!(self.join_type, JoinType::LeftSemi | JoinType::LeftAnti);
            let probe_one = |i: usize, m_probe: &mut Vec<u32>, m_build: &mut Vec<u32>| {
                let h = self.hash_buf[i];
                let mut slot = self.buckets[(h & mask) as usize];
                let mut matched = false;
                while slot != 0 {
                    let r = (slot - 1) as usize;
                    if self.b_hashes[r] == h
                        && self
                            .b_key_store
                            .iter()
                            .zip(key_vecs.iter())
                            .all(|(ks, kv)| eq_at(ks, r, kv, i))
                    {
                        matched = true;
                        if semi {
                            break;
                        }
                        m_probe.push(i as u32);
                        m_build.push(r as u32);
                    }
                    slot = self.chain[r];
                }
                matched
            };
            match self.join_type {
                JoinType::Inner | JoinType::LeftOuter => {
                    let outer = self.join_type == JoinType::LeftOuter;
                    let one = |i: usize, m_probe: &mut Vec<u32>, m_build: &mut Vec<u32>| {
                        if !probe_one(i, m_probe, m_build) && outer {
                            m_probe.push(i as u32);
                            m_build.push(u32::MAX); // no-match sentinel
                        }
                    };
                    match sel {
                        None => {
                            for i in 0..n {
                                one(i, &mut m_probe, &mut m_build);
                            }
                        }
                        Some(s) => {
                            for i in s.iter() {
                                one(i, &mut m_probe, &mut m_build);
                            }
                        }
                    }
                    prof.record_op("HashJoin(probe)", t_op, live);
                    if m_probe.is_empty() {
                        continue;
                    }
                    let outn = m_probe.len();
                    self.out.reset();
                    self.out.len = outn;
                    for (k, colv) in batch.columns.iter().enumerate() {
                        let mut v = self.pools[k].writable();
                        for &p in &m_probe {
                            push_from(&mut v, colv, p as usize);
                        }
                        self.pools[k].publish(v, &mut self.out);
                    }
                    for (j, bs) in self.b_cols.iter().enumerate() {
                        let mut v = self.pools[self.probe_arity + j].writable();
                        for &r in &m_build {
                            if r == u32::MAX {
                                push_default(&mut v);
                            } else {
                                push_from(&mut v, bs, r as usize);
                            }
                        }
                        self.pools[self.probe_arity + j].publish(v, &mut self.out);
                    }
                    return Some(&self.out);
                }
                JoinType::LeftSemi | JoinType::LeftAnti => {
                    let want = self.join_type == JoinType::LeftSemi;
                    let mut newsel = self.sel_pool.writable();
                    {
                        let buf = newsel.buf_mut();
                        match sel {
                            None => {
                                for i in 0..n {
                                    if probe_one(i, &mut m_probe, &mut m_build) == want {
                                        buf.push(i as u32);
                                    }
                                }
                            }
                            Some(s) => {
                                for i in s.iter() {
                                    if probe_one(i, &mut m_probe, &mut m_build) == want {
                                        buf.push(i as u32);
                                    }
                                }
                            }
                        }
                    }
                    prof.record_op("HashJoin(probe)", t_op, live);
                    if newsel.is_empty() {
                        // Recycle and pull the next probe batch.
                        continue;
                    }
                    self.out.reset();
                    self.out.len = n;
                    self.out.columns.extend(batch.columns.iter().cloned());
                    self.sel_pool.publish(newsel, &mut self.out);
                    return Some(&self.out);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.build.reset();
        self.probe.reset();
        for v in &mut self.b_key_store {
            v.clear();
        }
        for v in &mut self.b_cols {
            v.clear();
        }
        self.b_hashes.clear();
        self.buckets.clear();
        self.chain.clear();
        self.n_build = 0;
        self.built = false;
    }
}

/// Default value appended for unmatched outer-join payload slots.
fn push_default(v: &mut Vector) {
    match v {
        Vector::I8(b) => b.push(0),
        Vector::I16(b) => b.push(0),
        Vector::I32(b) => b.push(0),
        Vector::I64(b) => b.push(0),
        Vector::U8(b) => b.push(0),
        Vector::U16(b) => b.push(0),
        Vector::U32(b) => b.push(0),
        Vector::U64(b) => b.push(0),
        Vector::F64(b) => b.push(0.0),
        Vector::Bool(b) => b.push(false),
        Vector::Str(b) => b.push(""),
    }
}
