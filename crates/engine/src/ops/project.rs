//! `Project(Dataflow, List<Exp<*>>) : Dataflow` — expression calculation.
//!
//! "Project is just used for expression calculation; it does not
//! eliminate duplicates" (§4.1.2). Pass-through columns are zero-copy
//! (`Rc` clones); computed columns are produced by the expression
//! programs and handed over by buffer swap, so no per-batch allocation
//! occurs in steady state.
//!
//! Map primitives honor the incoming selection vector: "'discount' and
//! 'extendedprice' columns are not modified during selection. Instead,
//! the selection-vector is taken into account by map-primitives to
//! perform calculations only for relevant tuples" (§4.1.1).

use crate::batch::{Batch, OutField};
use crate::compile::ExprProg;
use crate::expr::Expr;
use crate::govern::QueryContext;
use crate::ops::Operator;
use crate::profile::Profiler;
use crate::PlanError;
use std::rc::Rc;
use x100_vector::Vector;

/// One output column of the projection.
enum ProjCol {
    /// Zero-copy pass-through of input column `i`.
    Pass(usize),
    /// Computed column: expression program + reusable output slot.
    Compute {
        prog: ExprProg,
        slot: Option<Rc<Vector>>,
    },
}

/// The projection operator.
pub struct ProjectOp {
    child: Box<dyn Operator>,
    cols: Vec<ProjCol>,
    fields: Vec<OutField>,
    vector_size: usize,
    out: Batch,
    ctx: std::sync::Arc<QueryContext>,
}

impl ProjectOp {
    /// Compile named expressions against `child`'s shape.
    pub fn new(
        child: Box<dyn Operator>,
        exprs: &[(String, Expr)],
        vector_size: usize,
        compound: bool,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut cols = Vec::new();
        let mut fields = Vec::new();
        for (name, e) in exprs {
            let prog = ExprProg::compile(e, child.fields(), vector_size, compound)?;
            fields.push(OutField::new(name.clone(), prog.result_type()));
            match prog.as_col_ref() {
                Some(i) => cols.push(ProjCol::Pass(i)),
                None => cols.push(ProjCol::Compute { prog, slot: None }),
            }
        }
        Ok(ProjectOp {
            child,
            cols,
            fields,
            vector_size,
            out: Batch::new(),
            ctx,
        })
    }
}

impl Operator for ProjectOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        // One governance checkpoint per vector.
        self.ctx.check()?;
        let batch = match self.child.next(prof)? {
            None => return Ok(None),
            Some(b) => b,
        };
        let t_op = prof.start();
        self.out.reset();
        self.out.len = batch.len;
        self.out.sel = batch.sel.clone();
        let sel = batch.sel.as_deref();
        for (k, pc) in self.cols.iter_mut().enumerate() {
            match pc {
                ProjCol::Pass(i) => self.out.columns.push(batch.columns[*i].clone()),
                ProjCol::Compute { prog, slot } => {
                    let mut buf = slot
                        .take()
                        .and_then(|rc| Rc::try_unwrap(rc).ok())
                        .unwrap_or_else(|| {
                            Vector::with_capacity(self.fields[k].ty, self.vector_size)
                        });
                    prog.eval(batch, sel, prof);
                    prog.swap_result(&mut buf);
                    let rc = Rc::new(buf);
                    *slot = Some(rc.clone());
                    self.out.columns.push(rc);
                }
            }
        }
        prof.record_op("Project", t_op, batch.live());
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
    }
}
