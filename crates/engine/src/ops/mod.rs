//! The X100 algebra operators (paper Fig. 7).
//!
//! Operators form a Volcano-style pull pipeline at vector granularity:
//! `next()` produces the next [`Batch`] of the dataflow, `Ok(None)`
//! when exhausted, or a typed [`PlanError`] when the resource governor
//! aborts the query (budget, cancellation, deadline, I/O fault).
//! `Table`s are materialized relations; a `Dataflow` is what flows
//! between operators (paper §4.1.2).

use crate::batch::Batch;
use crate::compile::PlanError;
use crate::profile::Profiler;
use x100_vector::Vector;

mod aggr;
mod array;
mod fetchjoin;
mod join;
pub(crate) mod parallel;
mod project;
mod scan;
mod select;
mod sort;

pub use aggr::{
    AggrPartial, DirectAggrOp, DirectKey, HashAggrOp, MergeAgg, MergeSpec, OrdAggrOp, PartialAcc,
};
pub use array::ArrayOp;
pub use fetchjoin::{Fetch1JoinOp, FetchNJoinOp};
pub use join::{CartProdOp, HashJoinOp, HashJoinProbeOp, JoinBuildTable, JoinType};
pub use parallel::MergeAggrOp;
pub use project::ProjectOp;
pub use scan::ScanOp;
pub use select::SelectOp;
pub use sort::{OrdExp, OrderOp, SortOrder, TopNOp};

/// A dataflow with the right shape and zero rows: what a `Select` whose
/// predicate the facts analyzer proved always-false binds to (the
/// constant-folding sink of [`crate::facts`]).
#[derive(Debug)]
pub struct EmptyOp {
    fields: Vec<crate::batch::OutField>,
}

impl EmptyOp {
    /// An empty dataflow with the given output shape.
    pub fn new(fields: Vec<crate::batch::OutField>) -> Self {
        EmptyOp { fields }
    }
}

impl Operator for EmptyOp {
    fn fields(&self) -> &[crate::batch::OutField] {
        &self.fields
    }

    fn next(&mut self, _prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        Ok(None)
    }

    fn reset(&mut self) {}
}

/// A dataflow operator: the vectorized Volcano iterator.
pub trait Operator {
    /// The output shape (column names and types).
    fn fields(&self) -> &[crate::batch::OutField];

    /// Produce the next batch, `Ok(None)` when the dataflow is
    /// exhausted, or an error when the resource governor aborts the
    /// query (memory budget, cancellation, deadline, storage fault).
    ///
    /// The returned batch borrows the operator; consume it before the
    /// next call. `prof` collects primitive/operator traces when enabled.
    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError>;

    /// Rewind to the start of the dataflow (re-execution support).
    fn reset(&mut self);

    /// Parallel-execution hook: consume the whole input and surrender
    /// the materialized partial aggregation state instead of emitting
    /// final batches. `Ok(None)` (the default) marks operators that
    /// cannot act as a partial-aggregation pipeline root.
    fn take_partial_aggr(
        &mut self,
        _prof: &mut Profiler,
    ) -> Result<Option<AggrPartial>, PlanError> {
        Ok(None)
    }

    /// Parallel-execution hook: the merge recipe for partials produced
    /// by [`Operator::take_partial_aggr`]. `None` for operators without
    /// mergeable aggregation state.
    fn partial_merge_spec(&self) -> Option<MergeSpec> {
        None
    }
}

/// Append value `i` of `src` to `dst` (same types). Slow path used by
/// cardinality-changing operators on non-hot columns.
pub(crate) fn push_from(dst: &mut Vector, src: &Vector, i: usize) {
    match (dst, src) {
        (Vector::I8(d), Vector::I8(s)) => d.push(s[i]),
        (Vector::I16(d), Vector::I16(s)) => d.push(s[i]),
        (Vector::I32(d), Vector::I32(s)) => d.push(s[i]),
        (Vector::I64(d), Vector::I64(s)) => d.push(s[i]),
        (Vector::U8(d), Vector::U8(s)) => d.push(s[i]),
        (Vector::U16(d), Vector::U16(s)) => d.push(s[i]),
        (Vector::U32(d), Vector::U32(s)) => d.push(s[i]),
        (Vector::U64(d), Vector::U64(s)) => d.push(s[i]),
        (Vector::F64(d), Vector::F64(s)) => d.push(s[i]),
        (Vector::Bool(d), Vector::Bool(s)) => d.push(s[i]),
        (Vector::Str(d), Vector::Str(s)) => d.push(s.get(i)),
        (d, s) => panic!(
            "push_from type mismatch: {:?} <- {:?}",
            d.scalar_type(),
            s.scalar_type()
        ),
    }
}

/// Compare value `i` of `a` against value `j` of `b` (same types).
/// Total order; f64 uses `total_cmp`.
pub(crate) fn cmp_at(a: &Vector, i: usize, b: &Vector, j: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Vector::I8(x), Vector::I8(y)) => x[i].cmp(&y[j]),
        (Vector::I16(x), Vector::I16(y)) => x[i].cmp(&y[j]),
        (Vector::I32(x), Vector::I32(y)) => x[i].cmp(&y[j]),
        (Vector::I64(x), Vector::I64(y)) => x[i].cmp(&y[j]),
        (Vector::U8(x), Vector::U8(y)) => x[i].cmp(&y[j]),
        (Vector::U16(x), Vector::U16(y)) => x[i].cmp(&y[j]),
        (Vector::U32(x), Vector::U32(y)) => x[i].cmp(&y[j]),
        (Vector::U64(x), Vector::U64(y)) => x[i].cmp(&y[j]),
        (Vector::F64(x), Vector::F64(y)) => x[i].total_cmp(&y[j]),
        (Vector::Bool(x), Vector::Bool(y)) => x[i].cmp(&y[j]),
        (Vector::Str(x), Vector::Str(y)) => x.get(i).cmp(y.get(j)),
        (a, b) => {
            let _ = Ordering::Equal;
            panic!(
                "cmp_at type mismatch: {:?} vs {:?}",
                a.scalar_type(),
                b.scalar_type()
            )
        }
    }
}

/// Equality of value `i` of `a` and value `j` of `b` (same types).
#[inline]
pub(crate) fn eq_at(a: &Vector, i: usize, b: &Vector, j: usize) -> bool {
    cmp_at(a, i, b, j) == std::cmp::Ordering::Equal
}

/// Append `src[start..start+n]` to `dst` (same types). Typed bulk copy
/// used when emitting aggregate results vector-at-a-time.
pub(crate) fn extend_range(dst: &mut Vector, src: &Vector, start: usize, n: usize) {
    match (dst, src) {
        (Vector::I8(d), Vector::I8(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::I16(d), Vector::I16(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::I32(d), Vector::I32(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::I64(d), Vector::I64(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::U8(d), Vector::U8(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::U16(d), Vector::U16(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::U32(d), Vector::U32(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::U64(d), Vector::U64(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::F64(d), Vector::F64(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::Bool(d), Vector::Bool(s)) => d.extend_from_slice(&s[start..start + n]),
        (Vector::Str(d), Vector::Str(s)) => {
            for i in start..start + n {
                d.push(s.get(i));
            }
        }
        (d, s) => panic!(
            "extend_range type mismatch: {:?} <- {:?}",
            d.scalar_type(),
            s.scalar_type()
        ),
    }
}
