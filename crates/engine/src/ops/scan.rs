//! `Scan(Table) : Dataflow` — vector-at-a-time table scan.
//!
//! "The Scan operator retrieves data vector-at-a-time from Monet BATs.
//! Note that only attributes relevant for the query are actually
//! scanned" (§4.1.1). Enumeration-typed columns are decompressed on the
//! fly by an automatically added positional fetch — surfaced in traces
//! as the paper's `Fetch1Join(ENUM)` operator rows and
//! `map_fetch_uchr_col_*` primitive rows (§4.3, Table 5) — unless the
//! plan requests raw codes (direct aggregation groups on codes).
//!
//! The scan also consults the table's delta structures: deleted rows are
//! masked via the batch selection vector, and insert-delta rows are
//! appended after the fragments.

use crate::batch::{Batch, OutField, SelPool, VecPool};
use crate::govern::{MemTracker, QueryContext};
use crate::ops::Operator;
use crate::profile::Profiler;
use crate::PlanError;
use std::sync::Arc;
use x100_storage::{ColumnBM, ColumnData, DecodeCursor, Morsel, PushOp, Pushdown, Table};
use x100_vector::{Value, Vector};

/// How one scanned column is produced.
enum ColMode {
    /// Plain column: memcpy fragment range into the vector.
    Plain,
    /// Enum column decoded via fetch; holds the code scratch vector and
    /// the decode primitive signature.
    Decode { codes: Vector, sig: String },
    /// Enum column surfaced as raw codes (no decode).
    Codes,
}

/// Per-column state for a checkpoint-compressed fragment column:
/// decode-on-refill replaces the raw `read_into` memcpy, keeping
/// decompression inside the CPU cache at vector granularity (§5).
struct CompState {
    /// Sequential decode position (PFOR-DELTA continuation carry).
    cursor: DecodeCursor,
    /// Reused frame buffer; its bytes are charged to the governor.
    scratch: Vec<u64>,
    /// Registered decompress primitive this column resolves to.
    sig: &'static str,
    /// Verified replacement chunks healed from a durable-store replica
    /// after the in-memory copy failed its checksum; once set, every
    /// later refill of this column decodes from the healed copy.
    healed: Option<Arc<x100_storage::CompressedColumn>>,
}

/// A predicate pushed into the compressed scan (the fused
/// `CompressedScanSelect` refill path): the comparison runs in encoded
/// space over the packed lanes before anything is decoded, and only
/// surviving positions are ever materialized.
struct PushSpec {
    /// Index (into `cols`) of the predicate column.
    k: usize,
    /// The compiled encoded-space predicate.
    p: Pushdown,
    /// Window-relative surviving positions of the current vector.
    sel: Vec<u32>,
    /// Per-chunk scratch shared by the selective-decode kernels.
    tmp: Vec<u32>,
    /// Absolute-rowid scratch for PFOR-DELTA co-column seeks.
    abs: Vec<u32>,
    /// Whether the one-time dictionary-rewrite counter fired.
    counted: bool,
}

/// The scan operator.
pub struct ScanOp {
    table: Arc<Table>,
    cols: Vec<usize>,
    modes: Vec<ColMode>,
    fields: Vec<OutField>,
    pools: Vec<VecPool>,
    sel_pool: SelPool,
    out: Batch,
    /// Fragment row range to scan (possibly pruned by a summary index).
    range: (usize, usize),
    pos: usize,
    delta_pos: usize,
    /// Morsel mode: scan only these row ranges (parallel workers get
    /// disjoint subsets). `None` scans `range` + the whole delta.
    morsels: Option<Vec<Morsel>>,
    mcur: usize,
    moff: usize,
    vector_size: usize,
    scratch_del: Vec<u32>,
    scratch_reads: Vec<(usize, u64, u64)>,
    /// Decode state per scanned column; `Some` iff the column was
    /// rewritten as compressed chunks by `Table::checkpoint`.
    comp: Vec<Option<CompState>>,
    /// Fused predicate pushdown; `Some` turns fragment refills into the
    /// `CompressedScanSelect` path (encoded-space select, lazy decode).
    push: Option<PushSpec>,
    /// Governor charge for the decode scratch buffers.
    mem: Option<MemTracker>,
    bm: Option<Arc<ColumnBM>>,
    ctx: Arc<QueryContext>,
    /// Cheap stand-in pushed for decode columns until the decode pass
    /// replaces it (keeps column ordering without an allocation).
    placeholder: std::rc::Rc<Vector>,
}

impl ScanOp {
    /// Build a scan of `col_names` over `table`.
    ///
    /// `code_cols` lists enum columns to surface as raw codes;
    /// `range` restricts the fragment rows scanned (summary-index
    /// pruning); `None` scans everything.
    pub fn new(
        table: Arc<Table>,
        col_names: &[&str],
        code_cols: &[&str],
        range: Option<(usize, usize)>,
        vector_size: usize,
        bm: Option<Arc<ColumnBM>>,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, crate::PlanError> {
        Self::build(
            table,
            col_names,
            code_cols,
            range,
            None,
            vector_size,
            bm,
            ctx,
        )
    }

    /// Build a scan restricted to `morsels` (disjoint row ranges handed
    /// to one parallel worker). `range`/delta iteration is replaced by
    /// the morsel list; everything else matches [`ScanOp::new`].
    pub fn with_morsels(
        table: Arc<Table>,
        col_names: &[&str],
        code_cols: &[&str],
        morsels: Vec<Morsel>,
        vector_size: usize,
        bm: Option<Arc<ColumnBM>>,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, crate::PlanError> {
        Self::build(
            table,
            col_names,
            code_cols,
            None,
            Some(morsels),
            vector_size,
            bm,
            ctx,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        table: Arc<Table>,
        col_names: &[&str],
        code_cols: &[&str],
        range: Option<(usize, usize)>,
        morsels: Option<Vec<Morsel>>,
        vector_size: usize,
        bm: Option<Arc<ColumnBM>>,
        ctx: Arc<QueryContext>,
    ) -> Result<Self, crate::PlanError> {
        let mut cols = Vec::new();
        let mut modes = Vec::new();
        let mut fields = Vec::new();
        let mut pools = Vec::new();
        for &name in col_names {
            let ci = table
                .column_index(name)
                .ok_or_else(|| crate::PlanError::UnknownColumn(name.to_owned()))?;
            let sc = table.column(ci);
            let as_codes = code_cols.contains(&name);
            let (mode, ty) = match (sc.dict(), as_codes) {
                (None, _) => (ColMode::Plain, sc.field().logical),
                (Some(_), true) => (ColMode::Codes, sc.physical_type()),
                (Some(dict), false) => {
                    let code_ty = sc.physical_type();
                    let sig = format!(
                        "map_fetch_{}_col_{}_col",
                        code_ty.sig_name(),
                        dict.value_type().sig_name()
                    );
                    (
                        ColMode::Decode {
                            codes: Vector::with_capacity(code_ty, vector_size),
                            sig,
                        },
                        dict.value_type(),
                    )
                }
            };
            cols.push(ci);
            fields.push(OutField::new(name, ty));
            pools.push(VecPool::new(ty, vector_size));
            modes.push(mode);
        }
        // Raw codes cannot be served from the (logical-value) insert
        // delta: reject at bind time rather than panic mid-scan.
        if table.delta_rows() > 0 {
            if let Some((&name, _)) = col_names
                .iter()
                .zip(modes.iter())
                .find(|(_, m)| matches!(m, ColMode::Codes))
            {
                return Err(crate::PlanError::Invalid(format!(
                    "raw-code scan of column `{name}` with pending insert deltas; reorganize first"
                )));
            }
        }
        let frag = table.fragment_rows();
        let range = match range {
            None => (0, frag),
            Some((s, e)) => (s.min(frag), e.min(frag)),
        };
        // Decode-on-refill state for compressed columns. The scratch
        // frame buffers are a real allocation the query keeps for its
        // lifetime, so charge them up front (worst case: one vector of
        // u64 frames plus a sync-interval replay window per column).
        let comp: Vec<Option<CompState>> = cols
            .iter()
            .map(|&ci| {
                table.column(ci).compressed().map(|cc| CompState {
                    cursor: DecodeCursor::default(),
                    scratch: Vec::new(),
                    sig: cc.decode_sig(),
                    healed: None,
                })
            })
            .collect();
        let n_comp = comp.iter().filter(|c| c.is_some()).count();
        let mem = if n_comp > 0 {
            let mut t = MemTracker::new(ctx.clone(), "Scan(decode)");
            t.ensure(n_comp * (vector_size + 1024) * std::mem::size_of::<u64>())?;
            Some(t)
        } else {
            None
        };
        Ok(ScanOp {
            table,
            cols,
            modes,
            fields,
            pools,
            sel_pool: SelPool::default(),
            out: Batch::new(),
            range,
            pos: range.0,
            delta_pos: 0,
            morsels,
            mcur: 0,
            moff: 0,
            vector_size,
            scratch_del: Vec::new(),
            scratch_reads: Vec::new(),
            comp,
            push: None,
            mem,
            bm,
            ctx,
            placeholder: std::rc::Rc::new(Vector::Bool(Vec::new())),
        })
    }

    /// Attach a fused predicate pushdown on scanned column `col` (the
    /// binder's `CompressedScanSelect` fusion). The column must be a
    /// plain (non-enum) checkpoint-compressed column whose codec
    /// supports encoded-space selection.
    pub fn set_pushdown(&mut self, col: &str, p: Pushdown) -> Result<(), PlanError> {
        let k = self
            .fields
            .iter()
            .position(|f| f.name == col)
            .ok_or_else(|| PlanError::UnknownColumn(col.to_owned()))?;
        if !matches!(self.modes[k], ColMode::Plain) || self.comp[k].is_none() {
            return Err(PlanError::Invalid(format!(
                "pushdown on `{col}` requires a plain compressed column"
            )));
        }
        self.push = Some(PushSpec {
            k,
            p,
            sel: Vec::new(),
            tmp: Vec::new(),
            abs: Vec::new(),
            counted: false,
        });
        Ok(())
    }

    /// Read `len` bytes of column `ci` at `offset` through the buffer
    /// manager (if attached), under the query's fault-injection state.
    fn bm_read(&self, ci: usize, offset: u64, len: u64) -> Result<(), PlanError> {
        if let Some(bm) = &self.bm {
            bm.try_access(ci as u32, offset, len, self.ctx.fault_state())
                .map_err(|e| PlanError::Io {
                    site: x100_storage::FaultSite::ChunkRead,
                    unrecoverable: false,
                    detail: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Produce one batch from the fragment region `[start, start+n)`.
    fn emit_fragment(
        &mut self,
        start: usize,
        n: usize,
        prof: &mut Profiler,
    ) -> Result<(), PlanError> {
        if self.push.is_some() {
            // Fused CompressedScanSelect: the spec is taken out for the
            // duration of the emit so the column loop can borrow freely.
            let mut ps = self.push.take().expect("checked is_some");
            let r = self.emit_fragment_pushed(&mut ps, start, n, prof);
            self.push = Some(ps);
            return r;
        }
        self.out.reset();
        self.out.len = n;
        let t_scan = prof.start();
        let mut scan_bytes = 0usize;
        // Decode-on-refill accounting across all compressed columns in
        // this fragment (raw-equivalent bytes, compressed bytes touched,
        // exception patches applied).
        let mut dec_raw = 0u64;
        let mut dec_comp = 0u64;
        let mut dec_exc = 0u64;
        // Column reads to route through the buffer manager; collected
        // so the fallible I/O happens outside the &mut modes borrow.
        let mut reads: Vec<(usize, u64, u64)> = Vec::with_capacity(self.cols.len());
        // Plain/code reads first (the "Scan" operator's own work).
        for (k, &ci) in self.cols.iter().enumerate() {
            let sc = self.table.column(ci);
            let cs = &mut self.comp[k];
            // Compressed chunk reads are their own fault-injection site.
            if cs.is_some() {
                if let Some(fs) = self.ctx.fault_state() {
                    fs.check_site(x100_storage::FaultSite::CompressedRead, ci as u32)
                        .map_err(site_io)?;
                }
            }
            match &mut self.modes[k] {
                ColMode::Plain | ColMode::Codes => {
                    // Dense decode overwrites every position, so the
                    // recycled vector can skip its clear + re-zero pass.
                    let mut v = if cs.is_some() {
                        self.pools[k].writable_dirty()
                    } else {
                        self.pools[k].writable()
                    };
                    if let Some(cs) = cs {
                        let healed_cc = cs.healed.clone();
                        let cc: &x100_storage::CompressedColumn = match healed_cc.as_deref() {
                            Some(h) => h,
                            None => sc
                                .compressed()
                                .expect("CompState without compressed column"),
                        };
                        let t0 = prof.start();
                        let mut res =
                            cc.decode_range(start, n, &mut v, &mut cs.cursor, &mut cs.scratch);
                        // Heal ladder: a checksum mismatch (torn chunk
                        // write) first tries the durable store's disk
                        // replica — a verified copy restores compressed
                        // refills for the rest of the query.
                        if res.is_err() && cs.healed.is_none() {
                            if let Some(hc) = try_heal(&self.table, &self.ctx, prof, ci as u32) {
                                cs.cursor = DecodeCursor::default();
                                res = hc.decode_range(
                                    start,
                                    n,
                                    &mut v,
                                    &mut cs.cursor,
                                    &mut cs.scratch,
                                );
                                if res.is_ok() {
                                    cs.healed = Some(hc);
                                }
                            }
                        }
                        match res {
                            Ok(st) => {
                                prof.record_prim(
                                    cs.sig,
                                    t0,
                                    n,
                                    st.comp_len as usize + v.byte_size(),
                                );
                                prof.max_counter("compress_ratio", cc.ratio_pct());
                                dec_raw += v.byte_size() as u64;
                                dec_comp += st.comp_len;
                                dec_exc += st.exceptions;
                                reads.push((ci, st.comp_offset, st.comp_len));
                            }
                            Err(_) => {
                                // No replica could serve the rows: the
                                // raw fragment is retained and intact,
                                // so recover from it — wrong rows must
                                // never escape a torn chunk. The
                                // fallback is itself a faultable chunk
                                // read: both failing at once is the
                                // double-fault case, with no copy left
                                // to serve the rows.
                                if let Some(fs) = self.ctx.fault_state() {
                                    fs.check_site(x100_storage::FaultSite::ChunkRead, ci as u32)
                                        .map_err(|e| double_fault(ci as u32, e))?;
                                }
                                prof.add_counter("decode_recoveries", 1);
                                cs.cursor = DecodeCursor::default();
                                sc.physical().read_into(start, n, &mut v);
                                reads.push((
                                    ci,
                                    (start * sc.physical_type().width()) as u64,
                                    v.byte_size() as u64,
                                ));
                            }
                        }
                    } else {
                        sc.physical().read_into(start, n, &mut v);
                        reads.push((
                            ci,
                            (start * sc.physical_type().width()) as u64,
                            v.byte_size() as u64,
                        ));
                    }
                    scan_bytes += v.byte_size();
                    self.pools[k].publish(v, &mut self.out);
                }
                ColMode::Decode { codes, .. } => {
                    // Read raw codes now; decode in a second pass so the
                    // fetch cost is attributed to Fetch1Join(ENUM).
                    if let Some(cs) = cs {
                        let healed_cc = cs.healed.clone();
                        let cc: &x100_storage::CompressedColumn = match healed_cc.as_deref() {
                            Some(h) => h,
                            None => sc
                                .compressed()
                                .expect("CompState without compressed column"),
                        };
                        let t0 = prof.start();
                        let mut res =
                            cc.decode_range(start, n, codes, &mut cs.cursor, &mut cs.scratch);
                        if res.is_err() && cs.healed.is_none() {
                            if let Some(hc) = try_heal(&self.table, &self.ctx, prof, ci as u32) {
                                cs.cursor = DecodeCursor::default();
                                res = hc.decode_range(
                                    start,
                                    n,
                                    codes,
                                    &mut cs.cursor,
                                    &mut cs.scratch,
                                );
                                if res.is_ok() {
                                    cs.healed = Some(hc);
                                }
                            }
                        }
                        match res {
                            Ok(st) => {
                                prof.record_prim(
                                    cs.sig,
                                    t0,
                                    n,
                                    st.comp_len as usize + codes.byte_size(),
                                );
                                prof.max_counter("compress_ratio", cc.ratio_pct());
                                dec_raw += codes.byte_size() as u64;
                                dec_comp += st.comp_len;
                                dec_exc += st.exceptions;
                                reads.push((ci, st.comp_offset, st.comp_len));
                            }
                            Err(_) => {
                                if let Some(fs) = self.ctx.fault_state() {
                                    fs.check_site(x100_storage::FaultSite::ChunkRead, ci as u32)
                                        .map_err(|e| double_fault(ci as u32, e))?;
                                }
                                prof.add_counter("decode_recoveries", 1);
                                cs.cursor = DecodeCursor::default();
                                sc.physical().read_into(start, n, codes);
                                reads.push((
                                    ci,
                                    (start * sc.physical_type().width()) as u64,
                                    codes.byte_size() as u64,
                                ));
                            }
                        }
                    } else {
                        sc.physical().read_into(start, n, codes);
                        reads.push((
                            ci,
                            (start * sc.physical_type().width()) as u64,
                            codes.byte_size() as u64,
                        ));
                    }
                    scan_bytes += codes.byte_size();
                    // Placeholder slot; replaced by the decode pass below.
                    self.out.columns.push(self.placeholder.clone());
                }
            }
        }
        prof.record_op("Scan", t_scan, n);
        let _ = scan_bytes;
        if dec_raw > 0 {
            prof.add_counter("scan_bytes_raw", dec_raw);
            prof.add_counter("scan_bytes_compressed", dec_comp);
            prof.add_counter("decode_exceptions", dec_exc);
        }
        // Re-check the governor charge against what the decode scratch
        // buffers actually grew to (PFOR-DELTA sync replay can extend
        // them past one vector).
        if let Some(mem) = &mut self.mem {
            let total: usize = self
                .comp
                .iter()
                .flatten()
                .map(|cs| cs.scratch.capacity() * std::mem::size_of::<u64>())
                .sum();
            mem.ensure(total)?;
        }
        for (ci, offset, len) in reads {
            self.bm_read(ci, offset, len)?;
        }
        // Decode pass: one Fetch1Join(ENUM) per enum column. The
        // dictionary gather is its own fault-injection site.
        for (k, &ci) in self.cols.iter().enumerate() {
            if let ColMode::Decode { codes, sig } = &self.modes[k] {
                if let Some(fs) = self.ctx.fault_state() {
                    fs.check_site(x100_storage::FaultSite::DictLookup, ci as u32)
                        .map_err(site_io)?;
                }
                let dict = self.table.column(ci).dict().ok_or_else(|| {
                    PlanError::Invalid(format!(
                        "decode mode without dictionary on column `{}`",
                        self.fields[k].name
                    ))
                })?;
                let t0 = prof.start();
                let mut v = self.pools[k].writable();
                v.resize_zeroed(n);
                decode_codes(codes, dict.values(), &mut v);
                let bytes = codes.byte_size() + v.byte_size();
                prof.record_prim(sig, t0, n, bytes);
                prof.record_op("Fetch1Join(ENUM)", t0, n);
                self.pools[k].publish_at(v, &mut self.out, k);
            }
        }
        // Deletion mask.
        self.scratch_del.clear();
        self.table.deletes().deleted_in_range(
            start as u32,
            (start + n) as u32,
            &mut self.scratch_del,
        );
        if !self.scratch_del.is_empty() {
            let mut sel = self.sel_pool.writable();
            let buf = sel.buf_mut();
            let mut d = 0usize;
            for i in 0..n as u32 {
                if d < self.scratch_del.len() && self.scratch_del[d] == i {
                    d += 1;
                } else {
                    buf.push(i);
                }
            }
            self.sel_pool.publish(sel, &mut self.out);
        }
        Ok(())
    }

    /// Fused `CompressedScanSelect` refill: evaluate the pushed
    /// predicate in encoded space over `[start, start+n)` — PFOR lanes
    /// are compared packed, PDICT predicates were rewritten against the
    /// dictionary at bind — then decode *only* the surviving positions
    /// of every scanned column. The batch comes out compacted (no
    /// selection vector): unselected values are never materialized.
    fn emit_fragment_pushed(
        &mut self,
        ps: &mut PushSpec,
        start: usize,
        n: usize,
        prof: &mut Profiler,
    ) -> Result<(), PlanError> {
        self.out.reset();
        let t_op = prof.start();
        // Phase 1: selection over the packed lanes of the predicate
        // column, without unpacking.
        let kp = ps.k;
        let ci_p = self.cols[kp];
        if let Some(fs) = self.ctx.fault_state() {
            fs.check_site(x100_storage::FaultSite::CompressedRead, ci_p as u32)
                .map_err(site_io)?;
        }
        let sc_p = self.table.column(ci_p);
        let cs_p = self.comp[kp].as_mut().expect("pushdown without CompState");
        let healed_p = cs_p.healed.clone();
        let cc_p: &x100_storage::CompressedColumn = match healed_p.as_deref() {
            Some(h) => h,
            None => sc_p.compressed().expect("pushdown on uncompressed column"),
        };
        let t0 = prof.start();
        ps.sel.clear();
        let mut recovered = false;
        let mut res =
            cc_p.select_range(&ps.p, start, n, &mut ps.sel, &mut ps.tmp, &mut cs_p.cursor);
        // Heal ladder: retry the encoded-space select over a verified
        // disk-replica copy before dropping to value space.
        if res.is_err() && cs_p.healed.is_none() {
            if let Some(hc) = try_heal(&self.table, &self.ctx, prof, ci_p as u32) {
                cs_p.cursor = DecodeCursor::default();
                ps.sel.clear();
                res = hc.select_range(&ps.p, start, n, &mut ps.sel, &mut ps.tmp, &mut cs_p.cursor);
                if res.is_ok() {
                    cs_p.healed = Some(hc);
                }
            }
        }
        match res {
            Ok(()) => {
                prof.record_prim(ps.p.sig(), t0, n, n * sc_p.physical_type().width());
            }
            Err(_) => {
                // Torn chunk with no replica to serve it: recover by
                // filtering the retained raw fragment in value space —
                // identical survivors, no wrong rows, one counter tick.
                // A fault on the fallback read too is the unrecoverable
                // double-fault case.
                if let Some(fs) = self.ctx.fault_state() {
                    fs.check_site(x100_storage::FaultSite::ChunkRead, ci_p as u32)
                        .map_err(|e| double_fault(ci_p as u32, e))?;
                }
                prof.add_counter("decode_recoveries", 1);
                cs_p.cursor = DecodeCursor::default();
                recovered = true;
                ps.sel.clear();
                raw_filter(sc_p.physical(), start, n, &ps.p, &mut ps.sel);
            }
        }
        prof.add_counter("pushdown_vectors", 1);
        prof.max_counter("compress_ratio", cc_p.ratio_pct());
        if ps.p.is_dict_rewrite() && !ps.counted {
            ps.counted = true;
            prof.add_counter("dict_predicate_rewrites", 1);
        }
        // Deletion mask folds into the selection before any decode.
        self.scratch_del.clear();
        self.table.deletes().deleted_in_range(
            start as u32,
            (start + n) as u32,
            &mut self.scratch_del,
        );
        if !self.scratch_del.is_empty() {
            let dels = &self.scratch_del;
            let mut d = 0usize;
            ps.sel.retain(|&p| {
                while d < dels.len() && dels[d] < p {
                    d += 1;
                }
                !(d < dels.len() && dels[d] == p)
            });
        }
        prof.add_counter("decode_skipped_values", (n - ps.sel.len()) as u64);
        // Phase 2: lazy materialization — decode/gather only the
        // surviving positions of every scanned column.
        self.out.len = ps.sel.len();
        let mut reads = std::mem::take(&mut self.scratch_reads);
        reads.clear();
        for (k, &ci) in self.cols.iter().enumerate() {
            let sc = self.table.column(ci);
            let cs = &mut self.comp[k];
            if cs.is_some() {
                if let Some(fs) = self.ctx.fault_state() {
                    fs.check_site(x100_storage::FaultSite::CompressedRead, ci as u32)
                        .map_err(site_io)?;
                }
            }
            match &mut self.modes[k] {
                ColMode::Plain | ColMode::Codes => {
                    let mut v = self.pools[k].writable();
                    let mut decoded = false;
                    if !recovered {
                        if let Some(cs) = cs {
                            let healed_cc = cs.healed.clone();
                            let cc: &x100_storage::CompressedColumn = match healed_cc.as_deref() {
                                Some(h) => h,
                                None => sc
                                    .compressed()
                                    .expect("CompState without compressed column"),
                            };
                            let t0 = prof.start();
                            if cc.decode_sel_sig().is_some() {
                                match cc.decode_positions(
                                    start,
                                    &ps.sel,
                                    &mut v,
                                    &mut ps.tmp,
                                    &mut cs.cursor,
                                ) {
                                    Ok(st) => {
                                        decoded = true;
                                        let sig =
                                            cc.decode_sel_sig().expect("checked decode_sel_sig");
                                        prof.record_prim(
                                            sig,
                                            t0,
                                            ps.sel.len(),
                                            st.comp_len as usize + v.byte_size(),
                                        );
                                        reads.push((ci, st.comp_offset, st.comp_len));
                                    }
                                    Err(_) => {
                                        if let Some(fs) = self.ctx.fault_state() {
                                            fs.check_site(
                                                x100_storage::FaultSite::ChunkRead,
                                                ci as u32,
                                            )
                                            .map_err(|e| double_fault(ci as u32, e))?;
                                        }
                                        prof.add_counter("decode_recoveries", 1);
                                        cs.cursor = DecodeCursor::default();
                                    }
                                }
                            } else {
                                // PFOR-DELTA co-column: positional seek
                                // from the nearest sync point.
                                ps.abs.clear();
                                ps.abs.extend(ps.sel.iter().map(|&p| start as u32 + p));
                                match cc.gather(
                                    &ps.abs,
                                    &mut v,
                                    &mut cs.scratch,
                                    &mut ps.tmp,
                                    &mut cs.cursor,
                                ) {
                                    Ok(()) => {
                                        decoded = true;
                                        prof.record_prim(cs.sig, t0, ps.sel.len(), v.byte_size());
                                        reads.push((ci, 0, v.byte_size() as u64));
                                    }
                                    Err(_) => {
                                        if let Some(fs) = self.ctx.fault_state() {
                                            fs.check_site(
                                                x100_storage::FaultSite::ChunkRead,
                                                ci as u32,
                                            )
                                            .map_err(|e| double_fault(ci as u32, e))?;
                                        }
                                        prof.add_counter("decode_recoveries", 1);
                                        cs.cursor = DecodeCursor::default();
                                    }
                                }
                            }
                        }
                    }
                    if !decoded {
                        // Raw fragment gather: only selected positions
                        // are touched (also the torn-chunk recovery).
                        gather_raw(sc.physical(), start, &ps.sel, &mut v);
                        reads.push((
                            ci,
                            (start * sc.physical_type().width()) as u64,
                            v.byte_size() as u64,
                        ));
                    }
                    self.pools[k].publish(v, &mut self.out);
                }
                ColMode::Decode { codes, sig } => {
                    // Gather surviving codes, then dictionary-decode the
                    // compacted code vector (Fetch1Join(ENUM) as usual,
                    // but over survivors only).
                    gather_raw(sc.physical(), start, &ps.sel, codes);
                    reads.push((
                        ci,
                        (start * sc.physical_type().width()) as u64,
                        codes.byte_size() as u64,
                    ));
                    if let Some(fs) = self.ctx.fault_state() {
                        fs.check_site(x100_storage::FaultSite::DictLookup, ci as u32)
                            .map_err(site_io)?;
                    }
                    let dict = self.table.column(ci).dict().ok_or_else(|| {
                        PlanError::Invalid(format!(
                            "decode mode without dictionary on column `{}`",
                            self.fields[k].name
                        ))
                    })?;
                    let t0 = prof.start();
                    let mut v = self.pools[k].writable();
                    v.resize_zeroed(ps.sel.len());
                    decode_codes(codes, dict.values(), &mut v);
                    prof.record_prim(sig, t0, ps.sel.len(), codes.byte_size() + v.byte_size());
                    prof.record_op("Fetch1Join(ENUM)", t0, ps.sel.len());
                    self.pools[k].publish(v, &mut self.out);
                }
            }
        }
        prof.record_op("CompressedScanSelect", t_op, n);
        if let Some(mem) = &mut self.mem {
            let total: usize = self
                .comp
                .iter()
                .flatten()
                .map(|cs| cs.scratch.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>()
                + (ps.sel.capacity() + ps.tmp.capacity() + ps.abs.capacity())
                    * std::mem::size_of::<u32>();
            mem.ensure(total)?;
        }
        for &(ci, offset, len) in &reads {
            self.bm_read(ci, offset, len)?;
        }
        self.scratch_reads = reads;
        Ok(())
    }

    /// Produce one batch from the delta region. Delta reads are their
    /// own fault-injection site, distinct from chunked fragment reads.
    fn emit_delta(&mut self, start: usize, n: usize, prof: &mut Profiler) -> Result<(), PlanError> {
        self.out.reset();
        self.out.len = n;
        let t_scan = prof.start();
        for (k, &ci) in self.cols.iter().enumerate() {
            if let Some(fs) = self.ctx.fault_state() {
                fs.check_site(x100_storage::FaultSite::DeltaRead, ci as u32)
                    .map_err(site_io)?;
            }
            let mut v = self.pools[k].writable();
            // Delta rows are stored logically; code columns cannot be
            // served from the delta (the binder rejects code scans on
            // tables with pending inserts).
            match self.modes[k] {
                ColMode::Codes => unreachable!(
                    "raw-code scan of column `{}` with pending insert deltas rejected at bind",
                    self.fields[k].name
                ),
                _ => self.table.read_delta(ci, start, n, &mut v),
            }
            self.pools[k].publish(v, &mut self.out);
        }
        prof.record_op("Scan(delta)", t_scan, n);
        let base = (self.table.fragment_rows() + start) as u32;
        self.scratch_del.clear();
        self.table
            .deletes()
            .deleted_in_range(base, base + n as u32, &mut self.scratch_del);
        if !self.scratch_del.is_empty() {
            let mut sel = self.sel_pool.writable();
            let buf = sel.buf_mut();
            let mut d = 0usize;
            for i in 0..n as u32 {
                if d < self.scratch_del.len() && self.scratch_del[d] == i {
                    d += 1;
                } else {
                    buf.push(i);
                }
            }
            self.sel_pool.publish(sel, &mut self.out);
        }
        Ok(())
    }
}

/// Decode enum codes through the dictionary into a logical vector.
/// Typed I/O error for a storage-fault site that exhausted its retries.
fn site_io(e: x100_storage::StorageFaultError) -> PlanError {
    PlanError::Io {
        site: e.site,
        unrecoverable: false,
        detail: e.to_string(),
    }
}

/// Typed unrecoverable I/O error: a compressed chunk was torn *and* the
/// raw-fragment fallback read faulted too — no intact copy remains, so
/// recovery is impossible. (Durably checkpointed tables rarely get
/// here: the heal ladder fetches a disk replica first.)
fn double_fault(col: u32, e: x100_storage::StorageFaultError) -> PlanError {
    PlanError::Io {
        site: x100_storage::FaultSite::ChunkRead,
        unrecoverable: true,
        detail: format!(
            "column {col}: torn compressed chunk and raw-fragment fallback both failed ({e})"
        ),
    }
}

/// First rung of the heal ladder (DESIGN.md §14): when a compressed
/// chunk fails its checksum mid-query, fetch the column's verified
/// copy from a durable-store replica. Returns `None` when the table
/// has no durable checkpoint or every replica failed — the caller
/// drops to the raw-fragment fallback (the PR 6 contract). Counts
/// `chunk_heals` only when *this* query performed the heal; concurrent
/// queries racing on the same damage share one heal via the source's
/// cache.
fn try_heal(
    table: &Table,
    ctx: &QueryContext,
    prof: &mut Profiler,
    ci: u32,
) -> Option<Arc<x100_storage::CompressedColumn>> {
    let ds = table.durable_source()?;
    match ds.recover_column(ci, ctx.fault_state()) {
        Ok((cc, healed_now)) => {
            if healed_now {
                prof.add_counter("chunk_heals", 1);
            }
            Some(cc)
        }
        Err(_) => None,
    }
}

fn decode_codes(codes: &Vector, dict: &ColumnData, out: &mut Vector) {
    use x100_vector::fetch::{fetch_u16_codes, fetch_u8_codes};
    match (codes, dict, out) {
        (Vector::U8(c), ColumnData::F64(d), Vector::F64(o)) => fetch_u8_codes(o, d, c, None),
        (Vector::U8(c), ColumnData::I64(d), Vector::I64(o)) => fetch_u8_codes(o, d, c, None),
        (Vector::U8(c), ColumnData::I32(d), Vector::I32(o)) => fetch_u8_codes(o, d, c, None),
        (Vector::U16(c), ColumnData::F64(d), Vector::F64(o)) => fetch_u16_codes(o, d, c, None),
        (Vector::U16(c), ColumnData::I64(d), Vector::I64(o)) => fetch_u16_codes(o, d, c, None),
        (Vector::U16(c), ColumnData::I32(d), Vector::I32(o)) => fetch_u16_codes(o, d, c, None),
        (Vector::U8(c), ColumnData::Str(d), Vector::Str(o)) => {
            o.clear();
            for &code in c {
                o.push(d.get(code as usize));
            }
        }
        (Vector::U16(c), ColumnData::Str(d), Vector::Str(o)) => {
            o.clear();
            for &code in c {
                o.push(d.get(code as usize));
            }
        }
        (c, d, o) => panic!(
            "decode mismatch: codes {:?}, dict {:?}, out {:?}",
            c.scalar_type(),
            d.scalar_type(),
            o.scalar_type()
        ),
    }
}

/// Gather `data[start + sel[j]]` into a compacted vector: the raw-side
/// half of the lazy-materialization path (only survivors are touched).
fn gather_raw(data: &ColumnData, start: usize, sel: &[u32], out: &mut Vector) {
    macro_rules! g {
        ($b:expr, $o:expr) => {{
            $o.clear();
            $o.extend(sel.iter().map(|&p| $b[start + p as usize]));
        }};
    }
    match (data, out) {
        (ColumnData::I8(b), Vector::I8(o)) => g!(b, o),
        (ColumnData::I16(b), Vector::I16(o)) => g!(b, o),
        (ColumnData::I32(b), Vector::I32(o)) => g!(b, o),
        (ColumnData::I64(b), Vector::I64(o)) => g!(b, o),
        (ColumnData::U8(b), Vector::U8(o)) => g!(b, o),
        (ColumnData::U16(b), Vector::U16(o)) => g!(b, o),
        (ColumnData::U32(b), Vector::U32(o)) => g!(b, o),
        (ColumnData::U64(b), Vector::U64(o)) => g!(b, o),
        (ColumnData::F64(b), Vector::F64(o)) => g!(b, o),
        (ColumnData::Str(b), Vector::Str(o)) => {
            o.clear();
            for &p in sel {
                o.push(b.get(start + p as usize));
            }
        }
        (d, o) => panic!(
            "gather_raw mismatch: column {:?}, out {:?}",
            d.scalar_type(),
            o.scalar_type()
        ),
    }
}

/// Value-space twin of the encoded-space pushdown, over the retained raw
/// fragment — the torn-chunk recovery path. Semantics match the
/// compressed kernels exactly (native comparisons, `Between` inclusive).
fn raw_filter(data: &ColumnData, start: usize, n: usize, p: &Pushdown, out: &mut Vec<u32>) {
    fn keep<T: PartialOrd + Copy>(a: &[T], lo: T, hi: Option<T>, op: PushOp, out: &mut Vec<u32>) {
        for (i, &x) in a.iter().enumerate() {
            let hit = match op {
                PushOp::Eq => x == lo,
                PushOp::Ne => x != lo,
                PushOp::Lt => x < lo,
                PushOp::Le => x <= lo,
                PushOp::Gt => x > lo,
                PushOp::Ge => x >= lo,
                PushOp::Between => x >= lo && hi.is_some_and(|h| x <= h),
            };
            if hit {
                out.push(i as u32);
            }
        }
    }
    macro_rules! f {
        ($b:expr, $vv:ident) => {{
            let lo = match p.lo() {
                Value::$vv(x) => *x,
                _ => unreachable!("pushdown constant type-checked at compile"),
            };
            let hi = p.hi().map(|h| match h {
                Value::$vv(x) => *x,
                _ => unreachable!("pushdown constant type-checked at compile"),
            });
            keep(&$b[start..start + n], lo, hi, p.op(), out)
        }};
    }
    match data {
        ColumnData::I8(b) => f!(b, I8),
        ColumnData::I16(b) => f!(b, I16),
        ColumnData::I32(b) => f!(b, I32),
        ColumnData::I64(b) => f!(b, I64),
        ColumnData::U8(b) => f!(b, U8),
        ColumnData::U16(b) => f!(b, U16),
        ColumnData::U32(b) => f!(b, U32),
        ColumnData::U64(b) => f!(b, U64),
        ColumnData::F64(b) => f!(b, F64),
        ColumnData::Str(b) => {
            let lo = match p.lo() {
                Value::Str(x) => x.as_str(),
                _ => unreachable!("pushdown constant type-checked at compile"),
            };
            let hi = p.hi().map(|h| match h {
                Value::Str(x) => x.as_str(),
                _ => unreachable!("pushdown constant type-checked at compile"),
            });
            for i in 0..n {
                let x = b.get(start + i);
                let hit = match p.op() {
                    PushOp::Eq => x == lo,
                    PushOp::Ne => x != lo,
                    PushOp::Lt => x < lo,
                    PushOp::Le => x <= lo,
                    PushOp::Gt => x > lo,
                    PushOp::Ge => x >= lo,
                    PushOp::Between => x >= lo && hi.is_some_and(|h| x <= h),
                };
                if hit {
                    out.push(i as u32);
                }
            }
        }
    }
}

impl Operator for ScanOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        // One governance checkpoint per produced vector.
        self.ctx.check()?;
        if self.morsels.is_some() {
            loop {
                let m = match self.morsels.as_ref().and_then(|ms| ms.get(self.mcur)) {
                    None => return Ok(None),
                    Some(&m) => m,
                };
                if self.moff >= m.len {
                    self.mcur += 1;
                    self.moff = 0;
                    continue;
                }
                let n = (m.len - self.moff).min(self.vector_size);
                let start = m.start + self.moff;
                self.moff += n;
                if m.delta {
                    self.emit_delta(start, n, prof)?;
                } else {
                    self.emit_fragment(start, n, prof)?;
                }
                return Ok(Some(&self.out));
            }
        }
        if self.pos < self.range.1 {
            let n = (self.range.1 - self.pos).min(self.vector_size);
            let start = self.pos;
            self.pos += n;
            self.emit_fragment(start, n, prof)?;
            return Ok(Some(&self.out));
        }
        let delta = self.table.delta_rows();
        if self.delta_pos < delta {
            let n = (delta - self.delta_pos).min(self.vector_size);
            let start = self.delta_pos;
            self.delta_pos += n;
            self.emit_delta(start, n, prof)?;
            return Ok(Some(&self.out));
        }
        Ok(None)
    }

    fn reset(&mut self) {
        self.pos = self.range.0;
        self.delta_pos = 0;
        self.mcur = 0;
        self.moff = 0;
        // Drop sequential decode positions so a re-run starts clean.
        for cs in self.comp.iter_mut().flatten() {
            cs.cursor = DecodeCursor::default();
        }
    }
}
