//! `Array(List<Exp<int>>) : Dataflow` (paper §4.1.2).
//!
//! "The Array operator generates a Dataflow representing a
//! N-dimensional array as a N-ary relation containing all valid array
//! index coordinates in column-major dimension order. It is used by the
//! RAM array manipulation front-end for the MonetDB system [9]."

use crate::batch::{Batch, OutField, VecPool};
use crate::ops::Operator;
use crate::profile::Profiler;
use crate::PlanError;

/// The array coordinate generator.
pub struct ArrayOp {
    dims: Vec<i64>,
    fields: Vec<OutField>,
    total: u64,
    pos: u64,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
}

impl ArrayOp {
    /// An `N`-dimensional array dataflow with the given extents; output
    /// columns are named `d0, d1, …` (i64 coordinates).
    pub fn new(dims: &[i64], vector_size: usize) -> Result<Self, PlanError> {
        if dims.is_empty() || dims.iter().any(|&d| d <= 0) {
            return Err(PlanError::Invalid(
                "array dimensions must be positive".to_owned(),
            ));
        }
        let total = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .ok_or_else(|| PlanError::Invalid("array coordinate space overflows u64".to_owned()))?;
        let fields: Vec<OutField> = (0..dims.len())
            .map(|i| OutField::new(format!("d{i}"), x100_vector::ScalarType::I64))
            .collect();
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(ArrayOp {
            dims: dims.to_vec(),
            fields,
            total,
            pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
        })
    }
}

impl Operator for ArrayOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if self.pos >= self.total {
            return Ok(None);
        }
        let t0 = prof.start();
        let n = ((self.total - self.pos) as usize).min(self.vector_size);
        self.out.reset();
        self.out.len = n;
        // Column-major: dimension 0 varies fastest.
        for (d, pool) in self.pools.iter_mut().enumerate() {
            let mut v = pool.writable();
            {
                let buf = v.as_i64_mut();
                let stride: u64 = self.dims[..d].iter().map(|&x| x as u64).product();
                let extent = self.dims[d] as u64;
                for k in 0..n as u64 {
                    let linear = self.pos + k;
                    buf.push(((linear / stride) % extent) as i64);
                }
            }
            pool.publish(v, &mut self.out);
        }
        self.pos += n as u64;
        prof.record_op("Array", t0, n);
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}
