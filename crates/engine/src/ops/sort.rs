//! `Order` and `TopN` (paper Fig. 7).
//!
//! `Order(Table, List<OrdExp>, …) : Table` — in the paper, ordering
//! materializes; here [`OrderOp`] materializes its input dataflow,
//! sorts a permutation, and re-emits vector-at-a-time.
//!
//! `TopN(Dataflow, List<OrdExp>, List<Exp>, int) : Dataflow` keeps a
//! bounded heap and emits the `n` smallest (per the sort spec) rows.

use crate::batch::{Batch, OutField, VecPool};
use crate::govern::{MemTracker, QueryContext};
use crate::ops::{cmp_at, push_from, Operator};
use crate::profile::Profiler;
use crate::PlanError;
use std::cmp::Ordering;
use x100_vector::Vector;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One ordering key: column name + direction.
#[derive(Debug, Clone)]
pub struct OrdExp {
    /// Column to sort on.
    pub col: String,
    /// Direction.
    pub order: SortOrder,
}

impl OrdExp {
    /// `col ASC`.
    pub fn asc(col: impl Into<String>) -> Self {
        OrdExp {
            col: col.into(),
            order: SortOrder::Asc,
        }
    }

    /// `col DESC`.
    pub fn desc(col: impl Into<String>) -> Self {
        OrdExp {
            col: col.into(),
            order: SortOrder::Desc,
        }
    }
}

/// Materializing sort operator.
pub struct OrderOp {
    child: Box<dyn Operator>,
    keys: Vec<(usize, SortOrder)>,
    fields: Vec<OutField>,
    // Materialized input (full columns) + sorted permutation.
    store: Vec<Vector>,
    perm: Vec<u32>,
    built: bool,
    emit_pos: usize,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    mem: MemTracker,
}

impl OrderOp {
    /// Bind a sort on `keys` over `child`.
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[OrdExp],
        vector_size: usize,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let fields = child.fields().to_vec();
        let mut bound = Vec::new();
        for k in keys {
            let i = fields
                .iter()
                .position(|f| f.name == k.col)
                .ok_or_else(|| PlanError::UnknownColumn(k.col.clone()))?;
            bound.push((i, k.order));
        }
        let store = fields
            .iter()
            .map(|f| Vector::with_capacity(f.ty, 0))
            .collect();
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(OrderOp {
            child,
            keys: bound,
            fields,
            store,
            perm: Vec::new(),
            built: false,
            emit_pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
            mem: MemTracker::new(ctx, "order/top-n buffer"),
        })
    }

    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        // Materialize live tuples column-wise, charging the growing
        // buffer (plus the permutation to come) against the budget.
        while let Some(batch) = self.child.next(prof)? {
            match batch.sel.as_deref() {
                None => {
                    for (s, c) in self.store.iter_mut().zip(batch.columns.iter()) {
                        crate::ops::extend_range(s, c, 0, batch.len);
                    }
                }
                Some(sel) => {
                    for (s, c) in self.store.iter_mut().zip(batch.columns.iter()) {
                        for i in sel.iter() {
                            push_from(s, c, i);
                        }
                    }
                }
            }
            let rows = self.store.first().map_or(0, |v| v.len());
            let bytes: usize = self.store.iter().map(|v| v.byte_size()).sum();
            self.mem.ensure(bytes + rows * 4)?;
        }
        let n = self.store.first().map_or(0, |v| v.len());
        let t_op = prof.start();
        self.perm = (0..n as u32).collect();
        let keys = &self.keys;
        let store = &self.store;
        let t0 = prof.start();
        self.perm.sort_by(|&a, &b| {
            for &(col, ord) in keys {
                let c = cmp_at(&store[col], a as usize, &store[col], b as usize);
                let c = if ord == SortOrder::Desc {
                    c.reverse()
                } else {
                    c
                };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        prof.record_prim("sort_permutation", t0, n, n * 4);
        prof.record_op("Order", t_op, n);
        self.built = true;
        Ok(())
    }
}

impl Operator for OrderOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        if self.emit_pos >= self.perm.len() {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.perm.len() - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        for (k, s) in self.store.iter().enumerate() {
            let mut v = self.pools[k].writable();
            for &p in &self.perm[start..start + n] {
                push_from(&mut v, s, p as usize);
            }
            self.pools[k].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        for v in &mut self.store {
            v.clear();
        }
        self.perm.clear();
        self.built = false;
        self.emit_pos = 0;
        self.mem.release_all();
    }
}

/// Bounded top-N operator: keeps the best `limit` rows by the sort spec.
pub struct TopNOp {
    inner: OrderOp,
    limit: usize,
}

impl TopNOp {
    /// Bind a TopN over `child`.
    ///
    /// Implemented as a full sort with bounded emission: the paper's
    /// heap-based variant is an optimization with identical semantics,
    /// and result sizes here are small.
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[OrdExp],
        limit: usize,
        vector_size: usize,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        Ok(TopNOp {
            inner: OrderOp::new(child, keys, vector_size, ctx)?,
            limit,
        })
    }
}

impl Operator for TopNOp {
    fn fields(&self) -> &[OutField] {
        self.inner.fields()
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.inner.built {
            self.inner.build(prof)?;
            self.inner.perm.truncate(self.limit);
        }
        self.inner.next(prof)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}
