//! `Order` and `TopN` (paper Fig. 7).
//!
//! `Order(Table, List<OrdExp>, …) : Table` — in the paper, ordering
//! materializes; here [`OrderOp`] materializes its input dataflow,
//! sorts a permutation, and re-emits vector-at-a-time.
//!
//! `TopN(Dataflow, List<OrdExp>, List<Exp>, int) : Dataflow` keeps a
//! bounded heap and emits the `n` smallest (per the sort spec) rows.
//!
//! Under memory pressure (a failed [`MemTracker::try_ensure`] probe
//! with a spill budget configured) the materializing buffer degrades
//! to an **external merge sort**: the current store is sorted and
//! written as an on-disk run (DESIGN.md §12), freed, and the build
//! continues; emission then k-way-merges the runs vector-at-a-time
//! with a run-index tie-break, which reproduces the stable in-memory
//! sort byte for byte. Fan-in beyond [`MERGE_FAN_IN`] triggers extra
//! merge passes (counted as `spill_merge_passes`).

use crate::batch::{Batch, OutField, VecPool};
use crate::govern::{MemTracker, QueryContext};
use crate::ops::{cmp_at, push_from, Operator};
use crate::profile::Profiler;
use crate::spill::{RunReader, SpillManager, SpillRun, SPILL_BLOCK_ROWS};
use crate::PlanError;
use std::cmp::Ordering;
use std::sync::Arc;
use x100_vector::Vector;

/// Maximum runs merged in one pass: keeps merge state at
/// `MERGE_FAN_IN` in-cache blocks regardless of how many runs the
/// budget forced.
const MERGE_FAN_IN: usize = 8;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One ordering key: column name + direction.
#[derive(Debug, Clone)]
pub struct OrdExp {
    /// Column to sort on.
    pub col: String,
    /// Direction.
    pub order: SortOrder,
}

impl OrdExp {
    /// `col ASC`.
    pub fn asc(col: impl Into<String>) -> Self {
        OrdExp {
            col: col.into(),
            order: SortOrder::Asc,
        }
    }

    /// `col DESC`.
    pub fn desc(col: impl Into<String>) -> Self {
        OrdExp {
            col: col.into(),
            order: SortOrder::Desc,
        }
    }
}

/// Materializing sort operator.
pub struct OrderOp {
    child: Box<dyn Operator>,
    keys: Vec<(usize, SortOrder)>,
    fields: Vec<OutField>,
    // Materialized input (full columns) + sorted permutation.
    store: Vec<Vector>,
    perm: Vec<u32>,
    built: bool,
    emit_pos: usize,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    mem: MemTracker,
    /// Bounded emission for TopN (set by [`TopNOp`]).
    limit: Option<usize>,
    /// Sorted on-disk runs, in build order (earlier runs hold earlier
    /// input rows, which the merge tie-break relies on for stability).
    runs: Vec<SpillRun>,
    /// Streaming k-way merge over `runs`, when the build spilled.
    merge: Option<Vec<MergeCursor>>,
}

/// One run's read position inside the k-way merge.
struct MergeCursor {
    reader: RunReader,
    block: Vec<Vector>,
    pos: usize,
    len: usize,
    done: bool,
}

impl MergeCursor {
    fn open(
        run: &SpillRun,
        mgr: &Arc<SpillManager>,
        ctx: &Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut c = MergeCursor {
            reader: run.reader(mgr, ctx)?,
            block: Vec::new(),
            pos: 0,
            len: 0,
            done: false,
        };
        c.refill()?;
        Ok(c)
    }

    fn refill(&mut self) -> Result<(), PlanError> {
        match self.reader.next_block(&mut self.block)? {
            Some(n) => {
                self.pos = 0;
                self.len = n;
            }
            None => self.done = true,
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.done || self.pos >= self.len
    }

    fn advance(&mut self) -> Result<(), PlanError> {
        self.pos += 1;
        if self.pos >= self.len && !self.done {
            self.refill()?;
        }
        Ok(())
    }
}

/// Compare the current rows of two cursors under the sort spec.
fn cursor_cmp(a: &MergeCursor, b: &MergeCursor, keys: &[(usize, SortOrder)]) -> Ordering {
    for &(col, ord) in keys {
        let c = cmp_at(&a.block[col], a.pos, &b.block[col], b.pos);
        let c = if ord == SortOrder::Desc {
            c.reverse()
        } else {
            c
        };
        if c != Ordering::Equal {
            return c;
        }
    }
    Ordering::Equal
}

/// Index of the cursor holding the smallest current row; ties go to
/// the lowest run index (earlier input rows), reproducing the stable
/// in-memory sort.
fn pick_winner(cursors: &[MergeCursor], keys: &[(usize, SortOrder)]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, c) in cursors.iter().enumerate() {
        if c.exhausted() {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) => {
                if cursor_cmp(c, &cursors[b], keys) == Ordering::Less {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Stable sort permutation of `store` under `keys`.
fn sorted_perm(store: &[Vector], keys: &[(usize, SortOrder)]) -> Vec<u32> {
    let n = store.first().map_or(0, |v| v.len());
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for &(col, ord) in keys {
            let c = cmp_at(&store[col], a as usize, &store[col], b as usize);
            let c = if ord == SortOrder::Desc {
                c.reverse()
            } else {
                c
            };
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    });
    perm
}

impl OrderOp {
    /// Bind a sort on `keys` over `child`.
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[OrdExp],
        vector_size: usize,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let fields = child.fields().to_vec();
        let mut bound = Vec::new();
        for k in keys {
            let i = fields
                .iter()
                .position(|f| f.name == k.col)
                .ok_or_else(|| PlanError::UnknownColumn(k.col.clone()))?;
            bound.push((i, k.order));
        }
        let store = fields
            .iter()
            .map(|f| Vector::with_capacity(f.ty, 0))
            .collect();
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(OrderOp {
            child,
            keys: bound,
            fields,
            store,
            perm: Vec::new(),
            built: false,
            emit_pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
            mem: MemTracker::new(ctx, "order/top-n buffer"),
            limit: None,
            runs: Vec::new(),
            merge: None,
        })
    }

    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        let mut total_rows = 0usize;
        // Materialize live tuples column-wise, charging the growing
        // buffer (plus the permutation to come) against the budget.
        while let Some(batch) = self.child.next(prof)? {
            match batch.sel.as_deref() {
                None => {
                    for (s, c) in self.store.iter_mut().zip(batch.columns.iter()) {
                        crate::ops::extend_range(s, c, 0, batch.len);
                    }
                }
                Some(sel) => {
                    for (s, c) in self.store.iter_mut().zip(batch.columns.iter()) {
                        for i in sel.iter() {
                            push_from(s, c, i);
                        }
                    }
                }
            }
            let rows = self.store.first().map_or(0, |v| v.len());
            let bytes: usize = self.store.iter().map(|v| v.byte_size()).sum();
            let need = bytes + rows * 4;
            if !self.mem.try_ensure(need) {
                // Memory budget exhausted. With a spill budget, sort
                // what we have and evict it as an on-disk run; without
                // one, abort exactly as before the spill subsystem.
                if self.mem.context().spill_budget().is_some() && rows > 0 {
                    total_rows += rows;
                    self.spill_sorted_run(prof)?;
                } else {
                    self.mem.ensure(need)?;
                }
            }
        }
        let n = self.store.first().map_or(0, |v| v.len());
        let t_op = prof.start();
        if self.runs.is_empty() {
            let t0 = prof.start();
            self.perm = sorted_perm(&self.store, &self.keys);
            prof.record_prim("sort_permutation", t0, n, n * 4);
            if let Some(l) = self.limit {
                self.perm.truncate(l);
            }
            prof.record_op("Order", t_op, n);
        } else {
            // External path: the in-memory remainder becomes the last
            // run, then a (possibly multi-pass) k-way merge streams
            // the total order back, one block per run in cache.
            total_rows += n;
            if n > 0 {
                self.spill_sorted_run(prof)?;
            }
            self.prepare_merge()?;
            prof.record_op("Order", t_op, total_rows);
        }
        self.built = true;
        Ok(())
    }

    /// Sort the current store and evict it as one spill run, freeing
    /// the memory charge.
    fn spill_sorted_run(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        let n = self.store.first().map_or(0, |v| v.len());
        let t0 = prof.start();
        let perm = sorted_perm(&self.store, &self.keys);
        prof.record_prim("sort_permutation", t0, n, n * 4);
        let ctx = Arc::clone(self.mem.context());
        let mgr = ctx.spill_manager()?;
        let mut w = mgr.start_run(&ctx, "order/top-n buffer")?;
        let mut block: Vec<Vector> = Vec::new();
        for chunk in perm.chunks(SPILL_BLOCK_ROWS) {
            block.clear();
            for s in &self.store {
                let mut v = Vector::with_capacity(s.scalar_type(), chunk.len());
                for &p in chunk {
                    push_from(&mut v, s, p as usize);
                }
                block.push(v);
            }
            w.write_block(&block)?;
        }
        self.runs.push(w.finish()?);
        for (s, f) in self.store.iter_mut().zip(self.fields.iter()) {
            *s = Vector::with_capacity(f.ty, 0);
        }
        self.perm.clear();
        self.mem.release_all();
        Ok(())
    }

    /// Reduce fan-in to [`MERGE_FAN_IN`] with intermediate merge
    /// passes, then open the final streaming merge.
    fn prepare_merge(&mut self) -> Result<(), PlanError> {
        let ctx = Arc::clone(self.mem.context());
        let mgr = ctx.spill_manager()?;
        while self.runs.len() > MERGE_FAN_IN {
            mgr.note_merge_pass();
            let sources = std::mem::take(&mut self.runs);
            for group in sources.chunks(MERGE_FAN_IN) {
                if group.len() == 1 {
                    self.runs.push(group[0].clone());
                    continue;
                }
                let mut cursors = group
                    .iter()
                    .map(|r| MergeCursor::open(r, &mgr, &ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut w = mgr.start_run(&ctx, "order/top-n merge")?;
                let mut block: Vec<Vector> = self
                    .fields
                    .iter()
                    .map(|f| Vector::with_capacity(f.ty, SPILL_BLOCK_ROWS))
                    .collect();
                let mut rows = 0usize;
                while let Some(win) = pick_winner(&cursors, &self.keys) {
                    for (k, v) in block.iter_mut().enumerate() {
                        push_from(v, &cursors[win].block[k], cursors[win].pos);
                    }
                    cursors[win].advance()?;
                    rows += 1;
                    if rows == SPILL_BLOCK_ROWS {
                        w.write_block(&block)?;
                        for (v, f) in block.iter_mut().zip(self.fields.iter()) {
                            *v = Vector::with_capacity(f.ty, SPILL_BLOCK_ROWS);
                        }
                        rows = 0;
                    }
                }
                if rows > 0 {
                    w.write_block(&block)?;
                }
                self.runs.push(w.finish()?);
            }
        }
        let cursors = self
            .runs
            .iter()
            .map(|r| MergeCursor::open(r, &mgr, &ctx))
            .collect::<Result<Vec<_>, _>>()?;
        self.merge = Some(cursors);
        Ok(())
    }
}

impl Operator for OrderOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        if let Some(cursors) = &mut self.merge {
            // Streaming emission of the k-way merge: one block per
            // run in memory, bounded regardless of input size.
            let left = self
                .limit
                .map_or(usize::MAX, |l| l.saturating_sub(self.emit_pos));
            let take = self.vector_size.min(left);
            if take == 0 {
                return Ok(None);
            }
            self.out.reset();
            let mut cols: Vec<Vector> = (0..self.fields.len())
                .map(|k| self.pools[k].writable())
                .collect();
            let mut n = 0usize;
            while n < take {
                let Some(win) = pick_winner(cursors, &self.keys) else {
                    break;
                };
                for (k, v) in cols.iter_mut().enumerate() {
                    push_from(v, &cursors[win].block[k], cursors[win].pos);
                }
                cursors[win].advance()?;
                n += 1;
            }
            if n == 0 {
                return Ok(None);
            }
            self.emit_pos += n;
            self.out.len = n;
            for (k, v) in cols.into_iter().enumerate() {
                self.pools[k].publish(v, &mut self.out);
            }
            return Ok(Some(&self.out));
        }
        if self.emit_pos >= self.perm.len() {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.perm.len() - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        for (k, s) in self.store.iter().enumerate() {
            let mut v = self.pools[k].writable();
            for &p in &self.perm[start..start + n] {
                push_from(&mut v, s, p as usize);
            }
            self.pools[k].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        for v in &mut self.store {
            v.clear();
        }
        self.perm.clear();
        self.runs.clear();
        self.merge = None;
        self.built = false;
        self.emit_pos = 0;
        self.mem.release_all();
    }
}

/// Bounded top-N operator: keeps the best `limit` rows by the sort spec.
pub struct TopNOp {
    inner: OrderOp,
}

impl TopNOp {
    /// Bind a TopN over `child`.
    ///
    /// Implemented as a full sort with bounded emission: the paper's
    /// heap-based variant is an optimization with identical semantics,
    /// and result sizes here are small.
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[OrdExp],
        limit: usize,
        vector_size: usize,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut inner = OrderOp::new(child, keys, vector_size, ctx)?;
        inner.limit = Some(limit);
        Ok(TopNOp { inner })
    }
}

impl Operator for TopNOp {
    fn fields(&self) -> &[OutField] {
        self.inner.fields()
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        self.inner.next(prof)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}
