//! Morsel-driven parallel execution (beyond the paper).
//!
//! The paper's engine is single-threaded; this module adds intra-query
//! parallelism for the most bandwidth-hungry plan shape — an
//! aggregation over a scan pipeline — without touching the sequential
//! path:
//!
//! 1. [`decompose`] splits a plan into *wrappers* (`Order` / `TopN` /
//!    `Project` / `Select` above the aggregation) and the aggregation
//!    subtree (`Aggr`/`DirectAggr` over a
//!    `Select`/`Project`/`Fetch1Join`/`FetchNJoin`/`HashJoin`-probe
//!    chain ending in a `Scan`). Any other shape falls back to
//!    sequential execution. For each `HashJoin` on the chain the driver
//!    builds the radix-partitioned [`crate::ops::JoinBuildTable`] *once*
//!    on the main thread; workers probe it through read-only
//!    [`crate::ops::HashJoinProbeOp`]s (build once, probe many).
//! 2. The scan's row space — the (summary-pruned) fragment range plus
//!    the insert-delta tail — is cut into [`Morsel`]s. Worker `w` of
//!    `T` statically takes morsels `w, w+T, w+2T, …`: assignment does
//!    not depend on thread timing, so a given `(threads, morsel_size)`
//!    always aggregates the same rows in the same per-worker order.
//! 3. Each worker binds its *own* clone of the vector pipeline (the
//!    `Rc`-based batch machinery stays thread-local) over its morsels
//!    and materializes partial aggregation state
//!    ([`Operator::take_partial_aggr`]).
//! 4. [`MergeAggrOp`] re-aggregates the partials in worker order —
//!    sums/counts add, `min`/`max` fold, AVG divides merged sums by
//!    merged counts at emission — and feeds the rebound wrappers.
//!
//! Worker results merge in worker-index order, so output is
//! deterministic for a fixed `(threads, morsel_size)`. Floating-point
//! sums may differ from the sequential plan in the last ulp (different
//! association order); integer results are exact.

use crate::batch::{Batch, OutField, VecPool};
use crate::expr::{AggFunc, Expr};
use crate::govern::{panic_cause, QueryContext};
use crate::ops::aggr::{ensure_capacity, hash_keys, AggrPartial, MergeSpec, PartialAcc};
use crate::ops::join::HashJoinOp;
use crate::ops::{eq_at, push_from, Operator, OrdExp, OrderOp, ProjectOp, SelectOp, TopNOp};
use crate::plan::{plan_key, scan_prune_range, Plan, SharedJoinMap};
use crate::profile::Profiler;
use crate::session::{run_operator, Database, ExecOptions, QueryResult};
use crate::PlanError;
use std::sync::Arc;
use std::time::Instant;
use x100_storage::{plan_morsels, Morsel};
use x100_vector::{aggr as vaggr, Vector};

/// A plan node sitting above the aggregation, to be rebound over the
/// merge operator.
enum Wrap<'a> {
    Select(&'a Expr),
    Project(&'a [(String, Expr)]),
    TopN(&'a [OrdExp], usize),
    Order(&'a [OrdExp]),
}

/// Split `plan` into wrappers above the topmost `Aggr`/`DirectAggr`
/// (outermost first), the aggregation subtree, its leaf `Scan`, and any
/// `HashJoin` nodes on the probe spine between the aggregation and the
/// scan (outermost first). `None` if the plan does not have the
/// parallelizable shape.
#[allow(clippy::type_complexity)] // one-shot internal decomposition tuple
fn decompose(plan: &Plan) -> Option<(Vec<Wrap<'_>>, &Plan, &Plan, Vec<&Plan>)> {
    let mut wrappers = Vec::new();
    let mut cur = plan;
    let aggr = loop {
        match cur {
            Plan::Order { input, keys } => {
                wrappers.push(Wrap::Order(keys));
                cur = input;
            }
            Plan::TopN { input, keys, limit } => {
                wrappers.push(Wrap::TopN(keys, *limit));
                cur = input;
            }
            Plan::Project { input, exprs } => {
                wrappers.push(Wrap::Project(exprs));
                cur = input;
            }
            Plan::Select { input, pred } => {
                wrappers.push(Wrap::Select(pred));
                cur = input;
            }
            Plan::Aggr { .. } | Plan::DirectAggr { .. } => break cur,
            _ => return None,
        }
    };
    // Wrong turn: a Select/Project consumed above was actually part of
    // the pre-aggregation chain only if no aggregation exists — but the
    // loop already required one, so wrappers are genuinely above it.
    let below = match aggr {
        Plan::Aggr { input, .. } | Plan::DirectAggr { input, .. } => input,
        _ => unreachable!(),
    };
    let mut joins = Vec::new();
    let mut leaf = below.as_ref();
    let scan = loop {
        match leaf {
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Fetch1Join { input, .. }
            | Plan::FetchNJoin { input, .. } => leaf = input,
            Plan::HashJoin { probe, .. } => {
                // The morsel restriction follows the probe side; the
                // build side materializes once, shared across workers.
                joins.push(leaf);
                leaf = probe;
            }
            Plan::Scan { .. } => break leaf,
            _ => return None,
        }
    };
    Some((wrappers, aggr, scan, joins))
}

/// Execute `plan` with `opts.threads` morsel-parallel workers, if it
/// has the supported shape. `Ok(None)` means "not parallelizable here —
/// run sequentially"; errors are real binding/validation failures.
pub(crate) fn try_execute_parallel(
    db: &Database,
    plan: &Plan,
    opts: &ExecOptions,
    ctx: &Arc<QueryContext>,
) -> Result<Option<(QueryResult, Profiler)>, PlanError> {
    let Some((wrappers, aggr, scan, joins)) = decompose(plan) else {
        return Ok(None);
    };
    let Plan::Scan { table, prune, .. } = scan else {
        unreachable!()
    };
    let mut prof = Profiler::new(opts.profile);

    // Build once, probe many: materialize each hash-join build side on
    // the main thread into a shared radix-partitioned table; workers
    // then bind read-only probe pipelines against it.
    let mut shared = SharedJoinMap::new();
    for &jp in &joins {
        let Plan::HashJoin {
            build,
            probe,
            build_keys,
            payload,
            ..
        } = jp
        else {
            unreachable!()
        };
        let (mut b, _) = build.bind_inner(db, opts, None, None, ctx)?;
        let hint = crate::plan::probe_rows_estimate(probe, db);
        let table =
            HashJoinOp::build_shared(b.as_mut(), build_keys, payload, hint, opts, ctx, &mut prof)?;
        shared.insert(plan_key(jp), table);
    }

    // Template bind: validates the subtree once up front (surfacing
    // bind errors on the caller's thread) and yields the merge recipe.
    let (template, _) = aggr.bind_inner(db, opts, Some(&[]), Some(&shared), ctx)?;
    let Some(spec) = template.partial_merge_spec() else {
        return Ok(None);
    };
    drop(template);

    let (t, range) = scan_prune_range(db, table, prune.as_ref())?;
    let frag_range = range.unwrap_or((0, t.fragment_rows()));
    let morsels = plan_morsels(frag_range, t.delta_rows(), opts.morsel_size);
    let nworkers = opts.threads.min(morsels.len()).max(1);

    let mut partials: Vec<AggrPartial> = Vec::with_capacity(nworkers);
    let shared_ref = &shared;
    // Panic containment: each worker runs under `catch_unwind`; the
    // first panic (or governor error) cancels the shared context, so
    // sibling workers unwind cleanly at their next per-vector check.
    // Every worker is always joined before any error is reported.
    //
    // Temp-resource audit: the worker's operator tree lives entirely
    // inside the `catch_unwind` closure. On panic the unwind drops the
    // partially-built operator state — including any spill runs it
    // holds, whose `SpillFile` drops delete the on-disk file and refund
    // the disk budget — *before* the closure returns, i.e. before the
    // sibling join below. A successful worker moves its runs into the
    // returned `AggrPartial`, whose own drop (on a later sibling error)
    // cleans up the same way. Nothing here leaks temp files.
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|w| {
                let assigned: Vec<Morsel> =
                    morsels.iter().copied().skip(w).step_by(nworkers).collect();
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut wprof = Profiler::new(opts.profile);
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        aggr.bind_inner(db, opts, Some(&assigned), Some(shared_ref), ctx)
                            .and_then(|(mut op, _)| op.take_partial_aggr(&mut wprof))
                    }));
                    let partial = match caught {
                        Ok(res) => res,
                        Err(payload) => Err(PlanError::WorkerPanic {
                            worker: w,
                            cause: panic_cause(payload.as_ref()),
                        }),
                    };
                    if partial.is_err() {
                        ctx.cancel();
                    }
                    (partial, wprof, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                h.join().unwrap_or_else(|payload| {
                    // catch_unwind inside the worker makes this
                    // unreachable short of an abort, but stay typed.
                    (
                        Err(PlanError::WorkerPanic {
                            worker: w,
                            cause: panic_cause(payload.as_ref()),
                        }),
                        Profiler::new(false),
                        0,
                    )
                })
            })
            .collect::<Vec<_>>()
    });
    // Prefer the root-cause error: a sibling's `Cancelled` is a
    // side-effect of whichever worker failed first.
    let mut first_err: Option<PlanError> = None;
    for (w, (partial, wprof, wall)) in results.into_iter().enumerate() {
        match partial {
            Ok(Some(p)) => {
                if opts.profile {
                    prof.absorb_worker(format!("worker-{w}"), wall, wprof);
                }
                partials.push(p);
            }
            Ok(None) => {
                first_err.get_or_insert(PlanError::Invalid(
                    "parallel worker produced no partial aggregate".into(),
                ));
            }
            Err(e) => match &first_err {
                None => first_err = Some(e),
                Some(PlanError::Cancelled) if e != PlanError::Cancelled => first_err = Some(e),
                _ => {}
            },
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    // Merge stage plus the rebound wrappers, innermost first. Aggregate
    // outputs carry no enum-code dictionaries, so no literal rewriting
    // is needed above the merge.
    let vs = opts.vector_size;
    let comp = opts.compound_primitives;
    let mut op: Box<dyn Operator> = Box::new(MergeAggrOp::new(spec, partials, vs, ctx.clone()));
    for w in wrappers.into_iter().rev() {
        op = match w {
            Wrap::Select(pred) => Box::new(SelectOp::new(
                op,
                pred,
                vs,
                comp,
                opts.select_strategy,
                ctx.clone(),
            )?),
            Wrap::Project(exprs) => Box::new(ProjectOp::new(op, exprs, vs, comp, ctx.clone())?),
            Wrap::TopN(keys, limit) => Box::new(TopNOp::new(op, keys, limit, vs, ctx.clone())?),
            Wrap::Order(keys) => Box::new(OrderOp::new(op, keys, vs, ctx.clone())?),
        };
    }
    let result = run_operator(op.as_mut(), &mut prof)?;
    Ok(Some((result, prof)))
}

/// `MergeAggr` — re-aggregates worker partials into final groups.
///
/// Keys are re-grouped through a hash table (raw codes for enum keys,
/// decoded only at emission, like `HashAggr`); accumulators merge by
/// function: SUM/COUNT/AVG add, MIN/MAX fold. Partials are consumed in
/// worker-index order, so group emission order is deterministic.
pub struct MergeAggrOp {
    spec: MergeSpec,
    partials: Vec<AggrPartial>,
    buckets: Vec<u32>,
    group_hashes: Vec<u64>,
    key_store: Vec<Vector>,
    group_counts: Vec<i64>,
    accs: Vec<PartialAcc>,
    n_groups: usize,
    hash_buf: Vec<u64>,
    built: bool,
    emit_pos: usize,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    ctx: Arc<QueryContext>,
}

impl MergeAggrOp {
    /// A merge stage over `partials` (one per worker, in worker order).
    pub fn new(
        spec: MergeSpec,
        partials: Vec<AggrPartial>,
        vector_size: usize,
        ctx: Arc<QueryContext>,
    ) -> Self {
        let key_store = spec
            .key_types
            .iter()
            .map(|&ty| Vector::with_capacity(ty, 16))
            .collect();
        let accs = spec
            .aggs
            .iter()
            .map(|a| match a.acc_ty {
                x100_vector::ScalarType::F64 => PartialAcc::F64(Vec::new()),
                _ => PartialAcc::I64(Vec::new()),
            })
            .collect();
        let pools = spec
            .fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        MergeAggrOp {
            spec,
            partials,
            buckets: vec![0; 1024],
            group_hashes: Vec::new(),
            key_store,
            group_counts: Vec::new(),
            accs,
            n_groups: 0,
            hash_buf: Vec::new(),
            built: false,
            emit_pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
            ctx,
        }
    }

    /// Fold `partial` group `g` into global group `target` (which must
    /// already exist).
    fn merge_into(&mut self, target: usize, partial: &AggrPartial, g: usize) {
        self.group_counts[target] += partial.counts[g];
        for (ai, spec) in self.spec.aggs.iter().enumerate() {
            match (&mut self.accs[ai], &partial.accs[ai]) {
                (PartialAcc::F64(dst), PartialAcc::F64(src)) => {
                    let v = src[g];
                    match spec.func {
                        AggFunc::Min => {
                            if v < dst[target] {
                                dst[target] = v;
                            }
                        }
                        AggFunc::Max => {
                            if v > dst[target] {
                                dst[target] = v;
                            }
                        }
                        _ => dst[target] += v,
                    }
                }
                (PartialAcc::I64(dst), PartialAcc::I64(src)) => {
                    let v = src[g];
                    match spec.func {
                        AggFunc::Min => {
                            if v < dst[target] {
                                dst[target] = v;
                            }
                        }
                        AggFunc::Max => {
                            if v > dst[target] {
                                dst[target] = v;
                            }
                        }
                        _ => dst[target] += v,
                    }
                }
                (dst, src) => panic!(
                    "merge accumulator type mismatch: {:?} <- {:?}",
                    dst.ty(),
                    src.ty()
                ),
            }
        }
    }

    /// Open a new global group from `partial` group `g`; returns its id.
    fn insert_group(&mut self, hash: u64, partial: &AggrPartial, g: usize) -> usize {
        let id = self.n_groups;
        self.n_groups += 1;
        for (ks, kv) in self.key_store.iter_mut().zip(partial.keys.iter()) {
            push_from(ks, kv, g);
        }
        self.group_hashes.push(hash);
        self.group_counts.push(partial.counts[g]);
        for (dst, src) in self.accs.iter_mut().zip(partial.accs.iter()) {
            match (dst, src) {
                (PartialAcc::F64(d), PartialAcc::F64(s)) => d.push(s[g]),
                (PartialAcc::I64(d), PartialAcc::I64(s)) => d.push(s[g]),
                (d, s) => panic!(
                    "merge accumulator type mismatch: {:?} <- {:?}",
                    d.ty(),
                    s.ty()
                ),
            }
        }
        id
    }

    /// Fold one partial's groups into the global table. Returns the
    /// number of input groups folded.
    fn fold_partial(
        &mut self,
        partial: &AggrPartial,
        prof: &mut Profiler,
    ) -> Result<usize, PlanError> {
        self.ctx.check()?;
        let n = partial.n_groups;
        if n == 0 {
            return Ok(0);
        }
        if self.spec.key_types.is_empty() {
            // Ungrouped: everything folds into global group 0.
            if self.n_groups == 0 {
                self.insert_group(0, partial, 0);
            } else {
                self.merge_into(0, partial, 0);
            }
            return Ok(n);
        }
        ensure_capacity(
            &mut self.buckets,
            &self.group_hashes,
            self.n_groups,
            self.n_groups + n,
        );
        self.hash_buf.resize(n, 0);
        let key_refs: Vec<&Vector> = partial.keys.iter().collect();
        hash_keys(&key_refs, &mut self.hash_buf, n, None, prof);
        let mask = (self.buckets.len() - 1) as u64;
        for g in 0..n {
            let h = self.hash_buf[g];
            let mut b = (h & mask) as usize;
            loop {
                let slot = self.buckets[b];
                if slot == 0 {
                    let id = self.insert_group(h, partial, g);
                    self.buckets[b] = id as u32 + 1;
                    break;
                }
                let cand = (slot - 1) as usize;
                if self.group_hashes[cand] == h
                    && self
                        .key_store
                        .iter()
                        .zip(partial.keys.iter())
                        .all(|(ks, kv)| eq_at(ks, cand, kv, g))
                {
                    self.merge_into(cand, partial, g);
                    break;
                }
                b = (b + 1) & mask as usize;
            }
        }
        Ok(n)
    }

    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        let partials = std::mem::take(&mut self.partials);
        let t_op = prof.start();
        let mut total_in = 0usize;
        let n_keys = self.spec.key_types.len();
        let n_aggs = self.spec.aggs.len();
        for partial in &partials {
            // A worker that spilled ships its evicted table images as
            // runs; fold them before its in-memory remainder so the
            // merge order is deterministic (worker order, then build
            // order within a worker).
            if !partial.runs.is_empty() {
                let mgr = self.ctx.spill_manager()?;
                for run in &partial.runs {
                    for seg in &run.segments {
                        let p = crate::spill::read_agg_segment(
                            &run.file, seg, n_keys, n_aggs, &mgr, &self.ctx,
                        )?;
                        total_in += self.fold_partial(&p, prof)?;
                    }
                }
            }
            total_in += self.fold_partial(partial, prof)?;
        }
        // SQL semantics: an ungrouped aggregation over an empty input
        // still yields one row (count 0, sums 0) — the sequential
        // HashAggr synthesizes the same row.
        if self.spec.ungrouped && self.n_groups == 0 {
            self.n_groups = 1;
            self.group_counts.push(0);
            for (acc, spec) in self.accs.iter_mut().zip(self.spec.aggs.iter()) {
                acc.grow(1, spec.init);
            }
        }
        prof.record_op("MergeAggr", t_op, total_in);
        self.built = true;
        Ok(())
    }

    /// The batch produced by the most recent successful `next` call.
    /// Used by `HashAggrOp`'s spilled emission, which drives a merge
    /// per radix partition and forwards its batches.
    pub(crate) fn last_out(&self) -> &Batch {
        &self.out
    }
}

impl Operator for MergeAggrOp {
    fn fields(&self) -> &[OutField] {
        &self.spec.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        if self.emit_pos >= self.n_groups {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.n_groups - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        let nkeys = self.key_store.len();
        for k in 0..nkeys {
            let mut v = self.pools[k].writable();
            match &self.spec.key_dicts[k] {
                None => crate::ops::extend_range(&mut v, &self.key_store[k], start, n),
                Some(dict) => {
                    for g in start..start + n {
                        let code = match &self.key_store[k] {
                            Vector::U8(c) => c[g] as usize,
                            Vector::U16(c) => c[g] as usize,
                            other => panic!("code key is {:?}", other.scalar_type()),
                        };
                        v.push_value(&dict.decode(code));
                    }
                }
            }
            self.pools[k].publish(v, &mut self.out);
        }
        for (a, spec) in self.spec.aggs.iter().enumerate() {
            let mut v = self.pools[nkeys + a].writable();
            match (spec.func, &self.accs[a]) {
                (AggFunc::Avg, PartialAcc::F64(sums)) => {
                    let t0 = prof.start();
                    let o = v.as_f64_mut();
                    let base = o.len();
                    o.resize(base + n, 0.0);
                    vaggr::aggr_avg_epilogue(
                        &mut o[base..],
                        &sums[start..start + n],
                        &self.group_counts[start..start + n],
                    );
                    prof.record_prim("aggr_avg_epilogue", t0, n, n * 24);
                }
                (_, PartialAcc::F64(vals)) => {
                    v.as_f64_mut().extend_from_slice(&vals[start..start + n])
                }
                (_, PartialAcc::I64(vals)) => {
                    v.as_i64_mut().extend_from_slice(&vals[start..start + n])
                }
            }
            self.pools[nkeys + a].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        // Partials are consumed on build; reset only rewinds emission.
        self.emit_pos = 0;
    }
}
