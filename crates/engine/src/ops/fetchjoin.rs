//! `Fetch1Join` and `FetchNJoin`: positional joins on `#rowId` (§4.1.2).
//!
//! "Just like the void type in MonetDB, X100 gives each table a virtual
//! #rowId column, which is just a densely ascending number from 0. The
//! Fetch1Join allows to positionally fetch column values by #rowId."
//!
//! `Fetch1Join` is 1:1 — each dataflow tuple fetches one row of the
//! target table (join indices over foreign keys make FK joins this
//! cheap). `FetchNJoin` is 1:N — each tuple carries a contiguous
//! `[lo, lo+cnt)` `#rowId` range (e.g. an order fetching its clustered
//! lineitems), which changes the dataflow cardinality.

use crate::batch::{Batch, OutField, VecPool};
use crate::compile::ExprProg;
use crate::expr::Expr;
use crate::ops::{push_from, Operator};
use crate::profile::Profiler;
use crate::PlanError;
use std::sync::Arc;
use x100_storage::{ColumnData, DecodeCursor, Table};
use x100_vector::{fetch as vfetch, ScalarType, SelVec, Vector};

/// A column to fetch from the target table.
struct FetchCol {
    /// Column index in the target table.
    col: usize,
    /// Decode signature for the trace.
    sig: String,
    /// Fetch raw enum codes instead of decoded values.
    as_codes: bool,
    /// Dispatch the `_unchecked` gather twin: set by the binder only
    /// when the facts analyzer proved every `#rowId` within the
    /// fragment (`engine::facts` fetch-bounds sink).
    unchecked: bool,
    /// Reused scratch for gathering straight from compressed chunks.
    gs: GatherState,
}

/// Per-fetch-column decode scratch: the PFOR-DELTA sync-point replay
/// buffer, the chunk-local position list, and the checksum cursor.
#[derive(Default)]
struct GatherState {
    scratch: Vec<u64>,
    tmp: Vec<u32>,
    cursor: DecodeCursor,
}

/// Positional fetch with the compressed fast path: dense (unselected)
/// rowid vectors against a checkpointed fragment column gather directly
/// from the packed chunks — PFOR-DELTA `#rowId` columns seek from the
/// nearest sync point instead of decoding whole chunks. Falls back to
/// the raw fragment on any decode error (torn chunk), counting a
/// recovery.
fn fetch_gather(
    table: &Table,
    fc: &mut FetchCol,
    rowids: &[u32],
    n: usize,
    sel: Option<&SelVec>,
    out: &mut Vector,
    prof: &mut Profiler,
) {
    let sc = table.column(fc.col);
    let frag_rows = table.fragment_rows() as u32;
    if sel.is_none()
        && (fc.as_codes || sc.dict().is_none())
        && rowids[..n].iter().all(|&r| r < frag_rows)
    {
        if let Some(cc) = sc.compressed() {
            match cc.gather(
                &rowids[..n],
                out,
                &mut fc.gs.scratch,
                &mut fc.gs.tmp,
                &mut fc.gs.cursor,
            ) {
                Ok(()) => {
                    prof.add_counter("fetch_compressed_gathers", 1);
                    return;
                }
                Err(_) => {
                    prof.add_counter("decode_recoveries", 1);
                    fc.gs.cursor = DecodeCursor::default();
                }
            }
        }
    }
    // Proven-bounds fast path: skip both the O(n) range scan and the
    // per-element bounds checks. `fc.unchecked` is only ever set by the
    // binder under a bind-time fetch-bounds proof.
    if fc.unchecked && (fc.as_codes || sc.dict().is_none()) {
        out.resize_zeroed(n);
        if unchecked_gather(sc.physical(), out, &rowids[..n], sel) {
            prof.add_counter("fetch_unchecked_dispatches", 1);
            return;
        }
    }
    gather_positional(table, fc.col, fc.as_codes, rowids, n, sel, out);
}

/// Dispatch one `_unchecked` gather twin for a (column, output) type
/// pair; `false` when no twin exists (strings, u64, bool) and the caller
/// must fall back to the checked path.
fn unchecked_gather(
    data: &ColumnData,
    out: &mut Vector,
    rowids: &[u32],
    sel: Option<&SelVec>,
) -> bool {
    // SAFETY (every arm): the bind-time facts proof guarantees each
    // gathered rowid < fragment length (`engine::facts` fetch-bounds
    // sink — under a selection only selected positions are gathered,
    // which are exactly the positions the proof covers), and the caller
    // resized `out` to cover every gathered position.
    match (data, out) {
        (ColumnData::I8(b), Vector::I8(o)) => unsafe {
            vfetch::map_fetch_u32_col_i8_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::I16(b), Vector::I16(o)) => unsafe {
            vfetch::map_fetch_u32_col_i16_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::I32(b), Vector::I32(o)) => unsafe {
            vfetch::map_fetch_u32_col_i32_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::I64(b), Vector::I64(o)) => unsafe {
            vfetch::map_fetch_u32_col_i64_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::U8(b), Vector::U8(o)) => unsafe {
            vfetch::map_fetch_u32_col_u8_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::U16(b), Vector::U16(o)) => unsafe {
            vfetch::map_fetch_u32_col_u16_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::U32(b), Vector::U32(o)) => unsafe {
            vfetch::map_fetch_u32_col_u32_col_unchecked(o, b, rowids, sel)
        },
        (ColumnData::F64(b), Vector::F64(o)) => unsafe {
            vfetch::map_fetch_u32_col_f64_col_unchecked(o, b, rowids, sel)
        },
        _ => return false,
    }
    true
}

/// Whether the `_unchecked` twin family covers this column's physical
/// representation (it must also not be dictionary-decoded — code
/// fetches and plain columns qualify, decoded enum fetches do not).
fn has_unchecked_twin(data: &ColumnData) -> bool {
    matches!(
        data,
        ColumnData::I8(_)
            | ColumnData::I16(_)
            | ColumnData::I32(_)
            | ColumnData::I64(_)
            | ColumnData::U8(_)
            | ColumnData::U16(_)
            | ColumnData::U32(_)
            | ColumnData::F64(_)
    )
}

/// Fetch `table[rowids[i]].col` positionally into `out` under `sel`.
/// Fragment-region fast path per type; enum columns decode through the
/// dictionary; delta-region rowids take the slow value path.
#[allow(clippy::needless_range_loop)] // positional writes under a selection
fn gather_positional(
    table: &Table,
    col: usize,
    as_codes: bool,
    rowids: &[u32],
    n: usize,
    sel: Option<&SelVec>,
    out: &mut Vector,
) {
    let sc = table.column(col);
    let frag_rows = table.fragment_rows() as u32;
    let in_frag = match sel {
        None => rowids[..n].iter().all(|&r| r < frag_rows),
        Some(s) => s.iter().all(|i| rowids[i] < frag_rows),
    };
    out.resize_zeroed(n);
    if in_frag {
        // Code fetch: gather the physical code column directly.
        let dict = if as_codes { None } else { sc.dict() };
        match (dict, sc.physical()) {
            (None, data) => {
                match (data, &mut *out) {
                    (ColumnData::I8(b), Vector::I8(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::I16(b), Vector::I16(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::I32(b), Vector::I32(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::I64(b), Vector::I64(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::U8(b), Vector::U8(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::U16(b), Vector::U16(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::U32(b), Vector::U32(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::U64(b), Vector::U64(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::F64(b), Vector::F64(o)) => vfetch::fetch(o, b, rowids, sel),
                    (ColumnData::Str(b), Vector::Str(o)) => {
                        o.clear();
                        let mut strs = Vec::new();
                        match sel {
                            None => {
                                for &r in &rowids[..n] {
                                    strs.push(b.get(r as usize));
                                }
                            }
                            Some(s) => {
                                // Positional write into a StrVec: fill
                                // unselected with empties.
                                let mut next = s.iter().peekable();
                                for i in 0..n {
                                    if next.peek() == Some(&i) {
                                        next.next();
                                        strs.push(b.get(rowids[i] as usize));
                                    } else {
                                        strs.push("");
                                    }
                                }
                            }
                        }
                        for st in strs {
                            o.push(st);
                        }
                    }
                    (d, o) => panic!(
                        "fetch mismatch: column {:?}, out {:?}",
                        d.scalar_type(),
                        o.scalar_type()
                    ),
                }
            }
            (Some(dict), codes) => {
                // Two-step: gather code, then decode via dictionary.
                match (codes, dict.values(), &mut *out) {
                    (ColumnData::U8(c), ColumnData::F64(d), Vector::F64(o)) => {
                        gather_decode(c, d, rowids, n, sel, o)
                    }
                    (ColumnData::U8(c), ColumnData::I64(d), Vector::I64(o)) => {
                        gather_decode(c, d, rowids, n, sel, o)
                    }
                    (ColumnData::U8(c), ColumnData::I32(d), Vector::I32(o)) => {
                        gather_decode(c, d, rowids, n, sel, o)
                    }
                    (ColumnData::U16(c), ColumnData::F64(d), Vector::F64(o)) => {
                        gather_decode16(c, d, rowids, n, sel, o)
                    }
                    (ColumnData::U16(c), ColumnData::I64(d), Vector::I64(o)) => {
                        gather_decode16(c, d, rowids, n, sel, o)
                    }
                    (ColumnData::U16(c), ColumnData::I32(d), Vector::I32(o)) => {
                        gather_decode16(c, d, rowids, n, sel, o)
                    }
                    (_, ColumnData::Str(d), Vector::Str(o)) => {
                        o.clear();
                        let code_of = |r: usize| -> usize {
                            match codes {
                                ColumnData::U8(c) => c[r] as usize,
                                ColumnData::U16(c) => c[r] as usize,
                                _ => unreachable!("codes are U8/U16"),
                            }
                        };
                        match sel {
                            None => {
                                for &r in &rowids[..n] {
                                    o.push(d.get(code_of(r as usize)));
                                }
                            }
                            Some(s) => {
                                let mut next = s.iter().peekable();
                                for i in 0..n {
                                    if next.peek() == Some(&i) {
                                        next.next();
                                        o.push(d.get(code_of(rowids[i] as usize)));
                                    } else {
                                        o.push("");
                                    }
                                }
                            }
                        }
                    }
                    (c, d, o) => panic!(
                        "enum fetch mismatch: codes {:?}, dict {:?}, out {:?}",
                        c.scalar_type(),
                        d.scalar_type(),
                        o.scalar_type()
                    ),
                }
            }
        }
    } else {
        assert!(
            !as_codes,
            "code fetch into the delta region (binder forbids this)"
        );
        // Slow path: some rowids live in the delta region.
        match sel {
            None => {
                out.clear();
                for &r in &rowids[..n] {
                    out.push_value(&row_value(table, col, r));
                }
            }
            Some(s) => {
                // Positional writes for fixed-width types only; strings
                // with deltas + selection are handled valuewise.
                if out.scalar_type() == ScalarType::Str {
                    let strvec = out.as_str_mut();
                    strvec.clear();
                    let mut next = s.iter().peekable();
                    for i in 0..n {
                        if next.peek() == Some(&i) {
                            next.next();
                            match row_value(table, col, rowids[i]) {
                                x100_vector::Value::Str(v) => strvec.push(&v),
                                other => panic!("expected string, got {other:?}"),
                            }
                        } else {
                            strvec.push("");
                        }
                    }
                } else {
                    for i in s.iter() {
                        set_value_at(out, i, &row_value(table, col, rowids[i]));
                    }
                }
            }
        }
    }
}

fn gather_decode<T: Copy>(
    codes: &[u8],
    dict: &[T],
    rowids: &[u32],
    n: usize,
    sel: Option<&SelVec>,
    out: &mut [T],
) {
    match sel {
        None => {
            for (o, &r) in out.iter_mut().zip(rowids.iter()).take(n) {
                *o = dict[codes[r as usize] as usize];
            }
        }
        Some(s) => {
            for i in s.iter() {
                out[i] = dict[codes[rowids[i] as usize] as usize];
            }
        }
    }
}

fn gather_decode16<T: Copy>(
    codes: &[u16],
    dict: &[T],
    rowids: &[u32],
    n: usize,
    sel: Option<&SelVec>,
    out: &mut [T],
) {
    match sel {
        None => {
            for (o, &r) in out.iter_mut().zip(rowids.iter()).take(n) {
                *o = dict[codes[r as usize] as usize];
            }
        }
        Some(s) => {
            for i in s.iter() {
                out[i] = dict[codes[rowids[i] as usize] as usize];
            }
        }
    }
}

fn row_value(table: &Table, col: usize, rowid: u32) -> x100_vector::Value {
    // get_row is row-at-a-time; extract just one column.
    table.get_row(rowid)[col].clone()
}

fn set_value_at(out: &mut Vector, i: usize, v: &x100_vector::Value) {
    use x100_vector::Value;
    match (out, v) {
        (Vector::I8(o), Value::I8(x)) => o[i] = *x,
        (Vector::I16(o), Value::I16(x)) => o[i] = *x,
        (Vector::I32(o), Value::I32(x)) => o[i] = *x,
        (Vector::I64(o), Value::I64(x)) => o[i] = *x,
        (Vector::U8(o), Value::U8(x)) => o[i] = *x,
        (Vector::U16(o), Value::U16(x)) => o[i] = *x,
        (Vector::U32(o), Value::U32(x)) => o[i] = *x,
        (Vector::U64(o), Value::U64(x)) => o[i] = *x,
        (Vector::F64(o), Value::F64(x)) => o[i] = *x,
        (Vector::Bool(o), Value::Bool(x)) => o[i] = *x,
        (o, v) => panic!(
            "set_value_at mismatch: {:?} <- {:?}",
            o.scalar_type(),
            v.scalar_type()
        ),
    }
}

/// `Fetch1Join(Dataflow, Table, Exp<int>, List<Column>)` — 1:1
/// positional fetch; pass-through child columns plus fetched columns.
pub struct Fetch1JoinOp {
    child: Box<dyn Operator>,
    table: Arc<Table>,
    rowid_prog: ExprProg,
    fetch_cols: Vec<FetchCol>,
    fields: Vec<OutField>,
    pools: Vec<VecPool>,
    rowid_buf: Vec<u32>,
    out: Batch,
}

impl Fetch1JoinOp {
    /// Bind: `rowid_expr` must produce `u32` row ids (a join-index
    /// column or an enum code widened to `u32`). `fetch_codes` columns
    /// must be enum-typed and are gathered as raw codes.
    pub fn new(
        child: Box<dyn Operator>,
        table: Arc<Table>,
        rowid_expr: &Expr,
        fetch: &[(String, String)],
        fetch_codes: &[(String, String)],
        vector_size: usize,
        compound: bool,
    ) -> Result<Self, PlanError> {
        let raw = ExprProg::compile(rowid_expr, child.fields(), vector_size, compound)?;
        let rowid_prog = if raw.result_type() == ScalarType::U32 {
            raw
        } else if matches!(raw.result_type(), ScalarType::U8 | ScalarType::U16) {
            ExprProg::compile(
                &Expr::Cast(ScalarType::U32, Box::new(rowid_expr.clone())),
                child.fields(),
                vector_size,
                compound,
            )?
        } else {
            return Err(PlanError::TypeMismatch(format!(
                "Fetch1Join rowid expression must be u32 (join index), got {}",
                raw.result_type()
            )));
        };
        let mut fetch_cols = Vec::new();
        let mut fields: Vec<OutField> = child.fields().to_vec();
        let mut pools: Vec<VecPool> = Vec::new();
        for (src, alias) in fetch {
            let ci = table
                .column_index(src)
                .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", table.name(), src)))?;
            let sc = table.column(ci);
            let ty = sc.field().logical;
            let sig = format!("map_fetch_u32_col_{}_col", ty.sig_name());
            fetch_cols.push(FetchCol {
                col: ci,
                sig,
                as_codes: false,
                unchecked: false,
                gs: GatherState::default(),
            });
            fields.push(OutField::new(alias.clone(), ty));
            pools.push(VecPool::new(ty, vector_size));
        }
        for (src, alias) in fetch_codes {
            let ci = table
                .column_index(src)
                .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", table.name(), src)))?;
            let sc = table.column(ci);
            if sc.dict().is_none() {
                return Err(PlanError::TypeMismatch(format!(
                    "column `{src}` is not enum-typed; use a plain fetch"
                )));
            }
            let ty = sc.physical_type();
            let sig = format!("map_fetch_u32_col_{}_col", ty.sig_name());
            fetch_cols.push(FetchCol {
                col: ci,
                sig,
                as_codes: true,
                unchecked: false,
                gs: GatherState::default(),
            });
            fields.push(OutField::new(alias.clone(), ty));
            pools.push(VecPool::new(ty, vector_size));
        }
        Ok(Fetch1JoinOp {
            child,
            table,
            rowid_prog,
            fetch_cols,
            fields,
            pools,
            rowid_buf: Vec::new(),
            out: Batch::new(),
        })
    }

    /// Switch eligible fetch columns to their `_unchecked` gather twins.
    /// The binder calls this only when the facts analyzer proved every
    /// `#rowId` this op gathers within `[0, fragment_rows)`
    /// (`engine::facts`); columns without a twin (strings, u64, decoded
    /// enums) keep the checked path.
    pub fn set_unchecked(&mut self) {
        set_unchecked_cols(&self.table, &mut self.fetch_cols);
    }
}

/// Flip eligible fetch columns to their `_unchecked` twins (shared by
/// both fetch-join ops; see [`Fetch1JoinOp::set_unchecked`]).
fn set_unchecked_cols(table: &Table, fetch_cols: &mut [FetchCol]) {
    for fc in fetch_cols {
        let sc = table.column(fc.col);
        if (fc.as_codes || sc.dict().is_none()) && has_unchecked_twin(sc.physical()) {
            fc.unchecked = true;
            fc.sig = format!("{}_unchecked", fc.sig);
        }
    }
}

impl Operator for Fetch1JoinOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        let Some(batch) = self.child.next(prof)? else {
            return Ok(None);
        };
        let n = batch.len;
        let sel = batch.sel.as_deref();
        let live = batch.live();
        let t_op = prof.start();
        // Row ids.
        let rowids = self.rowid_prog.eval(batch, sel, prof);
        self.rowid_buf.clear();
        self.rowid_buf.extend_from_slice(rowids.as_u32());
        // Output: pass-through + fetched.
        self.out.reset();
        self.out.len = n;
        self.out.sel = batch.sel.clone();
        self.out.columns.extend(batch.columns.iter().cloned());
        for k in 0..self.fetch_cols.len() {
            let t0 = prof.start();
            let mut v = self.pools[k].writable();
            let fc = &mut self.fetch_cols[k];
            fetch_gather(&self.table, fc, &self.rowid_buf, n, sel, &mut v, prof);
            let bytes = live * 4 + v.byte_size();
            prof.record_prim(&fc.sig, t0, live, bytes);
            self.pools[k].publish(v, &mut self.out);
        }
        prof.record_op("Fetch1Join", t_op, live);
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
    }
}

/// `FetchNJoin(Dataflow, Table, Exp<int>, Exp<int>, Column,
/// List<Column>)` — 1:N positional fetch over contiguous `#rowId`
/// ranges; expands the dataflow cardinality.
pub struct FetchNJoinOp {
    child: Box<dyn Operator>,
    table: Arc<Table>,
    lo_prog: ExprProg,
    cnt_prog: ExprProg,
    fetch_cols: Vec<FetchCol>,
    fields: Vec<OutField>,
    child_arity: usize,
    pools: Vec<VecPool>,
    // Expansion state: the pending (child position, rowid range) queue.
    pending: Vec<(u32, u32, u32)>, // (child pos, lo, cnt)
    pend_idx: usize,
    pend_off: u32,
    // A retained copy of the current child batch (the child's buffers
    // are reused, so we must hold Rc clones while expanding).
    cur_cols: Vec<std::rc::Rc<Vector>>,
    rowid_scratch: Vec<u32>,
    out: Batch,
    vector_size: usize,
    done: bool,
}

impl FetchNJoinOp {
    /// Bind: `lo` and `cnt` produce the `#rowId` range `[lo, lo+cnt)`.
    pub fn new(
        child: Box<dyn Operator>,
        table: Arc<Table>,
        lo: &Expr,
        cnt: &Expr,
        fetch: &[(String, String)],
        vector_size: usize,
        compound: bool,
    ) -> Result<Self, PlanError> {
        let mk_u32 = |e: &Expr, child: &dyn Operator| -> Result<ExprProg, PlanError> {
            let raw = ExprProg::compile(e, child.fields(), vector_size, compound)?;
            if raw.result_type() == ScalarType::U32 {
                Ok(raw)
            } else {
                Err(PlanError::TypeMismatch(format!(
                    "FetchNJoin range expressions must be u32, got {}",
                    raw.result_type()
                )))
            }
        };
        let lo_prog = mk_u32(lo, child.as_ref())?;
        let cnt_prog = mk_u32(cnt, child.as_ref())?;
        let child_arity = child.fields().len();
        let mut fields: Vec<OutField> = child.fields().to_vec();
        let mut fetch_cols = Vec::new();
        let mut pools: Vec<VecPool> = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        for (src, alias) in fetch {
            let ci = table
                .column_index(src)
                .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", table.name(), src)))?;
            let ty = table.column(ci).field().logical;
            let sig = format!("map_fetch_u32_col_{}_col", ty.sig_name());
            fetch_cols.push(FetchCol {
                col: ci,
                sig,
                as_codes: false,
                unchecked: false,
                gs: GatherState::default(),
            });
            fields.push(OutField::new(alias.clone(), ty));
            pools.push(VecPool::new(ty, vector_size));
        }
        Ok(FetchNJoinOp {
            child,
            table,
            lo_prog,
            cnt_prog,
            fetch_cols,
            fields,
            child_arity,
            pools,
            pending: Vec::new(),
            pend_idx: 0,
            pend_off: 0,
            cur_cols: Vec::new(),
            rowid_scratch: Vec::new(),
            out: Batch::new(),
            vector_size,
            done: false,
        })
    }

    /// Switch eligible fetch columns to their `_unchecked` gather twins
    /// (see [`Fetch1JoinOp::set_unchecked`]).
    pub fn set_unchecked(&mut self) {
        set_unchecked_cols(&self.table, &mut self.fetch_cols);
    }

    /// Pull the next child batch and compute its expansion ranges.
    fn refill(&mut self, prof: &mut Profiler) -> Result<bool, PlanError> {
        loop {
            let Some(batch) = self.child.next(prof)? else {
                return Ok(false);
            };
            let sel = batch.sel.as_deref();
            let lo = self.lo_prog.eval(batch, sel, prof).as_u32().to_vec();
            let cnt = self.cnt_prog.eval(batch, sel, prof).as_u32().to_vec();
            self.pending.clear();
            match sel {
                None => {
                    for i in 0..batch.len {
                        if cnt[i] > 0 {
                            self.pending.push((i as u32, lo[i], cnt[i]));
                        }
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        if cnt[i] > 0 {
                            self.pending.push((i as u32, lo[i], cnt[i]));
                        }
                    }
                }
            }
            if self.pending.is_empty() {
                continue;
            }
            self.cur_cols = batch.columns.clone();
            self.pend_idx = 0;
            self.pend_off = 0;
            return Ok(true);
        }
    }
}

impl Operator for FetchNJoinOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if self.done {
            return Ok(None);
        }
        if self.pend_idx >= self.pending.len() && !self.refill(prof)? {
            self.done = true;
            return Ok(None);
        }
        let t_op = prof.start();
        // Fill up to vector_size expanded tuples.
        self.rowid_scratch.clear();
        let mut child_pos: Vec<u32> = Vec::new();
        while self.rowid_scratch.len() < self.vector_size {
            if self.pend_idx >= self.pending.len() {
                break;
            }
            let (cpos, lo, cnt) = self.pending[self.pend_idx];
            let remaining = cnt - self.pend_off;
            let take = (self.vector_size - self.rowid_scratch.len()).min(remaining as usize) as u32;
            for k in 0..take {
                self.rowid_scratch.push(lo + self.pend_off + k);
                child_pos.push(cpos);
            }
            self.pend_off += take;
            if self.pend_off == cnt {
                self.pend_idx += 1;
                self.pend_off = 0;
            }
        }
        let n = self.rowid_scratch.len();
        self.out.reset();
        self.out.len = n;
        // Replicate child columns by position.
        for (k, colv) in self.cur_cols.iter().enumerate() {
            let mut v = self.pools[k].writable();
            for &cp in &child_pos {
                push_from(&mut v, colv, cp as usize);
            }
            self.pools[k].publish(v, &mut self.out);
        }
        // Fetch target columns.
        for j in 0..self.fetch_cols.len() {
            let t0 = prof.start();
            let mut v = self.pools[self.child_arity + j].writable();
            let fc = &mut self.fetch_cols[j];
            fetch_gather(&self.table, fc, &self.rowid_scratch, n, None, &mut v, prof);
            let bytes = n * 4 + v.byte_size();
            prof.record_prim(&fc.sig, t0, n, bytes);
            self.pools[self.child_arity + j].publish(v, &mut self.out);
        }
        prof.record_op("FetchNJoin", t_op, n);
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        self.pending.clear();
        self.pend_idx = 0;
        self.pend_off = 0;
        self.cur_cols.clear();
        self.done = false;
    }
}
