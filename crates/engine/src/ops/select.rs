//! `Select(Dataflow, Exp<bool>) : Dataflow` — zero-copy selection.
//!
//! "The Select operator creates a selection-vector, filled with positions
//! of tuples that match our predicate" (§4.1.1). Column data is never
//! copied: downstream primitives honor the selection vector.
//!
//! Predicate compilation:
//! * a conjunction of comparisons lowers to a chain of `select_*`
//!   primitives, each *refining* the selection of the previous one;
//! * each comparison's operands may themselves be computed expressions
//!   (evaluated only at still-selected positions);
//! * anything else (OR / NOT trees) falls back to a boolean map followed
//!   by `select_true`.
//!
//! The select strategy (branching vs predicated, Fig. 2) is a session
//! option threaded through here.

use crate::batch::{Batch, OutField, SelPool};
use crate::compile::ExprProg;
use crate::expr::Expr;
use crate::govern::QueryContext;
use crate::ops::Operator;
use crate::profile::Profiler;
use crate::PlanError;
use x100_vector::select::{select_cmp_col_col, select_cmp_col_val, select_str_eq, select_true};
use x100_vector::{CmpOp, ScalarType, SelVec, SelectStrategy, Value, Vector};

/// One conjunct of a compiled predicate.
enum PredStep {
    /// `lhs ⊙ literal` via a select primitive.
    CmpVal {
        lhs: ExprProg,
        op: CmpOp,
        v: Value,
        sig: String,
    },
    /// `lhs ⊙ rhs` (both columns/expressions) via a select primitive.
    CmpCol {
        lhs: ExprProg,
        rhs: ExprProg,
        op: CmpOp,
        sig: String,
    },
    /// String equality select.
    StrEq {
        lhs: ExprProg,
        v: String,
        negate: bool,
    },
    /// General boolean expression + `select_true`.
    Bool(ExprProg),
    /// Statically empty (e.g. `enum_col = literal` not in the dictionary).
    Never,
}

/// The select operator.
pub struct SelectOp {
    child: Box<dyn Operator>,
    steps: Vec<PredStep>,
    strategy: SelectStrategy,
    sel_pool: SelPool,
    scratch: SelVec,
    out: Batch,
    ctx: std::sync::Arc<QueryContext>,
}

impl SelectOp {
    /// Compile `pred` against `child`'s shape.
    ///
    /// Enum-predicate rewrites (string literal → dictionary code) are
    /// the binder's job ([`crate::plan`]); by the time a predicate gets
    /// here, comparisons on code columns are already numeric.
    pub fn new(
        child: Box<dyn Operator>,
        pred: &Expr,
        vector_size: usize,
        compound: bool,
        strategy: SelectStrategy,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut steps = Vec::new();
        build_steps(pred, child.fields(), vector_size, compound, &mut steps)?;
        Ok(SelectOp {
            child,
            steps,
            strategy,
            sel_pool: SelPool::default(),
            scratch: SelVec::default(),
            out: Batch::new(),
            ctx,
        })
    }
}

/// Split a conjunction into refinement steps.
fn build_steps(
    pred: &Expr,
    fields: &[OutField],
    vector_size: usize,
    compound: bool,
    out: &mut Vec<PredStep>,
) -> Result<(), PlanError> {
    match pred {
        Expr::And(l, r) => {
            build_steps(l, fields, vector_size, compound, out)?;
            build_steps(r, fields, vector_size, compound, out)?;
            Ok(())
        }
        // Constant-true conjuncts vanish; constant-false short-circuits
        // (the binder's enum rewrite produces these for literals absent
        // from a dictionary).
        Expr::Lit(Value::Bool(true)) => Ok(()),
        Expr::Lit(Value::Bool(false)) => {
            out.push(PredStep::Never);
            Ok(())
        }
        Expr::Cmp(op, l, r) => {
            // String equality?
            let lty = ExprProg::compile(l, fields, vector_size, compound)?;
            if lty.result_type() == ScalarType::Str {
                let (negate, v) = match (op, r.as_ref()) {
                    (CmpOp::Eq, Expr::Lit(Value::Str(v))) => (false, v.clone()),
                    (CmpOp::Ne, Expr::Lit(Value::Str(v))) => (true, v.clone()),
                    _ => {
                        return Err(PlanError::TypeMismatch(
                            "string predicates support only = / != literal".to_owned(),
                        ))
                    }
                };
                out.push(PredStep::StrEq {
                    lhs: lty,
                    v,
                    negate,
                });
                return Ok(());
            }
            match r.as_ref() {
                Expr::Lit(v) => {
                    // A float literal against an integer column needs the
                    // promoting map path (the select primitive would
                    // truncate the literal). Types without a select
                    // primitive also fall back to the boolean map path,
                    // whose compiler reports a typed error if the
                    // comparison itself is unsupported.
                    if (lty.result_type().is_integer() && v.scalar_type() == ScalarType::F64)
                        || !select_val_supported(lty.result_type())
                    {
                        let prog = ExprProg::compile(pred, fields, vector_size, compound)?;
                        out.push(PredStep::Bool(prog));
                        return Ok(());
                    }
                    let sig = format!(
                        "select_{}_{}_col_val",
                        op.sig_name(),
                        lty.result_type().sig_name()
                    );
                    out.push(PredStep::CmpVal {
                        lhs: lty,
                        op: *op,
                        v: v.clone(),
                        sig,
                    });
                    Ok(())
                }
                _ => {
                    let rty = ExprProg::compile(r, fields, vector_size, compound)?;
                    if rty.result_type() != lty.result_type()
                        || !select_col_supported(lty.result_type())
                    {
                        // Fall back to the general boolean path, which
                        // handles promotion in the map layer (and yields
                        // a typed error for unsupported comparisons).
                        let prog = ExprProg::compile(pred, fields, vector_size, compound)?;
                        out.push(PredStep::Bool(prog));
                        return Ok(());
                    }
                    let sig = format!(
                        "select_{}_{}_col_col",
                        op.sig_name(),
                        lty.result_type().sig_name()
                    );
                    out.push(PredStep::CmpCol {
                        lhs: lty,
                        rhs: rty,
                        op: *op,
                        sig,
                    });
                    Ok(())
                }
            }
        }
        other => {
            let prog = ExprProg::compile(other, fields, vector_size, compound)?;
            if prog.result_type() != ScalarType::Bool {
                return Err(PlanError::TypeMismatch(format!(
                    "selection predicate must be boolean, got {}",
                    prog.result_type()
                )));
            }
            out.push(PredStep::Bool(prog));
            Ok(())
        }
    }
}

/// Types with a `select_*_col_val` primitive ([`run_select_val`]).
fn select_val_supported(ty: ScalarType) -> bool {
    matches!(
        ty,
        ScalarType::I8
            | ScalarType::I16
            | ScalarType::I32
            | ScalarType::I64
            | ScalarType::U8
            | ScalarType::U16
            | ScalarType::U32
            | ScalarType::F64
    )
}

/// Types with a `select_*_col_col` primitive ([`run_select_col`]).
fn select_col_supported(ty: ScalarType) -> bool {
    matches!(
        ty,
        ScalarType::I32
            | ScalarType::I64
            | ScalarType::F64
            | ScalarType::U8
            | ScalarType::U16
            | ScalarType::U32
    )
}

/// Run one select primitive: vector dispatch on the lhs type.
fn run_select_val(
    out: &mut SelVec,
    lhs: &Vector,
    op: CmpOp,
    v: &Value,
    sel: Option<&SelVec>,
    strategy: SelectStrategy,
) -> usize {
    match lhs {
        Vector::I8(a) => select_cmp_col_val(out, a, v.as_i64() as i8, op, sel, strategy),
        Vector::I16(a) => select_cmp_col_val(out, a, v.as_i64() as i16, op, sel, strategy),
        Vector::I32(a) => select_cmp_col_val(out, a, v.as_i64() as i32, op, sel, strategy),
        Vector::I64(a) => select_cmp_col_val(out, a, v.as_i64(), op, sel, strategy),
        Vector::U8(a) => select_cmp_col_val(out, a, v.as_i64() as u8, op, sel, strategy),
        Vector::U16(a) => select_cmp_col_val(out, a, v.as_i64() as u16, op, sel, strategy),
        Vector::U32(a) => select_cmp_col_val(out, a, v.as_i64() as u32, op, sel, strategy),
        Vector::F64(a) => select_cmp_col_val(out, a, v.as_f64(), op, sel, strategy),
        other => unreachable!(
            "select_val on {:?}: unsupported types are routed to the boolean path at bind",
            other.scalar_type()
        ),
    }
}

fn run_select_col(
    out: &mut SelVec,
    lhs: &Vector,
    rhs: &Vector,
    op: CmpOp,
    sel: Option<&SelVec>,
    strategy: SelectStrategy,
) -> usize {
    match (lhs, rhs) {
        (Vector::I32(a), Vector::I32(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (Vector::I64(a), Vector::I64(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (Vector::F64(a), Vector::F64(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (Vector::U8(a), Vector::U8(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (Vector::U16(a), Vector::U16(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (Vector::U32(a), Vector::U32(b)) => select_cmp_col_col(out, a, b, op, sel, strategy),
        (a, b) => unreachable!(
            "select_col on {:?} vs {:?}: unsupported pairs are routed to the boolean path at bind",
            a.scalar_type(),
            b.scalar_type()
        ),
    }
}

impl Operator for SelectOp {
    fn fields(&self) -> &[OutField] {
        self.child.fields()
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        loop {
            // One governance checkpoint per consumed vector.
            self.ctx.check()?;
            let batch = match self.child.next(prof)? {
                None => return Ok(None),
                Some(b) => b,
            };
            let n = batch.len;
            // Refinement chain: `cur` is the live selection so far.
            // `None` means "all of 0..n".
            let mut cur: Option<SelVec> = batch.sel.as_deref().cloned();
            let mut empty = false;
            for step in &mut self.steps {
                let t_op = prof.start();
                let live_in = cur.as_ref().map_or(n, |s| s.len());
                let mut next_sel = std::mem::take(&mut self.scratch);
                let survivors = match step {
                    PredStep::CmpVal { lhs, op, v, sig } => {
                        let lv = lhs.eval(batch, cur.as_ref(), prof);
                        let t0 = prof.start();
                        let cnt =
                            run_select_val(&mut next_sel, lv, *op, v, cur.as_ref(), self.strategy);
                        prof.record_prim(
                            sig,
                            t0,
                            live_in,
                            live_in * lv.scalar_type().width() + cnt * 4,
                        );
                        cnt
                    }
                    PredStep::CmpCol { lhs, rhs, op, sig } => {
                        // Evaluate both sides under the current selection.
                        // The programs own disjoint register files.
                        let lv = lhs.eval(batch, cur.as_ref(), prof);
                        let rv = rhs.eval(batch, cur.as_ref(), prof);
                        let t0 = prof.start();
                        let cnt =
                            run_select_col(&mut next_sel, lv, rv, *op, cur.as_ref(), self.strategy);
                        prof.record_prim(
                            sig,
                            t0,
                            live_in,
                            2 * live_in * lv.scalar_type().width() + cnt * 4,
                        );
                        cnt
                    }
                    PredStep::StrEq { lhs, v, negate } => {
                        let lv = lhs.eval(batch, cur.as_ref(), prof);
                        let t0 = prof.start();
                        let cnt = if *negate {
                            // select where != v: run eq then complement
                            // against the current selection.
                            let strv = lv.as_str();
                            let buf = next_sel.buf_mut();
                            match cur.as_ref() {
                                None => {
                                    for i in 0..n {
                                        if strv.get(i) != v.as_str() {
                                            buf.push(i as u32);
                                        }
                                    }
                                }
                                Some(s) => {
                                    for i in s.iter() {
                                        if strv.get(i) != v.as_str() {
                                            buf.push(i as u32);
                                        }
                                    }
                                }
                            }
                            buf.len()
                        } else {
                            select_str_eq(&mut next_sel, lv.as_str(), v, cur.as_ref())
                        };
                        prof.record_prim(
                            "select_eq_str_col_val",
                            t0,
                            live_in,
                            live_in * 16 + cnt * 4,
                        );
                        cnt
                    }
                    PredStep::Bool(prog) => {
                        let bv = prog.eval(batch, cur.as_ref(), prof);
                        let t0 = prof.start();
                        let cnt = select_true(&mut next_sel, bv.as_bool(), cur.as_ref());
                        prof.record_prim("select_true_bool_col", t0, live_in, live_in + cnt * 4);
                        cnt
                    }
                    PredStep::Never => {
                        next_sel.clear();
                        0
                    }
                };
                prof.record_op("Select", t_op, live_in);
                // Recycle the previous selection buffer as scratch.
                self.scratch = cur.take().unwrap_or_default();
                cur = Some(next_sel);
                if survivors == 0 {
                    empty = true;
                    break;
                }
            }
            if empty {
                // Entire vector filtered out: pull the next one (the
                // paper's operators also skip empty vectors).
                continue;
            }
            // Publish: pass through columns, narrow the selection.
            self.out.reset();
            self.out.len = n;
            self.out.columns.extend(batch.columns.iter().cloned());
            if let Some(sel) = cur {
                self.sel_pool.publish(sel, &mut self.out);
            }
            return Ok(Some(&self.out));
        }
    }

    fn reset(&mut self) {
        self.child.reset();
    }
}
