//! Aggregation: the three physical operators of §4.1.2.
//!
//! "Aggregation is supported by three physical operators: (i) direct
//! aggregation, (ii) hash aggregation, and (iii) ordered aggregation."
//!
//! * [`DirectAggrOp`] — for small-domain keys whose bit representation
//!   directly indexes the accumulator table (the hard-coded Q1 trick of
//!   §3.3: `(returnflag << 8) + linestatus`).
//! * [`HashAggrOp`] — the general case: vectorized hashing, scalar
//!   hash-table maintenance, vectorized accumulator updates.
//! * [`OrdAggrOp`] — groups arrive consecutively (input clustered on the
//!   keys); constant memory, streaming emission.
//!
//! All three share the aggregate-state machinery: per aggregate an
//! *initialization* (accumulator growth), vectorized *update*
//! primitives (`aggr_sum_*`, `aggr_count`), and an *epilogue*
//! (`avg = sum / count`), mirroring the paper's generated triples.

use crate::batch::{Batch, OutField, VecPool};
use crate::compile::ExprProg;
use crate::expr::{AggExpr, AggFunc, Expr};
use crate::govern::{MemTracker, QueryContext};
use crate::ops::parallel::MergeAggrOp;
use crate::ops::{eq_at, extend_range, push_from, Operator};
use crate::profile::Profiler;
use crate::spill::{agg_partition, read_agg_segment, AggRun, AggSegment, SPILL_BLOCK_ROWS};
use crate::PlanError;
use std::sync::Arc;
use x100_storage::EnumDict;
use x100_vector::{aggr as vaggr, hash as vhash, ScalarType, SelVec, Vector};

/// Typed accumulator storage.
enum AccData {
    F64(Vec<f64>),
    I64(Vec<i64>),
}

/// An aggregate accumulator detached from its operator: the
/// thread-safe (no `Rc`) payload a parallel worker ships to the merge
/// stage. Same layout as the internal accumulator storage.
#[derive(Debug, Clone)]
pub enum PartialAcc {
    /// f64 accumulators (sums, f64 min/max).
    F64(Vec<f64>),
    /// i64 accumulators (counts, integer sums/min/max).
    I64(Vec<i64>),
}

impl PartialAcc {
    /// Accumulator scalar type.
    pub fn ty(&self) -> ScalarType {
        match self {
            PartialAcc::F64(_) => ScalarType::F64,
            PartialAcc::I64(_) => ScalarType::I64,
        }
    }

    /// Resize to `n` entries, filling new ones with `init`.
    pub fn grow(&mut self, n: usize, init: f64) {
        match self {
            PartialAcc::F64(v) => v.resize(n, init),
            PartialAcc::I64(v) => v.resize(n, init as i64),
        }
    }
}

/// Materialized partial aggregation state of one worker: group keys,
/// per-group tuple counts, and one accumulator array per aggregate.
/// All owned data — `Send` across the worker channel.
#[derive(Debug)]
pub struct AggrPartial {
    /// One key vector per grouping key (raw codes for enum keys).
    pub keys: Vec<Vector>,
    /// Per-group tuple counts (drives the AVG epilogue).
    pub counts: Vec<i64>,
    /// Per-aggregate accumulator arrays, indexed like `keys`' groups.
    pub accs: Vec<PartialAcc>,
    /// Number of groups (every array above has this length).
    pub n_groups: usize,
    /// Spilled table images evicted during the build, oldest first
    /// (empty when the build fit in memory). The merge stage folds
    /// these before the in-memory groups above.
    pub runs: Vec<crate::spill::AggRun>,
}

/// How to merge one aggregate's partial accumulators.
#[derive(Debug, Clone)]
pub struct MergeAgg {
    /// Aggregate function (decides the merge rule and epilogue).
    pub func: AggFunc,
    /// Accumulator scalar type (`F64` or `I64`).
    pub acc_ty: ScalarType,
    /// Init value for groups absent from a partial.
    pub init: f64,
}

/// Everything the merge stage needs to combine worker partials and
/// emit final batches, captured from a bound aggregation operator.
#[derive(Debug, Clone)]
pub struct MergeSpec {
    /// Output shape (keys then aggregates), identical to the
    /// aggregation operator's own fields.
    pub fields: Vec<OutField>,
    /// Physical key types as stored in partials (codes for enums).
    pub key_types: Vec<ScalarType>,
    /// Dictionaries for enum keys, applied at emission.
    pub key_dicts: Vec<Option<EnumDict>>,
    /// Per-aggregate merge rules.
    pub aggs: Vec<MergeAgg>,
    /// Ungrouped aggregation: empty input still yields one zero row.
    pub ungrouped: bool,
}

impl AccData {
    #[allow(dead_code)]
    fn len(&self) -> usize {
        match self {
            AccData::F64(v) => v.len(),
            AccData::I64(v) => v.len(),
        }
    }

    fn ty(&self) -> ScalarType {
        match self {
            AccData::F64(_) => ScalarType::F64,
            AccData::I64(_) => ScalarType::I64,
        }
    }

    fn grow(&mut self, n: usize, init: f64) {
        match self {
            AccData::F64(v) => v.resize(n, init),
            AccData::I64(v) => v.resize(n, init as i64),
        }
    }
}

/// One aggregate's compiled state.
struct AggState {
    name: String,
    func: AggFunc,
    /// Argument program (`None` for `Count`).
    prog: Option<ExprProg>,
    acc: AccData,
    sig: String,
}

impl AggState {
    fn bind(
        spec: &AggExpr,
        fields: &[OutField],
        vector_size: usize,
        compound: bool,
    ) -> Result<Self, PlanError> {
        let (prog, acc, sig) = match spec.func {
            AggFunc::Count => (
                None,
                AccData::I64(Vec::new()),
                "aggr_count_u32_col".to_owned(),
            ),
            _ => {
                let arg = spec.arg.as_ref().ok_or_else(|| {
                    PlanError::Invalid(format!("aggregate {} needs an argument", spec.name))
                })?;
                // AVG always accumulates in f64; integer SUM/MIN/MAX in
                // i64; everything else in f64.
                let raw = ExprProg::compile(arg, fields, vector_size, compound)?;
                let want = match (spec.func, raw.result_type()) {
                    (AggFunc::Avg, _) => ScalarType::F64,
                    (_, t) if t.is_integer() => ScalarType::I64,
                    _ => ScalarType::F64,
                };
                let prog = if raw.result_type() == want {
                    raw
                } else {
                    ExprProg::compile(
                        &Expr::Cast(want, Box::new(arg.clone())),
                        fields,
                        vector_size,
                        compound,
                    )?
                };
                let acc = match want {
                    ScalarType::F64 => AccData::F64(Vec::new()),
                    _ => AccData::I64(Vec::new()),
                };
                let fname = match spec.func {
                    AggFunc::Sum | AggFunc::Avg => "sum",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                    AggFunc::Count => unreachable!(),
                };
                let sig = format!("aggr_{}_{}_col_u32_col", fname, want.sig_name());
                (Some(prog), acc, sig)
            }
        };
        Ok(AggState {
            name: spec.name.clone(),
            func: spec.func,
            prog,
            acc,
            sig,
        })
    }

    /// Accumulator init value for newly created groups.
    fn init_value(&self) -> f64 {
        match (self.func, &self.acc) {
            (AggFunc::Min, AccData::F64(_)) => f64::MAX,
            (AggFunc::Max, AccData::F64(_)) => f64::MIN,
            (AggFunc::Min, AccData::I64(_)) => i64::MAX as f64,
            (AggFunc::Max, AccData::I64(_)) => i64::MIN as f64,
            _ => 0.0,
        }
    }

    /// Output type: AVG emits f64, COUNT emits i64, others match acc.
    fn out_type(&self) -> ScalarType {
        match self.func {
            AggFunc::Avg => ScalarType::F64,
            AggFunc::Count => ScalarType::I64,
            _ => self.acc.ty(),
        }
    }

    /// Vectorized update for one batch.
    fn update(
        &mut self,
        batch: &Batch,
        grp: &[u32],
        sel: Option<&SelVec>,
        n_groups: usize,
        prof: &mut Profiler,
    ) {
        self.acc.grow(n_groups, self.init_value());
        let live = sel.map_or(batch.len, |s| s.len());
        match (&mut self.prog, self.func) {
            (None, AggFunc::Count) => {
                let AccData::I64(acc) = &mut self.acc else {
                    unreachable!()
                };
                let t0 = prof.start();
                vaggr::aggr_count(acc, grp, sel);
                prof.record_prim(&self.sig, t0, live, live * 4 + live * 8);
            }
            (Some(prog), func) => {
                let vals = prog.eval(batch, sel, prof);
                let t0 = prof.start();
                let bytes = live * (vals.scalar_type().width() + 4 + 8);
                match (&mut self.acc, vals) {
                    (AccData::F64(acc), Vector::F64(v)) => match func {
                        AggFunc::Sum | AggFunc::Avg => vaggr::aggr_sum_f64_col(acc, v, grp, sel),
                        AggFunc::Min => vaggr::aggr_min_f64_col(acc, v, grp, sel),
                        AggFunc::Max => vaggr::aggr_max_f64_col(acc, v, grp, sel),
                        AggFunc::Count => unreachable!(),
                    },
                    (AccData::I64(acc), Vector::I64(v)) => match func {
                        AggFunc::Sum => vaggr::aggr_sum_i64_col(acc, v, grp, sel),
                        AggFunc::Min => vaggr::aggr_min_i64_col(acc, v, grp, sel),
                        AggFunc::Max => vaggr::aggr_max_i64_col(acc, v, grp, sel),
                        AggFunc::Avg | AggFunc::Count => unreachable!(),
                    },
                    (acc, v) => panic!(
                        "aggregate type mismatch: acc {:?}, values {:?}",
                        acc.ty(),
                        v.scalar_type()
                    ),
                }
                prof.record_prim(&self.sig, t0, live, bytes);
            }
            (None, _) => unreachable!("only Count has no argument"),
        }
    }

    /// Emit `[start, start+n)` of the final values into `out`,
    /// applying the AVG epilogue against `counts`.
    fn emit(&self, out: &mut Vector, start: usize, n: usize, counts: &[i64], prof: &mut Profiler) {
        match (self.func, &self.acc) {
            (AggFunc::Avg, AccData::F64(sums)) => {
                let t0 = prof.start();
                let o = out.as_f64_mut();
                let base = o.len();
                o.resize(base + n, 0.0);
                vaggr::aggr_avg_epilogue(
                    &mut o[base..],
                    &sums[start..start + n],
                    &counts[start..start + n],
                );
                prof.record_prim("aggr_avg_epilogue", t0, n, n * 24);
            }
            (_, AccData::F64(v)) => out.as_f64_mut().extend_from_slice(&v[start..start + n]),
            (_, AccData::I64(v)) => out.as_i64_mut().extend_from_slice(&v[start..start + n]),
        }
    }
}

/// Compute the hash vector of the key columns (hash + rehash chain).
/// Shared with the hash join.
pub(crate) fn hash_keys(
    keys: &[&Vector],
    hash_buf: &mut [u64],
    n: usize,
    sel: Option<&SelVec>,
    prof: &mut Profiler,
) {
    for (ki, kv) in keys.iter().enumerate() {
        let first = ki == 0;
        let t0 = prof.start();
        let sig: &str = match kv {
            Vector::U8(v) => {
                if first {
                    vhash::map_hash_u8_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_u8_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_u8_col"
                } else {
                    "map_rehash_u8_col"
                }
            }
            Vector::U16(v) => {
                if first {
                    vhash::map_hash_u16_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_u16_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_u16_col"
                } else {
                    "map_rehash_u16_col"
                }
            }
            Vector::U32(v) => {
                if first {
                    vhash::map_hash_u32_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_u32_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_u32_col"
                } else {
                    "map_rehash_u32_col"
                }
            }
            Vector::I32(v) => {
                if first {
                    vhash::map_hash_i32_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_i32_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_i32_col"
                } else {
                    "map_rehash_i32_col"
                }
            }
            Vector::I64(v) => {
                if first {
                    vhash::map_hash_i64_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_i64_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_i64_col"
                } else {
                    "map_rehash_i64_col"
                }
            }
            Vector::F64(v) => {
                if first {
                    vhash::map_hash_f64_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_f64_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_f64_col"
                } else {
                    "map_rehash_f64_col"
                }
            }
            Vector::Str(v) => {
                if first {
                    vhash::map_hash_str_col(hash_buf, v, sel)
                } else {
                    vhash::map_rehash_str_col(hash_buf, v, sel)
                }
                if first {
                    "map_hash_str_col"
                } else {
                    "map_rehash_str_col"
                }
            }
            other => panic!("cannot hash {:?} keys", other.scalar_type()),
        };
        let live = sel.map_or(n, |s| s.len());
        prof.record_prim(sig, t0, live, live * (kv.scalar_type().width() + 8));
    }
}

/// Grow an open-addressing bucket array until it can absorb `target`
/// groups at ≤70% load, rehashing the existing `n_groups` entries.
#[allow(clippy::needless_range_loop)] // indexing both hash and bucket arrays
pub(crate) fn ensure_capacity(
    buckets: &mut Vec<u32>,
    group_hashes: &[u64],
    n_groups: usize,
    target: usize,
) {
    let mut cap = buckets.len();
    while cap * 7 <= target * 10 {
        cap *= 4;
    }
    if cap == buckets.len() {
        return;
    }
    let mask = (cap - 1) as u64;
    let mut grown = vec![0u32; cap];
    for g in 0..n_groups {
        let mut b = (group_hashes[g] & mask) as usize;
        while grown[b] != 0 {
            b = (b + 1) & mask as usize;
        }
        grown[b] = g as u32 + 1;
    }
    *buckets = grown;
}

/// `HashAggr(Dataflow, List<Exp>, List<AggrExp>)` — general grouping.
pub struct HashAggrOp {
    child: Box<dyn Operator>,
    key_progs: Vec<ExprProg>,
    /// Enum dictionaries for code-typed keys: grouping runs on the raw
    /// codes, emission decodes to logical values.
    key_dicts: Vec<Option<EnumDict>>,
    aggs: Vec<AggState>,
    fields: Vec<OutField>,
    // Hash table: open addressing, bucket holds group_id + 1 (0 = empty).
    buckets: Vec<u32>,
    group_hashes: Vec<u64>,
    key_store: Vec<Vector>,
    group_counts: Vec<i64>,
    n_groups: usize,
    // Scratch.
    hash_buf: Vec<u64>,
    grp_buf: Vec<u32>,
    // Emission.
    built: bool,
    emit_pos: usize,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    mem: MemTracker,
    /// Table images evicted under memory pressure, oldest first.
    agg_runs: Vec<AggRun>,
    /// Next radix partition the spilled emission will re-aggregate.
    spill_part: usize,
    /// Per-partition merge feeding the spilled emission path.
    spill_emit: Option<MergeAggrOp>,
}

impl HashAggrOp {
    /// Bind keys and aggregates against `child`'s shape.
    ///
    /// `key_dicts[i]` (when present, and the key is a code-typed bare
    /// column reference) makes key `i` group on raw codes and decode
    /// only at emission.
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[(String, Expr)],
        key_dicts: Vec<Option<EnumDict>>,
        aggs: &[AggExpr],
        vector_size: usize,
        compound: bool,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        assert!(key_dicts.is_empty() || key_dicts.len() == keys.len());
        let mut key_progs = Vec::new();
        let mut fields = Vec::new();
        let mut key_store = Vec::new();
        let mut key_dicts = if key_dicts.is_empty() {
            vec![None; keys.len()]
        } else {
            key_dicts
        };
        for (i, (name, e)) in keys.iter().enumerate() {
            let prog = ExprProg::compile(e, child.fields(), vector_size, compound)?;
            // Dictionaries only apply to code-typed keys.
            if !matches!(prog.result_type(), ScalarType::U8 | ScalarType::U16) {
                key_dicts[i] = None;
            }
            let out_ty = key_dicts[i]
                .as_ref()
                .map_or(prog.result_type(), |d| d.value_type());
            fields.push(OutField::new(name.clone(), out_ty));
            key_store.push(Vector::with_capacity(prog.result_type(), 16));
            key_progs.push(prog);
        }
        let mut states = Vec::new();
        for spec in aggs {
            let st = AggState::bind(spec, child.fields(), vector_size, compound)?;
            fields.push(OutField::new(st.name.clone(), st.out_type()));
            states.push(st);
        }
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(HashAggrOp {
            child,
            key_progs,
            key_dicts,
            aggs: states,
            fields,
            buckets: vec![0; 1024],
            group_hashes: Vec::new(),
            key_store,
            group_counts: Vec::new(),
            n_groups: 0,
            hash_buf: Vec::new(),
            grp_buf: Vec::new(),
            built: false,
            emit_pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
            mem: MemTracker::new(ctx, "hash aggregation table"),
            agg_runs: Vec::new(),
            spill_part: 0,
            spill_emit: None,
        })
    }

    /// The hash table's current footprint, charged against the budget.
    fn footprint(&self) -> usize {
        self.buckets.len() * 4
            + self.group_hashes.len() * 8
            + self.key_store.iter().map(|v| v.byte_size()).sum::<usize>()
            + self.group_counts.len() * 8
            + self.aggs.len() * self.n_groups * 8
    }

    /// Consume the whole child dataflow into the hash table.
    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        while let Some(batch) = self.child.next(prof)? {
            let t_op = prof.start();
            let n = batch.len;
            let sel = batch.sel.as_deref();
            // Reserve table capacity for the worst case of this batch
            // (every live tuple a new group) before the insertion loop:
            // the open-addressing probe must never face a full table.
            let live_worst = sel.map_or(n, |s| s.len());
            ensure_capacity(
                &mut self.buckets,
                &self.group_hashes,
                self.n_groups,
                self.n_groups + live_worst,
            );
            // 1. Evaluate key expressions.
            let key_vecs: Vec<&Vector> = self
                .key_progs
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            // 2. Vectorized hash of the keys.
            self.hash_buf.resize(n, 0);
            self.grp_buf.resize(n, 0);
            hash_keys(&key_vecs, &mut self.hash_buf, n, sel, prof);
            // 3. Hash table maintenance (scalar loop, like Fig. 6).
            let t0 = prof.start();
            let mask = (self.buckets.len() - 1) as u64;
            let mut maintain = |i: usize,
                                buckets: &mut Vec<u32>,
                                key_store: &mut Vec<Vector>,
                                group_hashes: &mut Vec<u64>,
                                n_groups: &mut usize| {
                let h = self.hash_buf[i];
                let mut b = (h & mask) as usize;
                loop {
                    let slot = buckets[b];
                    if slot == 0 {
                        let g = *n_groups;
                        *n_groups += 1;
                        for (ks, kv) in key_store.iter_mut().zip(key_vecs.iter()) {
                            push_from(ks, kv, i);
                        }
                        group_hashes.push(h);
                        buckets[b] = g as u32 + 1;
                        self.grp_buf[i] = g as u32;
                        break;
                    }
                    let g = (slot - 1) as usize;
                    if group_hashes[g] == h
                        && key_store
                            .iter()
                            .zip(key_vecs.iter())
                            .all(|(ks, kv)| eq_at(ks, g, kv, i))
                    {
                        self.grp_buf[i] = g as u32;
                        break;
                    }
                    b = (b + 1) & mask as usize;
                }
            };
            let live = sel.map_or(n, |s| s.len());
            match sel {
                None => {
                    for i in 0..n {
                        maintain(
                            i,
                            &mut self.buckets,
                            &mut self.key_store,
                            &mut self.group_hashes,
                            &mut self.n_groups,
                        );
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        maintain(
                            i,
                            &mut self.buckets,
                            &mut self.key_store,
                            &mut self.group_hashes,
                            &mut self.n_groups,
                        );
                    }
                }
            }
            prof.record_prim("aggr_hashtable_maintain", t0, live, live * 12);
            // 4. Vectorized accumulator updates.
            self.group_counts.resize(self.n_groups, 0);
            let tc = prof.start();
            vaggr::aggr_count(&mut self.group_counts, &self.grp_buf, sel);
            prof.record_prim("aggr_count_u32_col", tc, live, live * 12);
            for agg in &mut self.aggs {
                agg.update(batch, &self.grp_buf, sel, self.n_groups, prof);
            }
            prof.record_op("Aggr(HASH)", t_op, live);
            let fp = self.footprint();
            if !self.mem.try_ensure(fp) {
                // Memory budget exhausted. With a spill budget, evict
                // the table as a partitioned on-disk run; without one,
                // abort exactly as before the spill subsystem.
                if self.mem.context().spill_budget().is_some() && self.n_groups > 0 {
                    self.spill_table()?;
                } else {
                    self.mem.ensure(fp)?;
                }
            }
        }
        if !self.agg_runs.is_empty() && self.n_groups > 0 {
            // The in-memory remainder joins the runs so emission sees
            // one uniform source list per partition.
            self.spill_table()?;
        }
        self.built = true;
        Ok(())
    }

    /// Evict the current table as one partitioned spill run and free
    /// its memory charge. Groups are radix-partitioned by the top
    /// hash bits; first-seen order is preserved within a partition.
    fn spill_table(&mut self) -> Result<(), PlanError> {
        for agg in &mut self.aggs {
            agg.acc.grow(self.n_groups, agg.init_value());
        }
        self.group_counts.resize(self.n_groups, 0);
        let ctx = Arc::clone(self.mem.context());
        let mgr = ctx.spill_manager()?;
        let mut w = mgr.start_run(&ctx, "hash aggregation table")?;
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); crate::spill::AGG_SPILL_PARTS];
        for g in 0..self.n_groups {
            parts[agg_partition(self.group_hashes[g])].push(g as u32);
        }
        let mut segments = Vec::new();
        for (p, gids) in parts.iter().enumerate() {
            if gids.is_empty() {
                continue;
            }
            let offset = w.offset();
            let blocks_before = w.blocks();
            for chunk in gids.chunks(SPILL_BLOCK_ROWS) {
                let mut block: Vec<Vector> =
                    Vec::with_capacity(self.key_store.len() + 1 + self.aggs.len());
                for ks in &self.key_store {
                    let mut v = Vector::with_capacity(ks.scalar_type(), chunk.len());
                    for &g in chunk {
                        push_from(&mut v, ks, g as usize);
                    }
                    block.push(v);
                }
                block.push(Vector::I64(
                    chunk
                        .iter()
                        .map(|&g| self.group_counts[g as usize])
                        .collect(),
                ));
                for agg in &self.aggs {
                    block.push(match &agg.acc {
                        AccData::F64(a) => {
                            Vector::F64(chunk.iter().map(|&g| a[g as usize]).collect())
                        }
                        AccData::I64(a) => {
                            Vector::I64(chunk.iter().map(|&g| a[g as usize]).collect())
                        }
                    });
                }
                w.write_block(&block)?;
            }
            segments.push(AggSegment {
                part: p,
                offset,
                blocks: w.blocks() - blocks_before,
                rows: gids.len(),
            });
        }
        let run = w.finish()?;
        self.agg_runs.push(AggRun {
            file: run.file,
            segments,
        });
        self.buckets = vec![0; 1024];
        self.group_hashes = Vec::new();
        for ks in &mut self.key_store {
            *ks = Vector::with_capacity(ks.scalar_type(), 16);
        }
        self.group_counts = Vec::new();
        self.n_groups = 0;
        for agg in &mut self.aggs {
            agg.acc = match &agg.acc {
                AccData::F64(_) => AccData::F64(Vec::new()),
                AccData::I64(_) => AccData::I64(Vec::new()),
            };
        }
        self.mem.release_all();
        Ok(())
    }

    /// Advance spilled emission to the next non-empty partition:
    /// re-read its segments from every run (oldest first) and stand up
    /// a bounded merge over just that partition's groups.
    fn load_next_partition(&mut self) -> Result<bool, PlanError> {
        let ctx = Arc::clone(self.mem.context());
        let mgr = ctx.spill_manager()?;
        while self.spill_part < crate::spill::AGG_SPILL_PARTS {
            let p = self.spill_part;
            self.spill_part += 1;
            let mut partials = Vec::new();
            for run in &self.agg_runs {
                if let Some(seg) = run.segments.iter().find(|s| s.part == p) {
                    partials.push(read_agg_segment(
                        &run.file,
                        seg,
                        self.key_store.len(),
                        self.aggs.len(),
                        &mgr,
                        &ctx,
                    )?);
                }
            }
            if partials.is_empty() {
                continue;
            }
            let mut spec = self
                .partial_merge_spec()
                .expect("hash aggregation always has a merge spec");
            // A spilled build has at least one real group; never let a
            // per-partition merge synthesize the ungrouped-empty row.
            spec.ungrouped = false;
            self.spill_emit = Some(MergeAggrOp::new(spec, partials, self.vector_size, ctx));
            return Ok(true);
        }
        Ok(false)
    }
}

impl Operator for HashAggrOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.built {
            self.build(prof)?;
            // SQL semantics: an ungrouped aggregation over an empty
            // input still yields one row (count 0, sums 0). A spilled
            // build always has real groups, so this never races the
            // partitioned emission below.
            if self.agg_runs.is_empty() && self.key_progs.is_empty() && self.n_groups == 0 {
                self.n_groups = 1;
                self.group_counts.push(0);
                for agg in &mut self.aggs {
                    agg.acc.grow(1, agg.init_value());
                }
            }
        }
        if !self.agg_runs.is_empty() {
            // Spilled emission: one radix partition at a time, each
            // re-aggregated by a bounded merge over its run segments.
            loop {
                if let Some(m) = self.spill_emit.as_mut() {
                    if m.next(prof)?.is_some() {
                        return Ok(Some(
                            self.spill_emit.as_ref().expect("just emitted").last_out(),
                        ));
                    }
                    self.spill_emit = None;
                }
                if !self.load_next_partition()? {
                    return Ok(None);
                }
            }
        }
        if self.emit_pos >= self.n_groups {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.n_groups - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        let nkeys = self.key_store.len();
        for k in 0..nkeys {
            let mut v = self.pools[k].writable();
            match &self.key_dicts[k] {
                None => extend_range(&mut v, &self.key_store[k], start, n),
                Some(dict) => {
                    // Grouped on codes; decode the emitted slice.
                    for g in start..start + n {
                        let code = match &self.key_store[k] {
                            Vector::U8(c) => c[g] as usize,
                            Vector::U16(c) => c[g] as usize,
                            other => panic!("code key is {:?}", other.scalar_type()),
                        };
                        v.push_value(&dict.decode(code));
                    }
                }
            }
            self.pools[k].publish(v, &mut self.out);
        }
        for (a, agg) in self.aggs.iter().enumerate() {
            let mut v = self.pools[nkeys + a].writable();
            agg.emit(&mut v, start, n, &self.group_counts, prof);
            self.pools[nkeys + a].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        self.mem.release_all();
        self.buckets = vec![0; 1024];
        self.group_hashes.clear();
        for v in &mut self.key_store {
            v.clear();
        }
        self.group_counts.clear();
        self.n_groups = 0;
        self.built = false;
        self.emit_pos = 0;
        self.agg_runs.clear();
        self.spill_part = 0;
        self.spill_emit = None;
        for agg in &mut self.aggs {
            agg.acc.grow(0, 0.0);
            match &mut agg.acc {
                AccData::F64(v) => v.clear(),
                AccData::I64(v) => v.clear(),
            }
        }
    }

    fn take_partial_aggr(&mut self, prof: &mut Profiler) -> Result<Option<AggrPartial>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        // No ungrouped-empty synthesis here: the merge stage decides
        // whether the *combined* result is empty.
        for agg in &mut self.aggs {
            agg.acc.grow(self.n_groups, agg.init_value());
        }
        self.group_counts.resize(self.n_groups, 0);
        Ok(Some(AggrPartial {
            keys: std::mem::take(&mut self.key_store),
            counts: std::mem::take(&mut self.group_counts),
            accs: self
                .aggs
                .iter_mut()
                .map(
                    |a| match std::mem::replace(&mut a.acc, AccData::I64(Vec::new())) {
                        AccData::F64(v) => PartialAcc::F64(v),
                        AccData::I64(v) => PartialAcc::I64(v),
                    },
                )
                .collect(),
            n_groups: self.n_groups,
            runs: std::mem::take(&mut self.agg_runs),
        }))
    }

    fn partial_merge_spec(&self) -> Option<MergeSpec> {
        Some(MergeSpec {
            fields: self.fields.clone(),
            key_types: self.key_store.iter().map(|v| v.scalar_type()).collect(),
            key_dicts: self.key_dicts.clone(),
            aggs: self
                .aggs
                .iter()
                .map(|a| MergeAgg {
                    func: a.func,
                    acc_ty: a.acc.ty(),
                    init: a.init_value(),
                })
                .collect(),
            ungrouped: self.key_progs.is_empty(),
        })
    }
}

/// One key of a direct aggregation: a small-domain code column.
pub struct DirectKey {
    /// Output column name.
    pub name: String,
    /// Input column (must be `U8` or `U16` codes in the dataflow).
    pub col: usize,
    /// Domain cardinality (dictionary size, or 256 for raw `u8`).
    pub card: u32,
    /// Dictionary to decode codes on emission (`None` emits raw codes).
    pub dict: Option<EnumDict>,
}

/// `DirectAggr` — aggregate-table slots indexed by key bits (§4.1.2).
pub struct DirectAggrOp {
    child: Box<dyn Operator>,
    keys: Vec<DirectKey>,
    aggs: Vec<AggState>,
    fields: Vec<OutField>,
    slots: usize,
    group_counts: Vec<i64>,
    grp_buf: Vec<u32>,
    /// Occupied slots in first-seen order — emission is deterministic.
    occupied: Vec<u32>,
    built: bool,
    emit_pos: usize,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    mem: MemTracker,
}

impl DirectAggrOp {
    /// Maximum accumulator-table size the binder accepts.
    pub const MAX_SLOTS: usize = 1 << 20;

    /// Bind a direct aggregation.
    pub fn new(
        child: Box<dyn Operator>,
        keys: Vec<DirectKey>,
        aggs: &[AggExpr],
        vector_size: usize,
        compound: bool,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut slots = 1usize;
        let mut fields = Vec::new();
        for k in &keys {
            let f = &child.fields()[k.col];
            if !matches!(f.ty, ScalarType::U8 | ScalarType::U16) {
                return Err(PlanError::TypeMismatch(format!(
                    "direct aggregation key `{}` must be u8/u16 codes, got {}",
                    f.name, f.ty
                )));
            }
            slots = slots.saturating_mul(k.card as usize);
            let out_ty = k.dict.as_ref().map_or(f.ty, |d| d.value_type());
            fields.push(OutField::new(k.name.clone(), out_ty));
        }
        if slots > Self::MAX_SLOTS {
            return Err(PlanError::Invalid(format!(
                "direct aggregation domain too large: {slots} slots"
            )));
        }
        let mut states = Vec::new();
        for spec in aggs {
            let st = AggState::bind(spec, child.fields(), vector_size, compound)?;
            fields.push(OutField::new(st.name.clone(), st.out_type()));
            states.push(st);
        }
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(DirectAggrOp {
            child,
            keys,
            aggs: states,
            fields,
            slots,
            group_counts: Vec::new(),
            grp_buf: Vec::new(),
            occupied: Vec::new(),
            built: false,
            emit_pos: 0,
            pools,
            out: Batch::new(),
            vector_size,
            mem: MemTracker::new(ctx, "direct aggregation table"),
        })
    }

    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        // Pre-size accumulators to the full (small) domain; the whole
        // table is charged up front (its size is fixed by the key
        // domain, not the data).
        self.mem
            .ensure(self.slots * (8 + self.aggs.len() * 8 + 4))?;
        self.group_counts.resize(self.slots, 0);
        for agg in &mut self.aggs {
            agg.acc.grow(self.slots, agg.init_value());
        }
        while let Some(batch) = self.child.next(prof)? {
            let t_op = prof.start();
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let live = sel.map_or(n, |s| s.len());
            self.grp_buf.resize(n, 0);
            // Direct group computation: mixed-radix code chaining.
            for (ki, key) in self.keys.iter().enumerate() {
                let t0 = prof.start();
                let kv = &batch.columns[key.col];
                let (sig, bytes) = match kv.as_ref() {
                    Vector::U8(codes) => {
                        if ki == 0 {
                            vhash::map_directgrp_u8_col(&mut self.grp_buf, codes, sel);
                            ("map_uidx_u8_col", live * 5)
                        } else {
                            vhash::map_directgrp_u8_chain(&mut self.grp_buf, codes, key.card, sel);
                            ("map_directgrp_uidx_col_u8_col", live * 9)
                        }
                    }
                    Vector::U16(codes) => {
                        if ki == 0 {
                            for (g, &c) in self.grp_buf.iter_mut().zip(codes.iter()) {
                                *g = c as u32;
                            }
                            ("map_uidx_u16_col", live * 6)
                        } else {
                            vhash::map_directgrp_u16_chain(&mut self.grp_buf, codes, key.card, sel);
                            ("map_directgrp_uidx_col_u16_col", live * 10)
                        }
                    }
                    other => panic!("direct key must be codes, got {:?}", other.scalar_type()),
                };
                prof.record_prim(sig, t0, live, bytes);
            }
            // Track first-seen occupancy, then update counts.
            let t0 = prof.start();
            let track = |i: usize, counts: &mut [i64], occupied: &mut Vec<u32>, grp: &[u32]| {
                let g = grp[i] as usize;
                if counts[g] == 0 {
                    occupied.push(g as u32);
                }
                counts[g] += 1;
            };
            match sel {
                None => {
                    for i in 0..n {
                        track(i, &mut self.group_counts, &mut self.occupied, &self.grp_buf);
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        track(i, &mut self.group_counts, &mut self.occupied, &self.grp_buf);
                    }
                }
            }
            prof.record_prim("aggr_count_u32_col", t0, live, live * 12);
            for agg in &mut self.aggs {
                agg.update(batch, &self.grp_buf, sel, self.slots, prof);
            }
            prof.record_op("Aggr(DIRECT)", t_op, live);
        }
        self.built = true;
        Ok(())
    }

    /// Decode slot id into the key value for key `ki`.
    fn key_code(&self, slot: u32, ki: usize) -> u32 {
        // Keys chain as g = ((k0 * card1) + k1) * card2 + k2 …
        let mut divisor = 1u32;
        for k in self.keys.iter().skip(ki + 1) {
            divisor *= k.card;
        }
        (slot / divisor) % self.keys[ki].card
    }
}

impl Operator for DirectAggrOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        if self.emit_pos >= self.occupied.len() {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.occupied.len() - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        let nkeys = self.keys.len();
        for ki in 0..nkeys {
            let mut v = self.pools[ki].writable();
            for &slot in &self.occupied[start..start + n] {
                let code = self.key_code(slot, ki);
                match &self.keys[ki].dict {
                    None => match &mut v {
                        Vector::U8(b) => b.push(code as u8),
                        Vector::U16(b) => b.push(code as u16),
                        other => panic!("raw code emission into {:?}", other.scalar_type()),
                    },
                    Some(dict) => v.push_value(&dict.decode(code as usize)),
                }
            }
            self.pools[ki].publish(v, &mut self.out);
        }
        // Compact the aggregate slots for occupied groups.
        for (a, agg) in self.aggs.iter().enumerate() {
            let mut v = self.pools[nkeys + a].writable();
            for &slot in &self.occupied[start..start + n] {
                agg.emit(&mut v, slot as usize, 1, &self.group_counts, prof);
            }
            self.pools[nkeys + a].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        self.mem.release_all();
        self.group_counts.clear();
        self.occupied.clear();
        self.built = false;
        self.emit_pos = 0;
        for agg in &mut self.aggs {
            match &mut agg.acc {
                AccData::F64(v) => v.clear(),
                AccData::I64(v) => v.clear(),
            }
        }
    }

    fn take_partial_aggr(&mut self, prof: &mut Profiler) -> Result<Option<AggrPartial>, PlanError> {
        if !self.built {
            self.build(prof)?;
        }
        // Compact the direct table down to occupied slots, emitting raw
        // key codes; the merge stage re-groups by (code…) tuples.
        let n = self.occupied.len();
        let mut keys = Vec::with_capacity(self.keys.len());
        for (ki, key) in self.keys.iter().enumerate() {
            let ty = self.child.fields()[key.col].ty;
            let mut v = Vector::with_capacity(ty, n);
            for &slot in &self.occupied {
                let code = self.key_code(slot, ki);
                match &mut v {
                    Vector::U8(b) => b.push(code as u8),
                    Vector::U16(b) => b.push(code as u16),
                    other => panic!("direct key codes are {:?}", other.scalar_type()),
                }
            }
            keys.push(v);
        }
        let counts: Vec<i64> = self
            .occupied
            .iter()
            .map(|&s| self.group_counts[s as usize])
            .collect();
        let accs: Vec<PartialAcc> = self
            .aggs
            .iter()
            .map(|a| match &a.acc {
                AccData::F64(v) => {
                    PartialAcc::F64(self.occupied.iter().map(|&s| v[s as usize]).collect())
                }
                AccData::I64(v) => {
                    PartialAcc::I64(self.occupied.iter().map(|&s| v[s as usize]).collect())
                }
            })
            .collect();
        Ok(Some(AggrPartial {
            keys,
            counts,
            accs,
            n_groups: n,
            runs: Vec::new(),
        }))
    }

    fn partial_merge_spec(&self) -> Option<MergeSpec> {
        Some(MergeSpec {
            fields: self.fields.clone(),
            key_types: self
                .keys
                .iter()
                .map(|k| self.child.fields()[k.col].ty)
                .collect(),
            key_dicts: self.keys.iter().map(|k| k.dict.clone()).collect(),
            aggs: self
                .aggs
                .iter()
                .map(|a| MergeAgg {
                    func: a.func,
                    acc_ty: a.acc.ty(),
                    init: a.init_value(),
                })
                .collect(),
            ungrouped: self.keys.is_empty(),
        })
    }
}

/// `OrdAggr` — ordered aggregation: "chosen if all group-members will
/// arrive right after each other in the source Dataflow" (§4.1.2).
pub struct OrdAggrOp {
    child: Box<dyn Operator>,
    key_progs: Vec<ExprProg>,
    aggs: Vec<AggState>,
    fields: Vec<OutField>,
    /// Current group's key values (length-1 vectors), if any group open.
    cur_keys: Option<Vec<Vector>>,
    group_counts: Vec<i64>,
    /// Completed groups' keys, pending emission.
    done_keys: Vec<Vector>,
    n_groups: usize,
    grp_buf: Vec<u32>,
    emit_pos: usize,
    input_done: bool,
    pools: Vec<VecPool>,
    out: Batch,
    vector_size: usize,
    mem: MemTracker,
}

impl OrdAggrOp {
    /// Bind an ordered aggregation (input must be clustered on the keys).
    pub fn new(
        child: Box<dyn Operator>,
        keys: &[(String, Expr)],
        aggs: &[AggExpr],
        vector_size: usize,
        compound: bool,
        ctx: std::sync::Arc<QueryContext>,
    ) -> Result<Self, PlanError> {
        let mut key_progs = Vec::new();
        let mut fields = Vec::new();
        let mut done_keys = Vec::new();
        for (name, e) in keys {
            let prog = ExprProg::compile(e, child.fields(), vector_size, compound)?;
            fields.push(OutField::new(name.clone(), prog.result_type()));
            done_keys.push(Vector::with_capacity(prog.result_type(), 16));
            key_progs.push(prog);
        }
        let mut states = Vec::new();
        for spec in aggs {
            let st = AggState::bind(spec, child.fields(), vector_size, compound)?;
            fields.push(OutField::new(st.name.clone(), st.out_type()));
            states.push(st);
        }
        let pools = fields
            .iter()
            .map(|f| VecPool::new(f.ty, vector_size))
            .collect();
        Ok(OrdAggrOp {
            child,
            key_progs,
            aggs: states,
            fields,
            cur_keys: None,
            group_counts: Vec::new(),
            done_keys,
            n_groups: 0,
            grp_buf: Vec::new(),
            emit_pos: 0,
            input_done: false,
            pools,
            out: Batch::new(),
            vector_size,
            mem: MemTracker::new(ctx, "ordered aggregation state"),
        })
    }

    fn build(&mut self, prof: &mut Profiler) -> Result<(), PlanError> {
        while let Some(batch) = self.child.next(prof)? {
            let t_op = prof.start();
            let n = batch.len;
            let sel = batch.sel.as_deref();
            let live = sel.map_or(n, |s| s.len());
            let key_vecs: Vec<&Vector> = self
                .key_progs
                .iter_mut()
                .map(|p| p.eval(batch, sel, prof))
                .collect();
            // Assign group ids by detecting boundaries in arrival order.
            let t0 = prof.start();
            self.grp_buf.resize(n, 0);
            let mut assign = |i: usize| {
                let same = match &self.cur_keys {
                    None => false,
                    Some(cur) => cur
                        .iter()
                        .zip(key_vecs.iter())
                        .all(|(c, kv)| eq_at(c, 0, kv, i)),
                };
                if !same {
                    // Open a new group: record its keys.
                    let mut newcur = Vec::with_capacity(key_vecs.len());
                    for kv in &key_vecs {
                        let mut one = Vector::with_capacity(kv.scalar_type(), 1);
                        push_from(&mut one, kv, i);
                        // Also append to the done-key store (group order).
                        push_from(&mut self.done_keys[newcur.len()], kv, i);
                        newcur.push(one);
                    }
                    self.cur_keys = Some(newcur);
                    self.n_groups += 1;
                }
                self.grp_buf[i] = (self.n_groups - 1) as u32;
            };
            match sel {
                None => {
                    for i in 0..n {
                        assign(i);
                    }
                }
                Some(s) => {
                    for i in s.iter() {
                        assign(i);
                    }
                }
            }
            prof.record_prim("aggr_ordered_boundaries", t0, live, live * 8);
            self.group_counts.resize(self.n_groups, 0);
            let tc = prof.start();
            vaggr::aggr_count(&mut self.group_counts, &self.grp_buf, sel);
            prof.record_prim("aggr_count_u32_col", tc, live, live * 12);
            for agg in &mut self.aggs {
                agg.update(batch, &self.grp_buf, sel, self.n_groups, prof);
            }
            prof.record_op("Aggr(ORDERED)", t_op, live);
            let bytes = self.done_keys.iter().map(|v| v.byte_size()).sum::<usize>()
                + self.n_groups * (8 + self.aggs.len() * 8);
            self.mem.ensure(bytes)?;
        }
        self.input_done = true;
        Ok(())
    }
}

impl Operator for OrdAggrOp {
    fn fields(&self) -> &[OutField] {
        &self.fields
    }

    fn next(&mut self, prof: &mut Profiler) -> Result<Option<&Batch>, PlanError> {
        if !self.input_done {
            self.build(prof)?;
        }
        if self.emit_pos >= self.n_groups {
            return Ok(None);
        }
        let start = self.emit_pos;
        let n = (self.n_groups - start).min(self.vector_size);
        self.emit_pos += n;
        self.out.reset();
        self.out.len = n;
        let nkeys = self.done_keys.len();
        for k in 0..nkeys {
            let mut v = self.pools[k].writable();
            extend_range(&mut v, &self.done_keys[k], start, n);
            self.pools[k].publish(v, &mut self.out);
        }
        for (a, agg) in self.aggs.iter().enumerate() {
            let mut v = self.pools[nkeys + a].writable();
            agg.emit(&mut v, start, n, &self.group_counts, prof);
            self.pools[nkeys + a].publish(v, &mut self.out);
        }
        Ok(Some(&self.out))
    }

    fn reset(&mut self) {
        self.child.reset();
        self.mem.release_all();
        self.cur_keys = None;
        self.group_counts.clear();
        for v in &mut self.done_keys {
            v.clear();
        }
        self.n_groups = 0;
        self.emit_pos = 0;
        self.input_done = false;
        for agg in &mut self.aggs {
            match &mut agg.acc {
                AccData::F64(v) => v.clear(),
                AccData::I64(v) => v.clear(),
            }
        }
    }
}
