//! Parser for the textual X100 algebra (paper Fig. 5's "X100 Parser").
//!
//! The paper hand-translates SQL into a textual algebra (Figs. 6 & 9):
//!
//! ```text
//! Order(
//!   Project(
//!     Aggr(
//!       Select(
//!         Scan(lineitem, [l_returnflag, l_shipdate, ...]),
//!         <=(l_shipdate, date('1998-09-02'))),
//!       [ l_returnflag, l_linestatus ],
//!       [ sum_qty = sum(l_quantity), count_order = count() ]),
//!     [ l_returnflag, avg_qty = /(sum_qty, dbl(count_order)) ]),
//!   [ l_returnflag ASC, l_linestatus ASC ])
//! ```
//!
//! This module parses that syntax into a [`Plan`]. Expressions use the
//! paper's prefix notation (`+(a, b)`, `<(a, b)`); literals are
//! `flt('1.0')`, `date('1998-09-02')`, `str('BUILDING')`, and bare
//! integers. Extras beyond the paper's figures: `codes=[…]` on `Scan`
//! (raw enum codes), `year(e)` and `contains(e, 'x')`.

use crate::expr::{self, AggExpr, Expr};
use crate::ops::{OrdExp, SortOrder};
use crate::plan::Plan;
use crate::PlanError;
use x100_vector::date::to_days;
use x100_vector::{CmpOp, ScalarType, Value};

/// Parse a textual X100 algebra plan.
pub fn parse_plan(input: &str) -> Result<Plan, PlanError> {
    let mut p = Parser::new(input);
    let plan = p.plan()?;
    p.skip_ws();
    if !p.eof() {
        return Err(p.err("trailing input after plan"));
    }
    Ok(plan)
}

/// Parse a textual X100 expression (exposed for tests and tooling).
pub fn parse_expr(input: &str) -> Result<Expr, PlanError> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.skip_ws();
    if !p.eof() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn err(&self, msg: &str) -> PlanError {
        let rest: String = self.src[self.pos..].chars().take(30).collect();
        PlanError::Invalid(format!(
            "parse error at byte {}: {msg} (near `{rest}`)",
            self.pos
        ))
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> Result<(), PlanError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn eat_opt(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// An identifier (or keyword).
    fn ident(&mut self) -> Result<String, PlanError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    /// A single-quoted string literal body.
    fn quoted(&mut self) -> Result<String, PlanError> {
        self.eat('\'')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '\'' {
                let s = self.src[start..self.pos].to_owned();
                self.bump();
                return Ok(s);
            }
            self.bump();
        }
        Err(self.err("unterminated string literal"))
    }

    // ---------------- plans ----------------

    fn plan(&mut self) -> Result<Plan, PlanError> {
        self.skip_ws();
        let head = self.ident()?;
        self.eat('(')?;
        let plan = match head.as_str() {
            "Scan" => self.scan()?,
            "Select" => {
                let input = self.plan()?;
                self.eat(',')?;
                let pred = self.expr()?;
                input.select(pred)
            }
            "Project" => {
                let input = self.plan()?;
                self.eat(',')?;
                let exprs = self.named_expr_list()?;
                Plan::Project {
                    input: Box::new(input),
                    exprs,
                }
            }
            "Aggr" => {
                let input = self.plan()?;
                self.eat(',')?;
                let keys = self.named_expr_list()?;
                self.eat(',')?;
                let aggs = self.agg_list()?;
                Plan::Aggr {
                    input: Box::new(input),
                    keys,
                    aggs,
                }
            }
            "OrdAggr" => {
                let input = self.plan()?;
                self.eat(',')?;
                let keys = self.named_expr_list()?;
                self.eat(',')?;
                let aggs = self.agg_list()?;
                Plan::OrdAggr {
                    input: Box::new(input),
                    keys,
                    aggs,
                }
            }
            "Fetch1Join" => {
                let input = self.plan()?;
                self.eat(',')?;
                let table = self.ident()?;
                self.eat(',')?;
                let rowid = self.expr()?;
                self.eat(',')?;
                let fetch = self.alias_list()?;
                let fetch_codes = if self.eat_opt(',') {
                    self.alias_list()?
                } else {
                    Vec::new()
                };
                Plan::Fetch1Join {
                    input: Box::new(input),
                    table,
                    rowid,
                    fetch,
                    fetch_codes,
                }
            }
            "FetchNJoin" => {
                let input = self.plan()?;
                self.eat(',')?;
                let table = self.ident()?;
                self.eat(',')?;
                let lo = self.expr()?;
                self.eat(',')?;
                let cnt = self.expr()?;
                self.eat(',')?;
                let fetch = self.alias_list()?;
                Plan::FetchNJoin {
                    input: Box::new(input),
                    table,
                    lo,
                    cnt,
                    fetch,
                }
            }
            "CartProd" => {
                let input = self.plan()?;
                self.eat(',')?;
                let table = self.ident()?;
                self.eat(',')?;
                let fetch = self.alias_list()?;
                Plan::CartProd {
                    input: Box::new(input),
                    table,
                    fetch,
                }
            }
            "Join" => {
                let input = self.plan()?;
                self.eat(',')?;
                let table = self.ident()?;
                self.eat(',')?;
                let pred = self.expr()?;
                self.eat(',')?;
                let fetch = self.alias_list()?;
                Plan::Join {
                    input: Box::new(input),
                    table,
                    pred,
                    fetch,
                }
            }
            "TopN" => {
                let input = self.plan()?;
                self.eat(',')?;
                let keys = self.ord_list()?;
                self.eat(',')?;
                let limit = self.integer()? as usize;
                Plan::TopN {
                    input: Box::new(input),
                    keys,
                    limit,
                }
            }
            "Order" => {
                let input = self.plan()?;
                self.eat(',')?;
                let keys = self.ord_list()?;
                Plan::Order {
                    input: Box::new(input),
                    keys,
                }
            }
            "Array" => {
                let dims = self.bracketed(|p| p.integer())?;
                Plan::Array { dims }
            }
            other => return Err(self.err(&format!("unknown operator `{other}`"))),
        };
        self.eat(')')?;
        Ok(plan)
    }

    fn scan(&mut self) -> Result<Plan, PlanError> {
        // Scan(table, [cols]) or Scan(Table(name), [cols]); optional
        // `, codes=[...]` trailer.
        self.skip_ws();
        let mut table = self.ident()?;
        if table == "Table" {
            self.eat('(')?;
            table = self.ident()?;
            self.eat(')')?;
        }
        self.eat(',')?;
        let cols = self.bracketed(|p| p.ident())?;
        let mut code_cols = Vec::new();
        if self.eat_opt(',') {
            let kw = self.ident()?;
            if kw != "codes" {
                return Err(self.err("expected `codes=[...]`"));
            }
            self.eat('=')?;
            code_cols = self.bracketed(|p| p.ident())?;
        }
        Ok(Plan::Scan {
            table,
            cols,
            code_cols,
            prune: None,
        })
    }

    /// `[a, b = expr, …]` — bare identifiers name themselves.
    fn named_expr_list(&mut self) -> Result<Vec<(String, Expr)>, PlanError> {
        self.bracketed(|p| {
            let save = p.pos;
            let name = p.ident()?;
            if p.eat_opt('=') {
                let e = p.expr()?;
                Ok((name, e))
            } else {
                p.pos = save;
                let e = p.expr()?;
                match &e {
                    Expr::Col(c) => Ok((c.clone(), e)),
                    _ => Err(p.err("computed list entries need `name = expr`")),
                }
            }
        })
    }

    /// `[name = sum(expr), n = count(), …]`.
    fn agg_list(&mut self) -> Result<Vec<AggExpr>, PlanError> {
        self.bracketed(|p| {
            let name = p.ident()?;
            p.eat('=')?;
            let func = p.ident()?;
            p.eat('(')?;
            let agg = match func.as_str() {
                "count" => AggExpr::count(name),
                "sum" => AggExpr::sum(name, p.expr()?),
                "min" => AggExpr::min(name, p.expr()?),
                "max" => AggExpr::max(name, p.expr()?),
                "avg" => AggExpr::avg(name, p.expr()?),
                other => return Err(p.err(&format!("unknown aggregate `{other}`"))),
            };
            p.eat(')')?;
            Ok(agg)
        })
    }

    /// `[src, src as alias, …]` for fetch lists.
    fn alias_list(&mut self) -> Result<Vec<(String, String)>, PlanError> {
        self.bracketed(|p| {
            let src = p.ident()?;
            p.skip_ws();
            let alias = if p.src[p.pos..].starts_with("as ") || p.src[p.pos..].starts_with("as\t") {
                p.ident()?; // the `as`
                p.ident()?
            } else {
                src.clone()
            };
            Ok((src, alias))
        })
    }

    /// `[col ASC, col DESC, …]`.
    fn ord_list(&mut self) -> Result<Vec<OrdExp>, PlanError> {
        self.bracketed(|p| {
            let c = p.ident()?;
            p.skip_ws();
            let save = p.pos;
            let order = match p.ident() {
                Ok(k) if k.eq_ignore_ascii_case("asc") => SortOrder::Asc,
                Ok(k) if k.eq_ignore_ascii_case("desc") => SortOrder::Desc,
                _ => {
                    p.pos = save;
                    SortOrder::Asc
                }
            };
            Ok(OrdExp { col: c, order })
        })
    }

    fn bracketed<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, PlanError>,
    ) -> Result<Vec<T>, PlanError> {
        self.eat('[')?;
        let mut out = Vec::new();
        if self.eat_opt(']') {
            return Ok(out);
        }
        loop {
            out.push(item(self)?);
            if self.eat_opt(']') {
                return Ok(out);
            }
            self.eat(',')?;
        }
    }

    fn integer(&mut self) -> Result<i64, PlanError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected integer"))
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, PlanError> {
        self.skip_ws();
        // Prefix operators: symbolic comparison / arithmetic heads.
        for (sym, kind) in [
            ("<=", Head::Cmp(CmpOp::Le)),
            (">=", Head::Cmp(CmpOp::Ge)),
            ("!=", Head::Cmp(CmpOp::Ne)),
            ("==", Head::Cmp(CmpOp::Eq)),
            ("<", Head::Cmp(CmpOp::Lt)),
            (">", Head::Cmp(CmpOp::Gt)),
            ("=", Head::Cmp(CmpOp::Eq)),
            ("+", Head::Arith(expr::ArithOp::Add)),
            ("-", Head::Arith(expr::ArithOp::Sub)),
            ("*", Head::Arith(expr::ArithOp::Mul)),
            ("/", Head::Arith(expr::ArithOp::Div)),
        ] {
            if self.src[self.pos..].starts_with(sym)
                && self.src[self.pos + sym.len()..]
                    .trim_start()
                    .starts_with('(')
            {
                self.pos += sym.len();
                self.eat('(')?;
                let l = self.expr()?;
                self.eat(',')?;
                let r = self.expr()?;
                self.eat(')')?;
                return Ok(match kind {
                    Head::Cmp(op) => Expr::Cmp(op, Box::new(l), Box::new(r)),
                    Head::Arith(op) => Expr::Arith(op, Box::new(l), Box::new(r)),
                });
            }
        }
        // Numeric literal.
        if matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '-') {
            return self.number();
        }
        // Identifier head: function or column.
        let name = self.ident()?;
        self.skip_ws();
        if self.peek() != Some('(') {
            return Ok(Expr::Col(name));
        }
        self.eat('(')?;
        let e = match name.as_str() {
            // `flt('1.0')` is a float literal; `dbl(expr)` is the paper's
            // cast-to-double (Fig. 9's `avg_qty = /(sum_qty, dbl(count_order))`).
            "flt" => {
                let body = self.quoted()?;
                let v: f64 = body.parse().map_err(|_| self.err("bad float literal"))?;
                Expr::Lit(Value::F64(v))
            }
            "dbl" => {
                self.skip_ws();
                if self.peek() == Some('\'') {
                    let body = self.quoted()?;
                    let v: f64 = body.parse().map_err(|_| self.err("bad float literal"))?;
                    Expr::Lit(Value::F64(v))
                } else {
                    Expr::Cast(ScalarType::F64, Box::new(self.expr()?))
                }
            }
            "str" => Expr::Lit(Value::Str(self.quoted()?)),
            "date" => {
                let body = self.quoted()?;
                let parts: Vec<&str> = body.split('-').collect();
                if parts.len() != 3 {
                    return Err(self.err("dates are 'YYYY-MM-DD'"));
                }
                let y: i32 = parts[0].parse().map_err(|_| self.err("bad year"))?;
                let m: u32 = parts[1].parse().map_err(|_| self.err("bad month"))?;
                let d: u32 = parts[2].parse().map_err(|_| self.err("bad day"))?;
                Expr::Lit(Value::I32(to_days(y, m, d)))
            }
            "and" => {
                let l = self.expr()?;
                self.eat(',')?;
                let r = self.expr()?;
                Expr::And(Box::new(l), Box::new(r))
            }
            "or" => {
                let l = self.expr()?;
                self.eat(',')?;
                let r = self.expr()?;
                Expr::Or(Box::new(l), Box::new(r))
            }
            "not" => Expr::Not(Box::new(self.expr()?)),
            "year" => Expr::Year(Box::new(self.expr()?)),
            "contains" => {
                let l = self.expr()?;
                self.eat(',')?;
                let needle = self.quoted()?;
                Expr::StrContains(Box::new(l), needle)
            }
            "cast" => {
                let ty = self.ident()?;
                let ty = match ty.as_str() {
                    "f64" | "dbl" => ScalarType::F64,
                    "i64" | "slng" => ScalarType::I64,
                    "i32" | "sint" => ScalarType::I32,
                    "u32" | "uidx" => ScalarType::U32,
                    other => return Err(self.err(&format!("unknown cast type `{other}`"))),
                };
                self.eat(',')?;
                Expr::Cast(ty, Box::new(self.expr()?))
            }
            other => return Err(self.err(&format!("unknown function `{other}`"))),
        };
        self.eat(')')?;
        Ok(e)
    }

    fn number(&mut self) -> Result<Expr, PlanError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == '.' && !is_float {
                is_float = true;
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad float"))?;
            Ok(Expr::Lit(Value::F64(v)))
        } else {
            let v: i64 = text.parse().map_err(|_| self.err("bad integer"))?;
            Ok(Expr::Lit(Value::I64(v)))
        }
    }
}

enum Head {
    Cmp(CmpOp),
    Arith(expr::ArithOp),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_expressions() {
        assert_eq!(
            parse_expr("l_discount").expect("parses"),
            Expr::Col("l_discount".into())
        );
        let e = parse_expr("*( -( flt('1.0'), l_discount), l_extendedprice)").expect("parses");
        assert_eq!(
            e,
            expr::mul(
                expr::sub(expr::lit_f64(1.0), expr::col("l_discount")),
                expr::col("l_extendedprice")
            )
        );
        let e = parse_expr("<=(l_shipdate, date('1998-09-02'))").expect("parses");
        assert_eq!(
            e,
            expr::le(expr::col("l_shipdate"), expr::lit_date(1998, 9, 2))
        );
        let e = parse_expr("and(>(a, 1), contains(s, 'green'))").expect("parses");
        assert_eq!(
            e,
            expr::and(
                expr::gt(expr::col("a"), expr::lit_i64(1)),
                expr::contains(expr::col("s"), "green")
            )
        );
        let e = parse_expr("cast(f64, year(d))").expect("parses");
        assert_eq!(e, expr::cast(ScalarType::F64, expr::year(expr::col("d"))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("frobnicate(x, y)").is_err());
        assert!(parse_expr("+(a,)").is_err());
        assert!(parse_expr("a extra").is_err());
        assert!(parse_plan("Scan(t)").is_err());
        assert!(parse_plan("Nope(t, [a])").is_err());
    }

    #[test]
    fn parses_figure6_shape() {
        // The paper's Fig. 6 simplified Q1.
        let text = "
            Aggr(
              Project(
                Select(
                  Scan(lineitem, [shipdate, returnflag, discount, extendedprice]),
                  <(shipdate, date('1998-09-03'))),
                [ returnflag = returnflag,
                  discountprice = *( -( flt('1.0'), discount), extendedprice) ]),
              [ returnflag ],
              [ sum_disc_price = sum(discountprice) ])";
        let plan = parse_plan(text).expect("parses");
        match &plan {
            Plan::Aggr { keys, aggs, .. } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].name, "sum_disc_price");
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_order_and_topn() {
        let plan = parse_plan("TopN(Scan(t, [a, b]), [a DESC, b], 10)").expect("parses");
        match plan {
            Plan::TopN { keys, limit, .. } => {
                assert_eq!(limit, 10);
                assert_eq!(keys[0].order, SortOrder::Desc);
                assert_eq!(keys[1].order, SortOrder::Asc);
            }
            other => panic!("unexpected {other:?}"),
        }
        let plan = parse_plan("Order(Scan(t, [a]), [a ASC])").expect("parses");
        assert!(matches!(plan, Plan::Order { .. }));
    }

    #[test]
    fn parses_scan_codes_and_fetch() {
        let plan = parse_plan(
            "Fetch1Join(Scan(lineitem, [li_order_idx], codes=[]), orders, li_order_idx, [o_orderdate as od], [o_orderpriority])",
        )
        .expect("parses");
        match plan {
            Plan::Fetch1Join {
                table,
                fetch,
                fetch_codes,
                ..
            } => {
                assert_eq!(table, "orders");
                assert_eq!(fetch, vec![("o_orderdate".to_owned(), "od".to_owned())]);
                assert_eq!(
                    fetch_codes,
                    vec![("o_orderpriority".to_owned(), "o_orderpriority".to_owned())]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_array() {
        let plan = parse_plan("Array([2, 3, 4])").expect("parses");
        match plan {
            Plan::Array { dims } => assert_eq!(dims, vec![2, 3, 4]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
