//! Governor-mediated spill-to-disk: graceful degradation under
//! memory pressure (DESIGN.md §12).
//!
//! When an operator's [`MemTracker::try_ensure`] probe fails, it
//! converts the coldest part of its state into a **spill run**: a
//! temp file of self-describing blocks, each holding one column-frame
//! per operator column. Frames reuse the storage layer's chunked
//! codecs ([`choose_and_compress`] / [`CompressedColumn::to_bytes`])
//! so spilled data stays compressed and checksummed on disk; columns
//! the chooser declines (and `Bool`, which has no fragment twin) fall
//! back to a raw little-endian frame guarded by [`fold_checksum`].
//!
//! Every block write passes through the governor: cancellation and
//! deadline are checked first, the [`FaultSite::SpillWrite`] injector
//! runs next (with its own bounded-backoff retry), and the block's
//! bytes are charged against the query's *disk* budget —
//! [`ResourceExhausted`](crate::compile::PlanError::ResourceExhausted)
//! is only possible once both budgets are gone. Re-reads mirror the
//! path with [`FaultSite::SpillRead`] and per-chunk (compressed) or
//! per-frame (raw) checksum verification.
//!
//! Cleanup is scope-guarded: a [`RunWriter`] dropped before
//! [`RunWriter::finish`] deletes its half-written file and refunds
//! the budget; a finished run's [`SpillFile`] does the same when the
//! last reader/handle drops; the [`SpillManager`] removes the whole
//! per-query temp directory when the query context dies — on success,
//! cancellation, and worker panic alike.
//!
//! [`MemTracker::try_ensure`]: crate::govern::MemTracker::try_ensure

use std::fs::{self, File};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use x100_storage::{
    choose_and_compress, fold_checksum, ColumnData, CompressedColumn, DecodeCursor, FaultSite,
};
use x100_vector::{ScalarType, Vector};

use crate::compile::PlanError;
use crate::govern::QueryContext;
use crate::profile::Profiler;

/// Rows per spill block: a multiple of the vector size, small enough
/// that merge fan-in costs one in-cache block per run, large enough
/// that the chunked codecs see real runs of values.
pub const SPILL_BLOCK_ROWS: usize = 4096;

/// Run file magic ("XSPR") + format version.
const RUN_MAGIC: u32 = 0x5253_5058;
const RUN_VERSION: u8 = 1;
/// Per-block magic ("XSPB").
const BLOCK_MAGIC: u32 = 0x4250_5358;
/// Run header bytes (magic + version).
const RUN_HEADER_BYTES: u64 = 5;

/// Distinguishes spill temp dirs of concurrent queries in one process.
static SPILL_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Process-wide disk budget across *all* concurrent queries' spill
/// dirs, in bytes; 0 = unlimited. Per-query budgets still apply on
/// top (`ExecOptions::with_spill_budget`).
static GLOBAL_SPILL_BUDGET: AtomicU64 = AtomicU64::new(0);
/// Bytes currently charged against the global budget.
static GLOBAL_SPILL_USED: AtomicU64 = AtomicU64::new(0);

/// Set (or clear, with `None`) the process-wide spill disk budget
/// shared by all concurrent queries. With per-query budgets alone, N
/// concurrent queries can write N × budget bytes; this caps the sum.
pub fn set_global_spill_budget(bytes: Option<u64>) {
    GLOBAL_SPILL_BUDGET.store(bytes.unwrap_or(0), Ordering::SeqCst);
}

/// Bytes currently charged against the global spill budget.
pub fn global_spill_used() -> u64 {
    GLOBAL_SPILL_USED.load(Ordering::SeqCst)
}

/// Charge `bytes` against the global budget; lock-free CAS so a racing
/// overflow never lets the sum exceed the cap.
fn charge_global(op: &str, bytes: usize) -> Result<(), PlanError> {
    let budget = GLOBAL_SPILL_BUDGET.load(Ordering::SeqCst);
    if budget == 0 {
        GLOBAL_SPILL_USED.fetch_add(bytes as u64, Ordering::SeqCst);
        return Ok(());
    }
    let mut used = GLOBAL_SPILL_USED.load(Ordering::SeqCst);
    loop {
        let next = used + bytes as u64;
        if next > budget {
            return Err(PlanError::ResourceExhausted {
                operator: format!("{op} (global spill budget)"),
                requested: next as usize,
                budget: budget as usize,
            });
        }
        match GLOBAL_SPILL_USED.compare_exchange_weak(
            used,
            next,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Ok(()),
            Err(cur) => used = cur,
        }
    }
}

fn release_global(bytes: u64) {
    // Saturating: a release can only race with charges, never below 0.
    let mut used = GLOBAL_SPILL_USED.load(Ordering::SeqCst);
    loop {
        let next = used.saturating_sub(bytes);
        match GLOBAL_SPILL_USED.compare_exchange_weak(
            used,
            next,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return,
            Err(cur) => used = cur,
        }
    }
}

/// The shared spill root all queries' per-query dirs live under:
/// `$TMPDIR/x100-spill/q-{pid}-{epoch}`. One root makes stale-dir
/// garbage collection and the global disk budget possible.
pub fn spill_root() -> PathBuf {
    std::env::temp_dir().join("x100-spill")
}

/// Remove spill dirs left behind by *dead* processes (a SIGKILL skips
/// every Drop). Scans the shared root, parses each `q-{pid}-{epoch}`
/// name, and removes dirs whose owning process is gone; dirs of live
/// processes — including ours — are untouched. Returns the number of
/// dirs removed. Runs once per process, on first `ExecOptions` use.
pub fn gc_stale_spill_dirs() -> u64 {
    let root = spill_root();
    let Ok(entries) = fs::read_dir(&root) else {
        return 0;
    };
    let me = std::process::id();
    let mut removed = 0;
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(pid) = name
            .to_str()
            .and_then(|n| n.strip_prefix("q-"))
            .and_then(|n| n.split('-').next())
            .and_then(|p| p.parse::<u32>().ok())
        else {
            continue;
        };
        if pid == me || process_alive(pid) {
            continue;
        }
        if fs::remove_dir_all(e.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Whether a process with this pid exists. On non-Linux platforms the
/// conservative answer is `true` (never reclaim a live query's dir).
fn process_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

fn write_err(detail: String) -> PlanError {
    PlanError::Io {
        site: FaultSite::SpillWrite,
        unrecoverable: true,
        detail,
    }
}

fn read_err(unrecoverable: bool, detail: String) -> PlanError {
    PlanError::Io {
        site: FaultSite::SpillRead,
        unrecoverable,
        detail,
    }
}

/// Run the fault injector for a spill I/O site, folding its internal
/// retry count into the manager's `spill_retries` counter. An error
/// here means the injector exhausted its retries — transient class,
/// so `unrecoverable: false`.
fn fault_check(
    ctx: &QueryContext,
    mgr: &SpillManager,
    site: FaultSite,
    tag: u32,
) -> Result<(), PlanError> {
    if let Some(fs) = ctx.fault_state() {
        let before = fs.retries();
        let res = fs.check_site(site, tag);
        let after = fs.retries();
        if after > before {
            mgr.retries.fetch_add(after - before, Ordering::SeqCst);
        }
        res.map_err(|e| PlanError::Io {
            site: e.site,
            unrecoverable: false,
            detail: e.to_string(),
        })?;
    }
    Ok(())
}

/// Per-query spill registry: owns the temp directory, the profiler
/// counters, and the shared agg-run list parallel workers publish
/// into. Created lazily by [`QueryContext::spill_manager`]; dropping
/// it removes the directory and everything still in it.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    next_id: AtomicU64,
    bytes_written: AtomicU64,
    runs: AtomicU64,
    merge_passes: AtomicU64,
    retries: AtomicU64,
}

impl SpillManager {
    /// Create the per-query spill directory under the shared spill
    /// root (`$TMPDIR/x100-spill/q-{pid}-{epoch}`).
    pub fn create() -> Result<SpillManager, PlanError> {
        let epoch = SPILL_EPOCH.fetch_add(1, Ordering::SeqCst);
        let dir = spill_root().join(format!("q-{}-{epoch}", std::process::id()));
        fs::create_dir_all(&dir)
            .map_err(|e| write_err(format!("create spill dir {}: {e}", dir.display())))?;
        Ok(SpillManager {
            dir,
            next_id: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            merge_passes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        })
    }

    /// The spill temp directory (tests assert it is empty/gone).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes written to spill runs.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::SeqCst)
    }

    /// Spill runs started.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }

    /// External-merge passes beyond the first (multi-pass merges).
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes.load(Ordering::SeqCst)
    }

    /// Injected spill faults absorbed by bounded-backoff retry.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    /// Record one external-merge pass.
    pub fn note_merge_pass(&self) {
        self.merge_passes.fetch_add(1, Ordering::SeqCst);
    }

    /// Emit the spill counters into the query profile. Monotone
    /// values published via `max_counter`, so repeated publishes are
    /// idempotent.
    pub fn publish(&self, prof: &mut Profiler) {
        prof.max_counter("spill_bytes_written", self.bytes_written());
        prof.max_counter("spill_runs", self.runs());
        prof.max_counter("spill_merge_passes", self.merge_passes());
        prof.max_counter("spill_retries", self.retries());
    }

    /// Open a new spill run for writing. `op` labels budget errors.
    pub fn start_run(
        self: &Arc<Self>,
        ctx: &Arc<QueryContext>,
        op: &str,
    ) -> Result<RunWriter, PlanError> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let path = self.dir.join(format!("run-{id:06}.spl"));
        let file = File::create(&path)
            .map_err(|e| write_err(format!("create spill run {}: {e}", path.display())))?;
        self.runs.fetch_add(1, Ordering::SeqCst);
        let mut w = RunWriter {
            mgr: Arc::clone(self),
            ctx: Arc::clone(ctx),
            op: op.to_string(),
            path,
            file: BufWriter::new(file),
            bytes: 0,
            rows: 0,
            blocks: 0,
            n_cols: 0,
            finished: false,
            buf: Vec::new(),
        };
        let mut header = Vec::with_capacity(RUN_HEADER_BYTES as usize);
        header.extend_from_slice(&RUN_MAGIC.to_le_bytes());
        header.push(RUN_VERSION);
        w.write_charged(&header)?;
        Ok(w)
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A finished spill run's backing file. Dropping the last handle
/// deletes the file and refunds its bytes to the disk budget.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    bytes: u64,
    ctx: Arc<QueryContext>,
}

impl SpillFile {
    /// Path of the temp file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// On-disk size (as charged against the spill budget).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
        self.ctx.release_spill(self.bytes as usize);
        release_global(self.bytes);
    }
}

/// A completed, immutable spill run: shared file plus shape metadata
/// (runs never outlive the process, so the block map lives here, not
/// in the file).
#[derive(Debug, Clone)]
pub struct SpillRun {
    /// Backing temp file (shared with any segment readers).
    pub file: Arc<SpillFile>,
    /// Total rows across all blocks.
    pub rows: u64,
    /// Number of blocks.
    pub blocks: u64,
    /// Columns per block.
    pub n_cols: usize,
}

impl SpillRun {
    /// Sequential reader over the whole run.
    pub fn reader(
        &self,
        mgr: &Arc<SpillManager>,
        ctx: &Arc<QueryContext>,
    ) -> Result<RunReader, PlanError> {
        RunReader::open(&self.file, RUN_HEADER_BYTES, self.blocks, mgr, ctx)
    }
}

/// One partition segment inside an aggregation run.
#[derive(Debug, Clone, Copy)]
pub struct AggSegment {
    /// Radix partition id this segment belongs to.
    pub part: usize,
    /// Byte offset of the segment's first block.
    pub offset: u64,
    /// Blocks in the segment.
    pub blocks: u64,
    /// Groups (rows) in the segment.
    pub rows: usize,
}

/// One spilled aggregation table image: per-partition segments of
/// `keys ++ counts ++ accs` blocks. Runs travel inside
/// [`AggrPartial`](crate::ops::AggrPartial) in build order, so
/// the merge stage consumes them deterministically without a shared
/// registry.
#[derive(Debug)]
pub struct AggRun {
    /// Backing file.
    pub file: Arc<SpillFile>,
    /// Partition directory, ascending by `part`.
    pub segments: Vec<AggSegment>,
}

/// Number of radix partitions an aggregation table spills into: the
/// merge stage re-aggregates one partition at a time, bounding its
/// memory to the largest partition instead of the full group set.
pub const AGG_SPILL_PARTS: usize = 16;

/// Partition of a group hash: top bits, so partitioning is
/// independent of the hash-table bucket index (low bits).
pub fn agg_partition(hash: u64) -> usize {
    (hash >> 60) as usize & (AGG_SPILL_PARTS - 1)
}

/// Re-read one aggregation-run segment as a partial: blocks of
/// `keys ++ counts ++ accs` concatenated back into group arrays.
pub(crate) fn read_agg_segment(
    file: &Arc<SpillFile>,
    seg: &AggSegment,
    n_keys: usize,
    n_aggs: usize,
    mgr: &Arc<SpillManager>,
    ctx: &Arc<QueryContext>,
) -> Result<crate::ops::AggrPartial, PlanError> {
    use crate::ops::{AggrPartial, PartialAcc};
    let mut rd = RunReader::open(file, seg.offset, seg.blocks, mgr, ctx)?;
    let mut cols: Vec<Vector> = Vec::new();
    let mut block: Vec<Vector> = Vec::new();
    while let Some(rows) = rd.next_block(&mut block)? {
        if cols.is_empty() {
            cols = block
                .iter()
                .map(|b| Vector::with_capacity(b.scalar_type(), seg.rows))
                .collect();
        }
        for (dst, src) in cols.iter_mut().zip(block.iter()) {
            crate::ops::extend_range(dst, src, 0, rows);
        }
    }
    if cols.len() != n_keys + 1 + n_aggs {
        return Err(read_err(
            true,
            "spilled aggregation segment has wrong column arity".to_string(),
        ));
    }
    let mut it = cols.into_iter();
    let keys: Vec<Vector> = it.by_ref().take(n_keys).collect();
    let counts = match it.next() {
        Some(Vector::I64(c)) if c.len() == seg.rows => c,
        _ => {
            return Err(read_err(
                true,
                "spilled aggregation segment has a malformed count column".to_string(),
            ))
        }
    };
    let accs = it
        .map(|v| match v {
            Vector::F64(a) => Ok(PartialAcc::F64(a)),
            Vector::I64(a) => Ok(PartialAcc::I64(a)),
            other => Err(read_err(
                true,
                format!(
                    "spilled aggregation accumulator has type {:?}",
                    other.scalar_type()
                ),
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AggrPartial {
        keys,
        counts,
        accs,
        n_groups: seg.rows,
        runs: Vec::new(),
    })
}

/// Streaming writer for one spill run. Every block write checks
/// cancellation, runs the `SpillWrite` fault injector, and charges
/// the disk budget before touching the file. Dropping an unfinished
/// writer deletes the file and refunds the budget.
#[derive(Debug)]
pub struct RunWriter {
    mgr: Arc<SpillManager>,
    ctx: Arc<QueryContext>,
    op: String,
    path: PathBuf,
    file: BufWriter<File>,
    bytes: u64,
    rows: u64,
    blocks: u64,
    n_cols: usize,
    finished: bool,
    buf: Vec<u8>,
}

impl RunWriter {
    /// Bytes written so far — the offset the next block will land at.
    pub fn offset(&self) -> u64 {
        self.bytes
    }

    /// Blocks written so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Fault-check, budget-charge and write one serialized span.
    fn write_charged(&mut self, bytes: &[u8]) -> Result<(), PlanError> {
        fault_check(
            &self.ctx,
            &self.mgr,
            FaultSite::SpillWrite,
            self.blocks as u32,
        )?;
        self.ctx.charge_spill(&self.op, bytes.len())?;
        if let Err(e) = charge_global(&self.op, bytes.len()) {
            // Undo the per-query charge so the two ledgers stay in
            // lock-step (drop refunds both by `self.bytes` only).
            self.ctx.release_spill(bytes.len());
            return Err(e);
        }
        if let Err(e) = self.file.write_all(bytes) {
            // The charge stands until drop/finish refunds it with the
            // rest of the file.
            return Err(write_err(format!(
                "write spill run {}: {e}",
                self.path.display()
            )));
        }
        self.bytes += bytes.len() as u64;
        self.mgr
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    /// Append one block of equal-length column vectors.
    pub fn write_block(&mut self, cols: &[Vector]) -> Result<(), PlanError> {
        assert!(!cols.is_empty(), "spill block needs at least one column");
        let rows = cols[0].len();
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        if self.n_cols == 0 {
            self.n_cols = cols.len();
        }
        debug_assert_eq!(self.n_cols, cols.len(), "spill run column arity drifted");
        // Cancellation/deadline check between run writes: a cancelled
        // query stops spilling immediately instead of finishing the
        // run first.
        self.ctx.check()?;
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        buf.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(rows as u32).to_le_bytes());
        buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
        for col in cols {
            encode_frame(col, &mut buf);
        }
        let res = self.write_charged(&buf);
        self.buf = buf;
        res?;
        self.rows += rows as u64;
        self.blocks += 1;
        Ok(())
    }

    /// Flush and seal the run. The returned [`SpillRun`] owns the
    /// file; the writer's drop-cleanup is disarmed.
    pub fn finish(mut self) -> Result<SpillRun, PlanError> {
        self.file
            .flush()
            .map_err(|e| write_err(format!("flush spill run {}: {e}", self.path.display())))?;
        self.finished = true;
        Ok(SpillRun {
            file: Arc::new(SpillFile {
                path: self.path.clone(),
                bytes: self.bytes,
                ctx: Arc::clone(&self.ctx),
            }),
            rows: self.rows,
            blocks: self.blocks,
            n_cols: self.n_cols,
        })
    }
}

impl Drop for RunWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.path);
            self.ctx.release_spill(self.bytes as usize);
            release_global(self.bytes);
        }
    }
}

/// Streaming reader over a spill run (or a segment of one). Each
/// block read checks cancellation, runs the `SpillRead` fault
/// injector, and verifies frame checksums before returning rows.
#[derive(Debug)]
pub struct RunReader {
    file: File,
    /// Keeps the backing temp file alive while reading.
    _keep: Arc<SpillFile>,
    mgr: Arc<SpillManager>,
    ctx: Arc<QueryContext>,
    remaining: u64,
    block_no: u32,
    buf: Vec<u8>,
    scratch: Vec<u64>,
}

impl RunReader {
    /// Open a reader over `blocks` blocks starting at byte `offset`.
    /// Validates the run header regardless of where the window starts.
    pub fn open(
        file: &Arc<SpillFile>,
        offset: u64,
        blocks: u64,
        mgr: &Arc<SpillManager>,
        ctx: &Arc<QueryContext>,
    ) -> Result<RunReader, PlanError> {
        let mut f = File::open(file.path()).map_err(|e| {
            read_err(
                true,
                format!("open spill run {}: {e}", file.path().display()),
            )
        })?;
        let mut header = [0u8; RUN_HEADER_BYTES as usize];
        f.read_exact(&mut header)
            .map_err(|e| read_err(true, format!("read spill run header: {e}")))?;
        if header[..4] != RUN_MAGIC.to_le_bytes() || header[4] != RUN_VERSION {
            return Err(read_err(
                true,
                format!("bad spill run header in {}", file.path().display()),
            ));
        }
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| read_err(true, format!("seek spill run: {e}")))?;
        Ok(RunReader {
            file: f,
            _keep: Arc::clone(file),
            mgr: Arc::clone(mgr),
            ctx: Arc::clone(ctx),
            remaining: blocks,
            block_no: 0,
            buf: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Read the next block into `out` (one vector per column,
    /// replaced wholesale). Returns the block's row count, or `None`
    /// when the window is exhausted.
    pub fn next_block(&mut self, out: &mut Vec<Vector>) -> Result<Option<usize>, PlanError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.ctx.check()?;
        fault_check(&self.ctx, &self.mgr, FaultSite::SpillRead, self.block_no)?;
        let mut head = [0u8; 12];
        self.file
            .read_exact(&mut head)
            .map_err(|e| read_err(true, format!("read spill block header: {e}")))?;
        let magic = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        if magic != BLOCK_MAGIC {
            return Err(read_err(true, "torn spill block (bad magic)".to_string()));
        }
        let rows = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
        let n_cols = u32::from_le_bytes([head[8], head[9], head[10], head[11]]) as usize;
        out.resize_with(n_cols, || Vector::I64(Vec::new()));
        for slot in out.iter_mut().take(n_cols) {
            self.read_frame(rows, slot)?;
        }
        self.remaining -= 1;
        self.block_no += 1;
        Ok(Some(rows))
    }

    fn read_frame(&mut self, rows: usize, out: &mut Vector) -> Result<(), PlanError> {
        let mut head = [0u8; 9];
        self.file
            .read_exact(&mut head)
            .map_err(|e| read_err(true, format!("read spill frame header: {e}")))?;
        let tag = head[0];
        let len = u64::from_le_bytes([
            head[1], head[2], head[3], head[4], head[5], head[6], head[7], head[8],
        ]) as usize;
        self.buf.clear();
        self.buf.resize(len, 0);
        self.file
            .read_exact(&mut self.buf)
            .map_err(|e| read_err(true, format!("read spill frame payload: {e}")))?;
        match tag {
            1 => {
                let cc = CompressedColumn::from_bytes(&self.buf)
                    .map_err(|e| read_err(true, format!("spill frame: {e}")))?;
                if cc.rows() != rows {
                    return Err(read_err(true, "spill frame row-count mismatch".to_string()));
                }
                *out = Vector::with_capacity(cc.physical_type(), rows);
                let mut cursor = DecodeCursor::default();
                cc.decode_range(0, rows, out, &mut cursor, &mut self.scratch)
                    .map_err(|e| read_err(true, format!("spill frame: {e}")))?;
                Ok(())
            }
            0 => raw_decode(&self.buf, rows, out).map_err(|e| read_err(true, e)),
            other => Err(read_err(true, format!("unknown spill frame tag {other}"))),
        }
    }
}

/// Borrow a vector as an immutable column fragment for the
/// compression chooser. `Bool` has no fragment twin — those frames
/// stay raw.
fn vector_to_column(v: &Vector) -> Option<ColumnData> {
    Some(match v {
        Vector::I8(d) => ColumnData::I8(d.clone()),
        Vector::I16(d) => ColumnData::I16(d.clone()),
        Vector::I32(d) => ColumnData::I32(d.clone()),
        Vector::I64(d) => ColumnData::I64(d.clone()),
        Vector::U8(d) => ColumnData::U8(d.clone()),
        Vector::U16(d) => ColumnData::U16(d.clone()),
        Vector::U32(d) => ColumnData::U32(d.clone()),
        Vector::U64(d) => ColumnData::U64(d.clone()),
        Vector::F64(d) => ColumnData::F64(d.clone()),
        Vector::Str(s) => ColumnData::Str(s.clone()),
        Vector::Bool(_) => return None,
    })
}

fn ty_tag(ty: ScalarType) -> u8 {
    match ty {
        ScalarType::I8 => 0,
        ScalarType::I16 => 1,
        ScalarType::I32 => 2,
        ScalarType::I64 => 3,
        ScalarType::U8 => 4,
        ScalarType::U16 => 5,
        ScalarType::U32 => 6,
        ScalarType::U64 => 7,
        ScalarType::F64 => 8,
        ScalarType::Str => 9,
        ScalarType::Bool => 10,
    }
}

/// Serialize one column frame: compressed via the storage codecs when
/// the chooser takes it, raw (checksummed little-endian) otherwise.
fn encode_frame(col: &Vector, buf: &mut Vec<u8>) {
    if let Some(cd) = vector_to_column(col) {
        if let Some(cc) = choose_and_compress(&cd) {
            let payload = cc.to_bytes();
            buf.push(1);
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(&payload);
            return;
        }
    }
    buf.push(0);
    let len_at = buf.len();
    buf.extend_from_slice(&[0u8; 8]);
    let start = buf.len();
    raw_encode(col, buf);
    let len = (buf.len() - start) as u64;
    buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

macro_rules! raw_numeric {
    ($data:expr, $buf:expr) => {
        for v in $data {
            $buf.extend_from_slice(&v.to_le_bytes());
        }
    };
}

fn raw_encode(col: &Vector, buf: &mut Vec<u8>) {
    buf.push(ty_tag(col.scalar_type()));
    buf.extend_from_slice(&(col.len() as u32).to_le_bytes());
    let start = buf.len();
    match col {
        Vector::I8(d) => raw_numeric!(d, buf),
        Vector::I16(d) => raw_numeric!(d, buf),
        Vector::I32(d) => raw_numeric!(d, buf),
        Vector::I64(d) => raw_numeric!(d, buf),
        Vector::U8(d) => buf.extend_from_slice(d),
        Vector::U16(d) => raw_numeric!(d, buf),
        Vector::U32(d) => raw_numeric!(d, buf),
        Vector::U64(d) => raw_numeric!(d, buf),
        Vector::F64(d) => {
            for v in d {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Vector::Bool(d) => {
            for v in d {
                buf.push(u8::from(*v));
            }
        }
        Vector::Str(s) => {
            for v in s.iter() {
                buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                buf.extend_from_slice(v.as_bytes());
            }
        }
    }
    let ck = fold_checksum(&buf[start..]);
    buf.push(ck);
}

/// Byte cursor over one raw frame payload.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.b.len() {
            return Err("raw spill frame truncated".to_string());
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
}

macro_rules! raw_read {
    ($cur:expr, $rows:expr, $ty:ty) => {{
        let width = std::mem::size_of::<$ty>();
        let bytes = $cur.take($rows * width)?;
        let mut v: Vec<$ty> = Vec::with_capacity($rows);
        for c in bytes.chunks_exact(width) {
            let mut le = [0u8; std::mem::size_of::<$ty>()];
            le.copy_from_slice(c);
            v.push(<$ty>::from_le_bytes(le));
        }
        v
    }};
}

fn raw_decode(b: &[u8], rows: usize, out: &mut Vector) -> Result<(), String> {
    if b.len() < 6 {
        return Err("raw spill frame truncated".to_string());
    }
    let tag = b[0];
    let n = u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as usize;
    if n != rows {
        return Err("raw spill frame row-count mismatch".to_string());
    }
    let stored = b[b.len() - 1];
    let body = &b[5..b.len() - 1];
    if fold_checksum(body) != stored {
        return Err("raw spill frame checksum mismatch".to_string());
    }
    let mut cur = Cur { b: body, at: 0 };
    *out = match tag {
        0 => Vector::I8(raw_read!(cur, rows, i8)),
        1 => Vector::I16(raw_read!(cur, rows, i16)),
        2 => Vector::I32(raw_read!(cur, rows, i32)),
        3 => Vector::I64(raw_read!(cur, rows, i64)),
        4 => Vector::U8(cur.take(rows)?.to_vec()),
        5 => Vector::U16(raw_read!(cur, rows, u16)),
        6 => Vector::U32(raw_read!(cur, rows, u32)),
        7 => Vector::U64(raw_read!(cur, rows, u64)),
        8 => {
            let bits = raw_read!(cur, rows, u64);
            Vector::F64(bits.into_iter().map(f64::from_bits).collect())
        }
        10 => {
            let bytes = cur.take(rows)?;
            Vector::Bool(bytes.iter().map(|&x| x != 0).collect())
        }
        9 => {
            let mut s = Vector::with_capacity(ScalarType::Str, rows);
            if let Vector::Str(sv) = &mut s {
                for _ in 0..rows {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    let text = std::str::from_utf8(raw)
                        .map_err(|_| "raw spill frame: invalid utf-8".to_string())?;
                    sv.push(text);
                }
            }
            s
        }
        other => return Err(format!("raw spill frame: unknown type tag {other}")),
    };
    if cur.at != body.len() {
        return Err("raw spill frame has trailing bytes".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::QueryContext;

    fn ctx_with_spill(budget: usize) -> Arc<QueryContext> {
        Arc::new(QueryContext::new(
            None,
            Some(budget),
            None,
            None,
            None,
            None,
        ))
    }

    fn sample_cols(rows: usize) -> Vec<Vector> {
        let ints: Vec<i64> = (0..rows as i64).map(|i| i * 3 % 257).collect();
        let floats: Vec<f64> = (0..rows).map(|i| (i % 100) as f64 * 0.25).collect();
        let bools: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
        let mut sv = Vector::with_capacity(ScalarType::Str, rows);
        if let Vector::Str(s) = &mut sv {
            for i in 0..rows {
                s.push(&format!("g{}", i % 7));
            }
        }
        vec![
            Vector::I64(ints),
            Vector::F64(floats),
            Vector::Bool(bools),
            sv,
        ]
    }

    #[test]
    fn run_round_trip_is_byte_identical() {
        let ctx = ctx_with_spill(64 << 20);
        let mgr = ctx.spill_manager().unwrap();
        let cols = sample_cols(SPILL_BLOCK_ROWS + 100);
        let mut w = mgr.start_run(&ctx, "test").unwrap();
        let first: Vec<Vector> = cols
            .iter()
            .map(|c| {
                let mut v = Vector::with_capacity(c.scalar_type(), SPILL_BLOCK_ROWS);
                crate::ops::extend_range(&mut v, c, 0, SPILL_BLOCK_ROWS);
                v
            })
            .collect();
        let second: Vec<Vector> = cols
            .iter()
            .map(|c| {
                let mut v = Vector::with_capacity(c.scalar_type(), 100);
                crate::ops::extend_range(&mut v, c, SPILL_BLOCK_ROWS, 100);
                v
            })
            .collect();
        w.write_block(&first).unwrap();
        w.write_block(&second).unwrap();
        let run = w.finish().unwrap();
        assert_eq!(run.rows, (SPILL_BLOCK_ROWS + 100) as u64);
        assert_eq!(run.blocks, 2);
        assert!(ctx.spill_peak() > 0);

        let mut r = run.reader(&mgr, &ctx).unwrap();
        let mut got: Vec<Vector> = Vec::new();
        let mut block = Vec::new();
        let mut at = 0usize;
        while let Some(rows) = r.next_block(&mut block).unwrap() {
            if got.is_empty() {
                got = cols
                    .iter()
                    .map(|c| Vector::with_capacity(c.scalar_type(), 0))
                    .collect();
            }
            for (dst, src) in got.iter_mut().zip(block.iter()) {
                crate::ops::extend_range(dst, src, 0, rows);
            }
            at += rows;
        }
        assert_eq!(at, SPILL_BLOCK_ROWS + 100);
        for (orig, back) in cols.iter().zip(got.iter()) {
            assert_eq!(orig.len(), back.len());
            for i in 0..orig.len() {
                assert_eq!(
                    orig.get_value(i),
                    back.get_value(i),
                    "column mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn dropped_writer_removes_file_and_refunds_budget() {
        let ctx = ctx_with_spill(64 << 20);
        let mgr = ctx.spill_manager().unwrap();
        let path;
        {
            let mut w = mgr.start_run(&ctx, "test").unwrap();
            w.write_block(&sample_cols(128)).unwrap();
            path = w.path.clone();
            assert!(path.exists());
            assert!(ctx.spill_peak() > 0);
        }
        assert!(
            !path.exists(),
            "unfinished run file must be removed on drop"
        );
    }

    #[test]
    fn finished_run_file_removed_when_handles_drop() {
        let ctx = ctx_with_spill(64 << 20);
        let mgr = ctx.spill_manager().unwrap();
        let mut w = mgr.start_run(&ctx, "test").unwrap();
        w.write_block(&sample_cols(64)).unwrap();
        let run = w.finish().unwrap();
        let path = run.file.path().to_path_buf();
        assert!(path.exists());
        drop(run);
        assert!(!path.exists(), "sealed run file must be removed on drop");
    }

    #[test]
    fn spill_budget_overflow_is_resource_exhausted() {
        let ctx = ctx_with_spill(64);
        let mgr = ctx.spill_manager().unwrap();
        let mut w = mgr.start_run(&ctx, "order-by").unwrap();
        let err = w.write_block(&sample_cols(4096)).unwrap_err();
        match err {
            PlanError::ResourceExhausted { operator, .. } => {
                assert!(operator.contains("spill budget"), "got operator {operator}");
            }
            other => panic!("expected ResourceExhausted, got {other}"),
        }
    }
}
