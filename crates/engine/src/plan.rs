//! Declarative X100 algebra plans (paper Fig. 7) and their binder.
//!
//! A [`Plan`] is the value-level form of the paper's algebra:
//!
//! ```text
//! Table(ID)                                          : Table
//! Scan(Table)                                        : Dataflow
//! Array(List<Exp<int>>)                              : Dataflow
//! Select(Dataflow, Exp<bool>)                        : Dataflow
//! Join(Dataflow, Table, Exp<bool>, List<Column>)     : Dataflow
//! CartProd(Dataflow, Table, List<Column>)
//! Fetch1Join(Dataflow, Table, Exp<int>, List<Column>)
//! FetchNJoin(Dataflow, Table, Exp<int>, Exp<int>, Column, List<Column>)
//! Project(Dataflow, List<Exp<*>>)                    : Dataflow
//! Aggr(Dataflow, List<Exp<*>>, List<AggrExp>)        : Dataflow
//! OrdAggr / DirectAggr / HashAggr(…)
//! TopN(Dataflow, List<OrdExp>, List<Exp<*>>, int)    : Dataflow
//! Order(Table, List<OrdExp>, List<AggrExp>)          : Table
//! ```
//!
//! [`Plan::bind`] resolves table and column names against a
//! [`crate::session::Database`] and produces the operator pipeline. Like
//! the paper's (planned) optimizer, the generic `Aggr` variant picks a
//! physical aggregation: *direct* when every key is a small-domain code
//! column, else *hash* (callers can force `OrdAggr`).

use crate::expr::{AggExpr, Expr};
use crate::govern::QueryContext;
use crate::ops::{
    ArrayOp, CartProdOp, DirectAggrOp, EmptyOp, Fetch1JoinOp, FetchNJoinOp, HashAggrOp, HashJoinOp,
    HashJoinProbeOp, JoinBuildTable, Operator, OrdAggrOp, OrdExp, ProjectOp, ScanOp, SelectOp,
    TopNOp,
};
use crate::ops::{DirectKey, JoinType, OrderOp};
use crate::session::{Database, ExecOptions};
use crate::PlanError;
use std::collections::HashMap;
use std::sync::Arc;
use x100_storage::{EnumDict, Morsel, Table};

/// Pre-built shared join tables, keyed by the address of the
/// `Plan::HashJoin` node they were built for. The parallel driver builds
/// each join's table once on the main thread; worker binds look their
/// node up here and get a probe-only operator over the shared table.
/// Addresses are stable because driver and workers traverse the *same*
/// borrowed plan tree.
pub(crate) type SharedJoinMap = HashMap<usize, Arc<JoinBuildTable>>;

/// Key of a plan node in a [`SharedJoinMap`].
pub(crate) fn plan_key(p: &Plan) -> usize {
    p as *const Plan as usize
}

/// A key of a `DirectAggr`: must resolve to a code column with a known
/// small domain.
#[derive(Debug, Clone)]
pub struct DirectKeySpec {
    /// Output column name.
    pub name: String,
    /// Input (dataflow) column holding enum codes.
    pub col: String,
}

/// Range pruning hint for `Scan`: restricts fragment rows via the
/// column's summary index (§4.3). Conservative — an exact `Select` above
/// is still required.
#[derive(Debug, Clone)]
pub struct RangePrune {
    /// Clustered column carrying a summary index.
    pub col: String,
    /// Lower bound (inclusive), widened to i64.
    pub lo: Option<i64>,
    /// Upper bound (inclusive), widened to i64.
    pub hi: Option<i64>,
}

/// A declarative plan tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Vector-at-a-time scan; enum columns listed in `code_cols` are
    /// surfaced as raw codes (for direct aggregation), all others decode
    /// automatically via `Fetch1Join(ENUM)`.
    Scan {
        /// Table name in the database.
        table: String,
        /// Columns to scan (only these are touched).
        cols: Vec<String>,
        /// Enum columns to keep as codes.
        code_cols: Vec<String>,
        /// Optional summary-index pruning.
        prune: Option<RangePrune>,
    },
    /// Zero-copy selection.
    Select {
        /// Input dataflow.
        input: Box<Plan>,
        /// Boolean predicate.
        pred: Expr,
    },
    /// Expression calculation (no duplicate elimination).
    Project {
        /// Input dataflow.
        input: Box<Plan>,
        /// Named output expressions.
        exprs: Vec<(String, Expr)>,
    },
    /// Generic aggregation: binder picks direct or hash.
    Aggr {
        /// Input dataflow.
        input: Box<Plan>,
        /// Group-by keys (named expressions).
        keys: Vec<(String, Expr)>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Force direct (array-indexed) aggregation on code columns.
    DirectAggr {
        /// Input dataflow.
        input: Box<Plan>,
        /// Code-column keys.
        keys: Vec<DirectKeySpec>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Force ordered aggregation (input clustered on the keys).
    OrdAggr {
        /// Input dataflow.
        input: Box<Plan>,
        /// Group-by keys.
        keys: Vec<(String, Expr)>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Positional 1:1 join by `#rowId`.
    Fetch1Join {
        /// Input dataflow.
        input: Box<Plan>,
        /// Target table.
        table: String,
        /// Row-id expression (u32).
        rowid: Expr,
        /// `(target column, output alias)` pairs to fetch (decoded).
        fetch: Vec<(String, String)>,
        /// Enum columns fetched as raw codes (dictionary metadata
        /// propagates, enabling code predicates and direct aggregation
        /// downstream).
        fetch_codes: Vec<(String, String)>,
    },
    /// Positional 1:N join over a contiguous `#rowId` range.
    FetchNJoin {
        /// Input dataflow.
        input: Box<Plan>,
        /// Target table.
        table: String,
        /// Range start expression (u32).
        lo: Expr,
        /// Range length expression (u32).
        cnt: Expr,
        /// Columns to fetch.
        fetch: Vec<(String, String)>,
    },
    /// Cross product with a table.
    CartProd {
        /// Input dataflow.
        input: Box<Plan>,
        /// Target table.
        table: String,
        /// Columns to fetch.
        fetch: Vec<(String, String)>,
    },
    /// Nested-loop join = `CartProd` + `Select` (the paper's default).
    Join {
        /// Input dataflow.
        input: Box<Plan>,
        /// Target table.
        table: String,
        /// Join predicate over input + fetched columns.
        pred: Expr,
        /// Columns to fetch.
        fetch: Vec<(String, String)>,
    },
    /// Hash equi-join between two dataflows.
    HashJoin {
        /// Build side (fully materialized into the hash table).
        build: Box<Plan>,
        /// Probe side (streamed).
        probe: Box<Plan>,
        /// Build key expressions.
        build_keys: Vec<Expr>,
        /// Probe key expressions.
        probe_keys: Vec<Expr>,
        /// `(build column, alias)` payload (inner joins only).
        payload: Vec<(String, String)>,
        /// Join semantics.
        join_type: JoinType,
    },
    /// Bounded top-N by sort keys.
    TopN {
        /// Input dataflow.
        input: Box<Plan>,
        /// Sort keys.
        keys: Vec<OrdExp>,
        /// Row limit.
        limit: usize,
    },
    /// Materializing sort.
    Order {
        /// Input dataflow.
        input: Box<Plan>,
        /// Sort keys.
        keys: Vec<OrdExp>,
    },
    /// N-dimensional coordinate generator.
    Array {
        /// Dimension extents.
        dims: Vec<i64>,
    },
}

/// Binder output: the operator plus per-column enum dictionaries (for
/// downstream direct aggregation).
type Bound = (Box<dyn Operator>, Vec<Option<EnumDict>>);

impl Plan {
    /// Bind this plan against `db`, producing an executable pipeline
    /// with its own (unshared) governor context derived from `opts`.
    pub fn bind(&self, db: &Database, opts: &ExecOptions) -> Result<Box<dyn Operator>, PlanError> {
        // Static verification first: ill-formed programs must never
        // reach a kernel (see `crate::check`). The same walk runs the
        // facts analyzer; its proofs flow to the binder via the context.
        let summary = crate::check::check_plan(db, self, opts)?;
        let ctx = opts.query_context();
        ctx.provide_plan_facts(summary.facts);
        Ok(self.bind_inner(db, opts, None, None, &ctx)?.0)
    }

    /// Bind against an externally owned governor context (the executor
    /// shares one context between the pipeline and its morsel workers,
    /// and publishes its counters after the run).
    pub fn bind_governed(
        &self,
        db: &Database,
        opts: &ExecOptions,
        ctx: &Arc<QueryContext>,
    ) -> Result<Box<dyn Operator>, PlanError> {
        Ok(self.bind_inner(db, opts, None, None, ctx)?.0)
    }

    /// Bind with an optional morsel restriction on the leaf `Scan`
    /// (parallel workers bind one pipeline clone per disjoint morsel
    /// set) and an optional map of pre-built shared join tables
    /// (`HashJoin` nodes present in the map bind as probe-only
    /// operators). `None, None` reproduces the ordinary full-range bind.
    pub(crate) fn bind_inner(
        &self,
        db: &Database,
        opts: &ExecOptions,
        morsels: Option<&[Morsel]>,
        shared: Option<&SharedJoinMap>,
        ctx: &Arc<QueryContext>,
    ) -> Result<Bound, PlanError> {
        let vs = opts.vector_size;
        let comp = opts.compound_primitives;
        match self {
            Plan::Scan {
                table,
                cols,
                code_cols,
                prune,
            } => {
                let (op, dicts) = bind_scan(
                    db,
                    opts,
                    morsels,
                    ctx,
                    table,
                    cols,
                    code_cols,
                    prune.as_ref(),
                )?;
                Ok((Box::new(op), dicts))
            }
            Plan::Select { input, pred } => {
                // Constant-fold sink (see `crate::facts`): a predicate
                // proven always-true binds to the child alone; proven
                // always-false binds to an empty pipeline. The verdict
                // is keyed by node address, so every worker's bind of
                // the same borrowed plan folds identically.
                match ctx
                    .plan_facts()
                    .and_then(|f| f.select_verdicts.get(&plan_key(self)).copied())
                {
                    Some(true) => return input.bind_inner(db, opts, morsels, shared, ctx),
                    Some(false) => {
                        let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                        let op = EmptyOp::new(child.fields().to_vec());
                        return Ok((Box::new(op), dicts));
                    }
                    None => {}
                }
                // Compression-aware fusion: Select over a Scan of a
                // checkpoint-compressed column pushes (part of) the
                // predicate into encoded space — the scan refill becomes
                // a CompressedScanSelect and only surviving positions
                // are decoded. Remaining conjuncts stay a normal Select.
                if let Plan::Scan {
                    table,
                    cols,
                    code_cols,
                    prune,
                } = input.as_ref()
                {
                    if let Some(f) = fuse_scan_select(db, table, cols, code_cols, pred, opts) {
                        let (mut scan, dicts) = bind_scan(
                            db,
                            opts,
                            morsels,
                            ctx,
                            table,
                            cols,
                            code_cols,
                            prune.as_ref(),
                        )?;
                        scan.set_pushdown(&f.col, f.push)?;
                        let child: Box<dyn Operator> = Box::new(scan);
                        return match f.residual {
                            None => Ok((child, dicts)),
                            Some(res) => {
                                let res = rewrite_enum_literals(&res, child.fields(), &dicts);
                                let op = SelectOp::new(
                                    child,
                                    &res,
                                    vs,
                                    comp,
                                    opts.select_strategy,
                                    ctx.clone(),
                                )?;
                                Ok((Box::new(op), dicts))
                            }
                        };
                    }
                }
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let pred = rewrite_enum_literals(pred, child.fields(), &dicts);
                let op = SelectOp::new(child, &pred, vs, comp, opts.select_strategy, ctx.clone())?;
                Ok((Box::new(op), dicts))
            }
            Plan::Project { input, exprs } => {
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let exprs: Vec<(String, Expr)> = exprs
                    .iter()
                    .map(|(n, e)| (n.clone(), rewrite_enum_literals(e, child.fields(), &dicts)))
                    .collect();
                // Pass-through column refs keep their dict metadata.
                let out_dicts = exprs
                    .iter()
                    .map(|(_, e)| match e {
                        Expr::Col(name) => child
                            .fields()
                            .iter()
                            .position(|f| &f.name == name)
                            .and_then(|i| dicts[i].clone()),
                        _ => None,
                    })
                    .collect();
                let op = ProjectOp::new(child, &exprs, vs, comp, ctx.clone())?;
                Ok((Box::new(op), out_dicts))
            }
            Plan::Aggr { input, keys, aggs } => {
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                // Direct aggregation if *every* key is a bare reference to
                // a code column with a dictionary.
                let direct: Option<Vec<DirectKeySpec>> = keys
                    .iter()
                    .map(|(name, e)| match e {
                        Expr::Col(c) => {
                            let i = child.fields().iter().position(|f| &f.name == c)?;
                            dicts[i].as_ref().map(|_| DirectKeySpec {
                                name: name.clone(),
                                col: c.clone(),
                            })
                        }
                        _ => None,
                    })
                    .collect();
                match direct {
                    Some(dkeys) if !dkeys.is_empty() => {
                        bind_direct(child, &dicts, &dkeys, aggs, vs, comp, ctx)
                    }
                    _ => {
                        // Mixed / non-code keys: hash aggregation, but
                        // code-typed keys still group on codes and
                        // decode only at emission.
                        let key_dicts: Vec<Option<EnumDict>> = keys
                            .iter()
                            .map(|(_, e)| match e {
                                Expr::Col(c) => child
                                    .fields()
                                    .iter()
                                    .position(|f| &f.name == c)
                                    .and_then(|i| dicts[i].clone()),
                                _ => None,
                            })
                            .collect();
                        let op =
                            HashAggrOp::new(child, keys, key_dicts, aggs, vs, comp, ctx.clone())?;
                        let nd = op.fields().len();
                        Ok((Box::new(op), vec![None; nd]))
                    }
                }
            }
            Plan::DirectAggr { input, keys, aggs } => {
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                bind_direct(child, &dicts, keys, aggs, vs, comp, ctx)
            }
            Plan::OrdAggr { input, keys, aggs } => {
                let (child, _) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let op = OrdAggrOp::new(child, keys, aggs, vs, comp, ctx.clone())?;
                let nd = op.fields().len();
                Ok((Box::new(op), vec![None; nd]))
            }
            Plan::Fetch1Join {
                input,
                table,
                rowid,
                fetch,
                fetch_codes,
            } => {
                let (child, mut dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let t = db.table(table)?;
                if !fetch_codes.is_empty() && (t.delta_rows() > 0 || !t.deletes().is_empty()) {
                    return Err(PlanError::Invalid(format!(
                        "code fetch from `{table}` requires a reorganized table"
                    )));
                }
                let mut op =
                    Fetch1JoinOp::new(child, t.clone(), rowid, fetch, fetch_codes, vs, comp)?;
                // Fetch-bounds sink: the analyzer proved every #rowId
                // within the fragment, so eligible gathers dispatch the
                // `_unchecked` kernel twins.
                if opts.unchecked_fetch
                    && ctx
                        .plan_facts()
                        .is_some_and(|f| f.fetch_proofs.get(&plan_key(self)) == Some(&true))
                {
                    op.set_unchecked();
                }
                dicts.extend(fetch.iter().map(|_| None));
                dicts.extend(
                    fetch_codes
                        .iter()
                        .map(|(src, _)| t.column_by_name(src).dict().cloned()),
                );
                Ok((Box::new(op), dicts))
            }
            Plan::FetchNJoin {
                input,
                table,
                lo,
                cnt,
                fetch,
            } => {
                let (child, mut dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let t = db.table(table)?;
                let mut op = FetchNJoinOp::new(child, t, lo, cnt, fetch, vs, comp)?;
                if opts.unchecked_fetch
                    && ctx
                        .plan_facts()
                        .is_some_and(|f| f.fetch_proofs.get(&plan_key(self)) == Some(&true))
                {
                    op.set_unchecked();
                }
                dicts.extend(fetch.iter().map(|_| None));
                Ok((Box::new(op), dicts))
            }
            Plan::CartProd {
                input,
                table,
                fetch,
            } => {
                let (child, mut dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let t = db.table(table)?;
                let op = CartProdOp::new(child, t, fetch, vs, ctx.clone())?;
                dicts.extend(fetch.iter().map(|_| None));
                Ok((Box::new(op), dicts))
            }
            Plan::Join {
                input,
                table,
                pred,
                fetch,
            } => {
                // The paper's default join: CartProd with a Select on top.
                let (child, mut dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let t = db.table(table)?;
                let cart = CartProdOp::new(child, t, fetch, vs, ctx.clone())?;
                let op = SelectOp::new(
                    Box::new(cart),
                    pred,
                    vs,
                    comp,
                    opts.select_strategy,
                    ctx.clone(),
                )?;
                dicts.extend(fetch.iter().map(|_| None));
                Ok((Box::new(op), dicts))
            }
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                payload,
                join_type,
            } => {
                // With a pre-built shared table for this node, bind only
                // the probe side (over the worker's morsels) and probe
                // the table through a shared-table operator.
                if let Some(table) = shared.and_then(|m| m.get(&plan_key(self))) {
                    let (p, pdicts) = probe.bind_inner(db, opts, morsels, shared, ctx)?;
                    let op = HashJoinProbeOp::new(
                        p,
                        table.clone(),
                        probe_keys,
                        *join_type,
                        opts,
                        ctx.clone(),
                    )?;
                    let mut dicts = pdicts;
                    dicts.extend(payload.iter().map(|_| None));
                    return Ok((Box::new(op), dicts));
                }
                // The morsel restriction flows into the probe side only;
                // the build side always materializes full-range.
                let (b, _) = build.bind_inner(db, opts, None, shared, ctx)?;
                let (p, pdicts) = probe.bind_inner(db, opts, morsels, shared, ctx)?;
                let mut op = HashJoinOp::new(
                    b,
                    p,
                    build_keys,
                    probe_keys,
                    payload,
                    *join_type,
                    opts,
                    ctx.clone(),
                )?;
                // Bloom sizing feedback: a probe side that dwarfs the
                // build justifies more filter bits per build key.
                op.set_probe_rows_hint(probe_rows_estimate(probe, db));
                let mut dicts = pdicts;
                dicts.extend(payload.iter().map(|_| None));
                Ok((Box::new(op), dicts))
            }
            Plan::TopN { input, keys, limit } => {
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let op = TopNOp::new(child, keys, *limit, vs, ctx.clone())?;
                Ok((Box::new(op), dicts))
            }
            Plan::Order { input, keys } => {
                let (child, dicts) = input.bind_inner(db, opts, morsels, shared, ctx)?;
                let op = OrderOp::new(child, keys, vs, ctx.clone())?;
                Ok((Box::new(op), dicts))
            }
            Plan::Array { dims } => {
                let op = ArrayOp::new(dims, vs)?;
                let nd = op.fields().len();
                Ok((Box::new(op), vec![None; nd]))
            }
        }
    }
}

/// Construct the leaf `ScanOp` (full-range or morsel-restricted) and its
/// per-column dictionary metadata. Shared between the `Scan` arm and the
/// `Select`-fusion path.
#[allow(clippy::too_many_arguments)]
fn bind_scan(
    db: &Database,
    opts: &ExecOptions,
    morsels: Option<&[Morsel]>,
    ctx: &Arc<QueryContext>,
    table: &str,
    cols: &[String],
    code_cols: &[String],
    prune: Option<&RangePrune>,
) -> Result<(ScanOp, Vec<Option<EnumDict>>), PlanError> {
    let (t, range) = scan_prune_range(db, table, prune)?;
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let code_refs: Vec<&str> = code_cols.iter().map(|s| s.as_str()).collect();
    let vs = opts.vector_size;
    let op = match morsels {
        None => ScanOp::new(
            t.clone(),
            &col_refs,
            &code_refs,
            range,
            vs,
            db.buffer_manager(),
            ctx.clone(),
        )?,
        Some(ms) => ScanOp::with_morsels(
            t.clone(),
            &col_refs,
            &code_refs,
            ms.to_vec(),
            vs,
            db.buffer_manager(),
            ctx.clone(),
        )?,
    };
    let dicts = cols
        .iter()
        .map(|c| {
            if code_cols.contains(c) {
                t.column_by_name(c).dict().cloned()
            } else {
                None
            }
        })
        .collect();
    Ok((op, dicts))
}

/// A successful `Scan→Select` fusion decision: the encoded-space
/// predicate plus whatever conjuncts could not be pushed.
pub(crate) struct FusedPushdown {
    /// Scanned column the pushdown binds to.
    pub col: String,
    /// The compiled encoded-space predicate.
    pub push: x100_storage::Pushdown,
    /// Conjuncts left for a normal `Select` above the fused scan.
    pub residual: Option<Expr>,
}

/// Decide whether (part of) `pred` can run in encoded space over one of
/// the scanned columns. Conservative: any doubt — unknown column, type
/// mismatch, unsupported codec/op pair, pending deltas — declines and
/// the ordinary decode-then-select pipeline binds instead. The same
/// decision runs in [`crate::check`] so the plan verifier sees exactly
/// the operators the binder will construct.
pub(crate) fn fuse_scan_select(
    db: &Database,
    table: &str,
    cols: &[String],
    code_cols: &[String],
    pred: &Expr,
    opts: &ExecOptions,
) -> Option<FusedPushdown> {
    use x100_storage::{ChunkFormat, PushOp};
    use x100_vector::CmpOp;
    if !opts.compressed_pushdown {
        return None;
    }
    let t = db.table(table).ok()?;
    // Delta rows bypass the compressed fragments; fusing would leave
    // them unfiltered, so decline until the table is reorganized.
    if t.delta_rows() > 0 {
        return None;
    }
    let mut conj: Vec<Expr> = Vec::new();
    flatten_and(pred, &mut conj);
    struct Cand {
        i: usize,
        col: String,
        op: PushOp,
        v: x100_vector::Value,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (i, e) in conj.iter().enumerate() {
        let Some((col, cmp, lit)) = cmp_parts(e) else {
            continue;
        };
        if !cols.contains(&col) || code_cols.contains(&col) {
            continue;
        }
        let Some(ci) = t.column_index(&col) else {
            continue;
        };
        let sc = t.column(ci);
        // Enum columns have their own bind-time rewrite (string literal
        // → dictionary code); the lane pushdown handles plain columns.
        if sc.dict().is_some() {
            continue;
        }
        let Some(cc) = sc.compressed() else {
            continue;
        };
        if !matches!(cc.format(), ChunkFormat::Pfor | ChunkFormat::Pdict) {
            continue;
        }
        let op = match cmp {
            CmpOp::Eq => PushOp::Eq,
            CmpOp::Ne => PushOp::Ne,
            CmpOp::Lt => PushOp::Lt,
            CmpOp::Le => PushOp::Le,
            CmpOp::Gt => PushOp::Gt,
            CmpOp::Ge => PushOp::Ge,
        };
        let Some(v) = coerce_lit(&lit, sc.physical_type()) else {
            continue;
        };
        cands.push(Cand { i, col, op, v });
    }
    let cc_of = |col: &str| {
        let ci = t.column_index(col).expect("candidate column resolved");
        t.column(ci).compressed().expect("candidate is compressed")
    };
    // Prefer a range pair (`lo <= c AND c <= hi`) fused as one Between.
    for a in &cands {
        for b in &cands {
            if a.i == b.i || a.col != b.col || a.op != PushOp::Ge || b.op != PushOp::Le {
                continue;
            }
            if let Some(p) = cc_of(&a.col).compile_pushdown(PushOp::Between, &a.v, Some(&b.v)) {
                return Some(FusedPushdown {
                    col: a.col.clone(),
                    push: p,
                    residual: rebuild_residual(&conj, &[a.i, b.i]),
                });
            }
        }
    }
    for c in &cands {
        if let Some(p) = cc_of(&c.col).compile_pushdown(c.op, &c.v, None) {
            return Some(FusedPushdown {
                col: c.col.clone(),
                push: p,
                residual: rebuild_residual(&conj, &[c.i]),
            });
        }
    }
    None
}

/// Split an `And` tree into its conjunct list.
fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// Extract `col ⊙ literal` from a comparison, normalizing the literal
/// to the right (flipping the operator when it was on the left).
fn cmp_parts(e: &Expr) -> Option<(String, x100_vector::CmpOp, x100_vector::Value)> {
    use x100_vector::CmpOp;
    let flip = |op: CmpOp| match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    };
    let Expr::Cmp(op, l, r) = e else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (Expr::Col(c), Expr::Lit(v)) => Some((c.clone(), *op, v.clone())),
        (Expr::Lit(v), Expr::Col(c)) => Some((c.clone(), flip(*op), v.clone())),
        _ => None,
    }
}

/// Coerce a comparison literal to the column's physical type, declining
/// when the value does not fit (no silent truncation — an out-of-range
/// literal stays on the decode-then-select path, whose map layer
/// promotes instead).
fn coerce_lit(v: &x100_vector::Value, ty: x100_vector::ScalarType) -> Option<x100_vector::Value> {
    use x100_vector::{ScalarType, Value};
    if v.scalar_type() == ty {
        return Some(v.clone());
    }
    let as_i = match v {
        Value::I8(x) => *x as i64,
        Value::I16(x) => *x as i64,
        Value::I32(x) => *x as i64,
        Value::I64(x) => *x,
        Value::U8(x) => *x as i64,
        Value::U16(x) => *x as i64,
        Value::U32(x) => *x as i64,
        Value::U64(x) => i64::try_from(*x).ok()?,
        _ => return None,
    };
    match ty {
        ScalarType::I8 => i8::try_from(as_i).ok().map(Value::I8),
        ScalarType::I16 => i16::try_from(as_i).ok().map(Value::I16),
        ScalarType::I32 => i32::try_from(as_i).ok().map(Value::I32),
        ScalarType::I64 => Some(Value::I64(as_i)),
        ScalarType::U8 => u8::try_from(as_i).ok().map(Value::U8),
        ScalarType::U16 => u16::try_from(as_i).ok().map(Value::U16),
        ScalarType::U32 => u32::try_from(as_i).ok().map(Value::U32),
        ScalarType::U64 => u64::try_from(as_i).ok().map(Value::U64),
        // Integer literal against a float column is exact in f64 for
        // anything the PFOR scale trick can represent.
        ScalarType::F64 => Some(Value::F64(as_i as f64)),
        _ => None,
    }
}

/// Re-`And` the conjuncts not consumed by the pushdown.
fn rebuild_residual(conj: &[Expr], used: &[usize]) -> Option<Expr> {
    let mut it = conj
        .iter()
        .enumerate()
        .filter(|(i, _)| !used.contains(i))
        .map(|(_, e)| e.clone());
    let first = it.next()?;
    Some(it.fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e))))
}

/// Resolve a `Scan`'s table and optional summary-index prune range.
/// Shared between the sequential binder and the parallel driver (which
/// needs the pruned range up front to plan morsels).
#[allow(clippy::type_complexity)]
pub(crate) fn scan_prune_range(
    db: &Database,
    table: &str,
    prune: Option<&RangePrune>,
) -> Result<(Arc<Table>, Option<(usize, usize)>), PlanError> {
    let t = db.table(table)?;
    let range = match prune {
        None => None,
        Some(p) => {
            let ci = t
                .column_index(&p.col)
                .ok_or_else(|| PlanError::UnknownColumn(p.col.clone()))?;
            let summary = t.column(ci).summary().ok_or_else(|| {
                PlanError::Invalid(format!("column `{}` has no summary index", p.col))
            })?;
            Some(summary.range_candidates(p.lo, p.hi))
        }
    };
    Ok((t, range))
}

/// Conservative bind-time upper bound on the rows a subtree can stream,
/// used as the hash join's probe-cardinality hint for Bloom filter
/// sizing. `Scan` reads the table cardinality (respecting a prune
/// range); row-preserving and row-reducing shapes pass through or clamp;
/// anything that can grow the stream or whose output cardinality is
/// data-dependent in both directions (aggregation group counts, inner
/// joins, cross products) gives up with `None`.
pub(crate) fn probe_rows_estimate(plan: &Plan, db: &Database) -> Option<usize> {
    match plan {
        Plan::Scan { table, prune, .. } => {
            let (t, range) = scan_prune_range(db, table, prune.as_ref()).ok()?;
            let frag = match range {
                Some((s, e)) => e.saturating_sub(s),
                None => t.fragment_rows(),
            };
            Some(frag + t.delta_rows())
        }
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Fetch1Join { input, .. }
        | Plan::Order { input, .. } => probe_rows_estimate(input, db),
        Plan::TopN { input, limit, .. } => Some(probe_rows_estimate(input, db)?.min(*limit)),
        // Semi/anti joins emit at most one row per probe row.
        Plan::HashJoin {
            probe,
            join_type: JoinType::LeftSemi | JoinType::LeftAnti,
            ..
        } => probe_rows_estimate(probe, db),
        Plan::Array { dims } => dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(usize::try_from(d).ok()?)),
        _ => None,
    }
}

/// Rewrite string-literal equality comparisons on enum *code* columns
/// into comparisons on the dictionary code, so predicates never decode
/// (paper §4.3: enumeration types). Literals absent from the dictionary
/// fold to boolean constants.
pub(crate) fn rewrite_enum_literals(
    e: &Expr,
    fields: &[crate::batch::OutField],
    dicts: &[Option<EnumDict>],
) -> Expr {
    use x100_vector::{CmpOp, ScalarType, Value};
    let code_of = |name: &str, lit: &str| -> Option<Option<Value>> {
        // Outer None: not a code column. Inner: the code, if present.
        let i = fields.iter().position(|f| f.name == name)?;
        let dict = dicts.get(i)?.as_ref()?;
        if !matches!(fields[i].ty, ScalarType::U8 | ScalarType::U16) {
            return None;
        }
        let x100_storage::ColumnData::Str(d) = dict.values() else {
            return None;
        };
        let code = (0..d.len()).find(|&c| d.get(c) == lit);
        Some(code.map(|c| {
            if fields[i].ty == ScalarType::U8 {
                Value::U8(c as u8)
            } else {
                Value::U16(c as u16)
            }
        }))
    };
    match e {
        Expr::Cmp(op @ (CmpOp::Eq | CmpOp::Ne), l, r) => {
            // Normalize literal to the right.
            let rewritten = (|| {
                let (c, s) = match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(c), Expr::Lit(Value::Str(s))) => (c, s),
                    (Expr::Lit(Value::Str(s)), Expr::Col(c)) => (c, s),
                    _ => return None,
                };
                Some(match code_of(c, s)? {
                    Some(code) => Expr::Cmp(
                        *op,
                        Box::new(Expr::Col(c.clone())),
                        Box::new(Expr::Lit(code)),
                    ),
                    None => Expr::Lit(Value::Bool(*op == CmpOp::Ne)),
                })
            })();
            rewritten.unwrap_or_else(|| e.clone())
        }
        Expr::And(l, r) => Expr::And(
            Box::new(rewrite_enum_literals(l, fields, dicts)),
            Box::new(rewrite_enum_literals(r, fields, dicts)),
        ),
        Expr::Or(l, r) => Expr::Or(
            Box::new(rewrite_enum_literals(l, fields, dicts)),
            Box::new(rewrite_enum_literals(r, fields, dicts)),
        ),
        Expr::Not(x) => Expr::Not(Box::new(rewrite_enum_literals(x, fields, dicts))),
        Expr::Cast(ty, x) => Expr::Cast(*ty, Box::new(rewrite_enum_literals(x, fields, dicts))),
        Expr::Arith(op, l, r) => Expr::Arith(
            *op,
            Box::new(rewrite_enum_literals(l, fields, dicts)),
            Box::new(rewrite_enum_literals(r, fields, dicts)),
        ),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            *op,
            Box::new(rewrite_enum_literals(l, fields, dicts)),
            Box::new(rewrite_enum_literals(r, fields, dicts)),
        ),
        other => other.clone(),
    }
}

fn bind_direct(
    child: Box<dyn Operator>,
    dicts: &[Option<EnumDict>],
    keys: &[DirectKeySpec],
    aggs: &[AggExpr],
    vs: usize,
    comp: bool,
    ctx: &Arc<QueryContext>,
) -> Result<Bound, PlanError> {
    let mut dkeys = Vec::new();
    for k in keys {
        let i = child
            .fields()
            .iter()
            .position(|f| f.name == k.col)
            .ok_or_else(|| PlanError::UnknownColumn(k.col.clone()))?;
        let dict = dicts[i].clone();
        let card = match (&dict, child.fields()[i].ty) {
            (Some(d), _) => d.cardinality() as u32,
            (None, x100_vector::ScalarType::U8) => 256,
            (None, x100_vector::ScalarType::U16) => 65536,
            (None, ty) => {
                return Err(PlanError::TypeMismatch(format!(
                    "direct aggregation key `{}` is {ty}, not a code column",
                    k.col
                )))
            }
        };
        dkeys.push(DirectKey {
            name: k.name.clone(),
            col: i,
            card,
            dict,
        });
    }
    let op = DirectAggrOp::new(child, dkeys, aggs, vs, comp, ctx.clone())?;
    let nd = op.fields().len();
    Ok((Box::new(op), vec![None; nd]))
}

/// Fluent constructors, so plans read like the paper's Fig. 9.
impl Plan {
    /// `Scan(table, cols)` with automatic enum decode.
    pub fn scan(table: impl Into<String>, cols: &[&str]) -> Plan {
        Plan::Scan {
            table: table.into(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
            code_cols: Vec::new(),
            prune: None,
        }
    }

    /// `Scan` keeping the listed enum columns as raw codes.
    pub fn scan_with_codes(table: impl Into<String>, cols: &[&str], code_cols: &[&str]) -> Plan {
        Plan::Scan {
            table: table.into(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
            code_cols: code_cols.iter().map(|s| s.to_string()).collect(),
            prune: None,
        }
    }

    /// Attach a summary-index range prune to a `Scan`.
    pub fn pruned(self, col: impl Into<String>, lo: Option<i64>, hi: Option<i64>) -> Plan {
        match self {
            Plan::Scan {
                table,
                cols,
                code_cols,
                ..
            } => Plan::Scan {
                table,
                cols,
                code_cols,
                prune: Some(RangePrune {
                    col: col.into(),
                    lo,
                    hi,
                }),
            },
            other => panic!("pruned() applies to Scan, got {other:?}"),
        }
    }

    /// `Select(self, pred)`.
    pub fn select(self, pred: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// `Project(self, exprs)`.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_owned(), e)).collect(),
        }
    }

    /// `Aggr(self, keys, aggs)` — binder picks the physical operator.
    pub fn aggr(self, keys: Vec<(&str, Expr)>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggr {
            input: Box::new(self),
            keys: keys.into_iter().map(|(n, e)| (n.to_owned(), e)).collect(),
            aggs,
        }
    }

    /// `Fetch1Join(self, table, rowid, fetch)`.
    pub fn fetch1(self, table: impl Into<String>, rowid: Expr, fetch: &[(&str, &str)]) -> Plan {
        Plan::Fetch1Join {
            input: Box::new(self),
            table: table.into(),
            rowid,
            fetch: fetch
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            fetch_codes: Vec::new(),
        }
    }

    /// `Fetch1Join` that additionally fetches enum columns as raw codes
    /// (their dictionaries propagate for code predicates / direct
    /// aggregation downstream).
    pub fn fetch1_with_codes(
        self,
        table: impl Into<String>,
        rowid: Expr,
        fetch: &[(&str, &str)],
        fetch_codes: &[(&str, &str)],
    ) -> Plan {
        Plan::Fetch1Join {
            input: Box::new(self),
            table: table.into(),
            rowid,
            fetch: fetch
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            fetch_codes: fetch_codes
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// `TopN(self, keys, limit)`.
    pub fn topn(self, keys: Vec<OrdExp>, limit: usize) -> Plan {
        Plan::TopN {
            input: Box::new(self),
            keys,
            limit,
        }
    }

    /// `Order(self, keys)`.
    pub fn order(self, keys: Vec<OrdExp>) -> Plan {
        Plan::Order {
            input: Box::new(self),
            keys,
        }
    }
}
