//! The dataflow unit between operators: a batch of vectors.
//!
//! X100 execution proceeds "Volcano-like … on the granularity of a
//! vector" (§4.1.1): each `next()` call passes a horizontal slice of the
//! dataflow, represented vertically as one [`Vector`] per column, plus an
//! optional shared selection vector.
//!
//! Columns are `Rc<Vector>` so that pass-through projection and
//! selection are zero-copy: operators clone pointers, not data. Buffers
//! are still reused across batches — producers call [`VecPool::writable`]
//! which recycles the allocation when no downstream reference survives.

use std::rc::Rc;
use x100_vector::{ScalarType, SelVec, Vector};

/// Name and type of one output column of an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutField {
    /// Column name (unique within an operator's output).
    pub name: String,
    /// Logical scalar type.
    pub ty: ScalarType,
}

impl OutField {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ScalarType) -> Self {
        OutField {
            name: name.into(),
            ty,
        }
    }
}

/// A batch: `len` logical tuples, stored as one vector per column, with
/// an optional selection vector marking which positions are live.
#[derive(Debug, Default, Clone)]
pub struct Batch {
    /// One vector per output column; every vector has length `len`.
    pub columns: Vec<Rc<Vector>>,
    /// Live positions; `None` means all `0..len`.
    pub sel: Option<Rc<SelVec>>,
    /// Full vector length (including unselected positions).
    pub len: usize,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Number of *live* tuples (selection-aware).
    pub fn live(&self) -> usize {
        match &self.sel {
            None => self.len,
            Some(s) => s.len(),
        }
    }

    /// The selection as a primitive-friendly `Option<&SelVec>`.
    pub fn sel_ref(&self) -> Option<&SelVec> {
        self.sel.as_deref()
    }

    /// Total payload bytes across columns (bandwidth accounting).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Clear columns and selection (start of a producer's `next()`).
    pub fn reset(&mut self) {
        self.columns.clear();
        self.sel = None;
        self.len = 0;
    }
}

/// A pool of reusable `Rc<Vector>` buffers for one producer slot.
///
/// Each call to [`VecPool::writable`] returns a mutable vector: the
/// previous allocation if the downstream consumer dropped its reference,
/// or a fresh one otherwise (rare — only when a consumer retains batches,
/// e.g. a materializing Sort).
#[derive(Debug)]
pub struct VecPool {
    slot: Option<Rc<Vector>>,
    ty: ScalarType,
    cap: usize,
}

impl VecPool {
    /// A pool producing vectors of `ty` with capacity `cap`.
    pub fn new(ty: ScalarType, cap: usize) -> Self {
        VecPool {
            slot: None,
            ty,
            cap,
        }
    }

    /// The vector type this pool produces.
    pub fn scalar_type(&self) -> ScalarType {
        self.ty
    }

    /// Take a writable, cleared vector.
    pub fn writable(&mut self) -> Vector {
        match self.slot.take().and_then(|rc| Rc::try_unwrap(rc).ok()) {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vector::with_capacity(self.ty, self.cap),
        }
    }

    /// Take a writable vector *without* clearing it: the caller promises
    /// to overwrite every position it publishes (dense decode paths).
    /// Skipping the clear lets a length-preserving refill avoid the
    /// zero-fill store pass that `resize` after `clear` would pay.
    pub fn writable_dirty(&mut self) -> Vector {
        match self.slot.take().and_then(|rc| Rc::try_unwrap(rc).ok()) {
            Some(v) => v,
            None => Vector::with_capacity(self.ty, self.cap),
        }
    }

    /// Hand the filled vector to a batch, keeping a handle for reuse.
    pub fn publish(&mut self, v: Vector, batch: &mut Batch) {
        let rc = Rc::new(v);
        self.slot = Some(rc.clone());
        batch.columns.push(rc);
    }

    /// Replace column `idx` of the batch with the filled vector
    /// (used when a later pass fills a placeholder slot).
    pub fn publish_at(&mut self, v: Vector, batch: &mut Batch, idx: usize) {
        let rc = Rc::new(v);
        self.slot = Some(rc.clone());
        batch.columns[idx] = rc;
    }
}

/// A pool for the shared selection vector of a producer.
#[derive(Debug, Default)]
pub struct SelPool {
    slot: Option<Rc<SelVec>>,
}

impl SelPool {
    /// Take a writable, cleared selection vector.
    pub fn writable(&mut self) -> SelVec {
        match self.slot.take().and_then(|rc| Rc::try_unwrap(rc).ok()) {
            Some(mut s) => {
                s.clear();
                s
            }
            None => SelVec::default(),
        }
    }

    /// Publish the filled selection vector into a batch.
    pub fn publish(&mut self, s: SelVec, batch: &mut Batch) {
        let rc = Rc::new(s);
        self.slot = Some(rc.clone());
        batch.sel = Some(rc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_respects_selection() {
        let mut b = Batch::new();
        b.len = 10;
        assert_eq!(b.live(), 10);
        b.sel = Some(Rc::new(SelVec::from_positions(vec![1, 5])));
        assert_eq!(b.live(), 2);
    }

    #[test]
    fn pool_reuses_buffer_when_unreferenced() {
        let mut pool = VecPool::new(ScalarType::F64, 8);
        let mut batch = Batch::new();
        let mut v = pool.writable();
        v.as_f64_mut().extend_from_slice(&[1.0, 2.0]);
        let ptr_before = v.as_f64().as_ptr();
        pool.publish(v, &mut batch);
        // Consumer drops the batch → next writable() reuses the buffer.
        drop(batch);
        let v2 = pool.writable();
        assert_eq!(v2.len(), 0);
        assert_eq!(v2.as_f64().as_ptr(), ptr_before);
    }

    #[test]
    fn pool_allocates_fresh_when_retained() {
        let mut pool = VecPool::new(ScalarType::I64, 4);
        let mut batch = Batch::new();
        let v = pool.writable();
        pool.publish(v, &mut batch);
        let retained = batch.columns[0].clone(); // consumer keeps a handle
        let v2 = pool.writable();
        drop(retained);
        assert_eq!(v2.len(), 0); // fresh buffer, not the retained one
    }

    #[test]
    fn sel_pool_roundtrip() {
        let mut pool = SelPool::default();
        let mut batch = Batch::new();
        batch.len = 4;
        let mut s = pool.writable();
        s.push(2);
        pool.publish(s, &mut batch);
        assert_eq!(batch.live(), 1);
        assert_eq!(batch.sel_ref().expect("sel").positions(), &[2]);
    }
}
