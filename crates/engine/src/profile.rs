//! Tracing and profiling (paper §5.1, Table 5).
//!
//! "X100 implements detailed tracing and profiling support using
//! low-level CPU counters, to help analyze query performance."
//!
//! Our substitution: high-resolution wall-clock timing per primitive
//! invocation (the paper's absolute cycle counts were hardware
//! artifacts; what matters is per-primitive cost per tuple and
//! bandwidth). The profiler aggregates, per primitive signature and per
//! operator: input tuple counts, bytes touched, nanoseconds, and derives
//! MB/s and cycles/tuple at a nominal clock.
//!
//! Profiling is strictly opt-in: with `enabled == false` every record
//! call is a no-op and the timer is never read, so the Figure 10
//! vector-size sweep (where per-call overhead would dominate at vector
//! size 1) runs untraced.

use std::collections::BTreeMap;
use std::time::Instant;

/// Nominal clock frequency used to convert ns/tuple into the paper's
/// "cycles per tuple" unit (Table 5 ran on a 1.3 GHz Itanium2).
pub const NOMINAL_GHZ: f64 = 1.3;

/// Aggregated statistics for one primitive signature or operator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStat {
    /// Number of invocations (vectors processed).
    pub calls: u64,
    /// Total input tuples across invocations.
    pub tuples: u64,
    /// Total bytes touched (inputs + outputs).
    pub bytes: u64,
    /// Total elapsed nanoseconds.
    pub nanos: u64,
}

impl TraceStat {
    /// Average bandwidth in MB/s.
    pub fn mb_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            (self.bytes as f64 / (1 << 20) as f64) / (self.nanos as f64 * 1e-9)
        }
    }

    /// Average nanoseconds per tuple.
    pub fn ns_per_tuple(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.nanos as f64 / self.tuples as f64
        }
    }

    /// The paper's "avg. cycles" per tuple at [`NOMINAL_GHZ`].
    pub fn cycles_per_tuple(&self) -> f64 {
        self.ns_per_tuple() * NOMINAL_GHZ
    }
}

/// Summary of one parallel worker's contribution to a query.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker label (e.g. `worker-0`).
    pub label: String,
    /// Wall-clock nanoseconds the worker's pipeline ran.
    pub wall_nanos: u64,
    /// Tuples the worker's partial aggregation consumed.
    pub tuples: u64,
}

/// The session profiler. One per executed query.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    prims: BTreeMap<String, TraceStat>,
    ops: BTreeMap<String, TraceStat>,
    /// Insertion order of first appearance, for paper-like trace listings.
    prim_order: Vec<String>,
    op_order: Vec<String>,
    /// Per-worker summaries of a parallel run (empty when sequential).
    workers: Vec<WorkerTrace>,
    /// Named event counters (Bloom rejects, partition stats, …).
    counters: BTreeMap<String, u64>,
    counter_order: Vec<String>,
    /// Counters with high-water-mark semantics (`max_counter`): worker
    /// merges take the max instead of summing.
    max_names: std::collections::BTreeSet<String>,
}

impl Profiler {
    /// A profiler; `enabled == false` makes all recording free.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            ..Default::default()
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a timing span (returns `None` when disabled).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a primitive invocation against signature `sig`.
    #[inline]
    pub fn record_prim(
        &mut self,
        sig: &str,
        started: Option<Instant>,
        tuples: usize,
        bytes: usize,
    ) {
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos() as u64;
            if !self.prims.contains_key(sig) {
                self.prim_order.push(sig.to_owned());
            }
            let e = self.prims.entry(sig.to_owned()).or_default();
            e.calls += 1;
            e.tuples += tuples as u64;
            e.bytes += bytes as u64;
            e.nanos += nanos;
        }
    }

    /// Record time attributed to an operator (coarse level of Table 5).
    #[inline]
    pub fn record_op(&mut self, op: &str, started: Option<Instant>, tuples: usize) {
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos() as u64;
            if !self.ops.contains_key(op) {
                self.op_order.push(op.to_owned());
            }
            let e = self.ops.entry(op.to_owned()).or_default();
            e.calls += 1;
            e.tuples += tuples as u64;
            e.nanos += nanos;
        }
    }

    /// Add `n` to the named event counter (no-op when disabled). Counters
    /// record *event counts* with no timing attached — Bloom-prepass
    /// rejects, radix partition counts, per-partition build statistics.
    #[inline]
    pub fn add_counter(&mut self, name: &str, n: u64) {
        if self.enabled {
            if !self.counters.contains_key(name) {
                self.counter_order.push(name.to_owned());
            }
            *self.counters.entry(name.to_owned()).or_default() += n;
        }
    }

    /// Set the named counter to the maximum of its current value and `n`
    /// (for high-water marks like the largest partition).
    #[inline]
    pub fn max_counter(&mut self, name: &str, n: u64) {
        if self.enabled {
            if !self.counters.contains_key(name) {
                self.counter_order.push(name.to_owned());
            }
            self.max_names.insert(name.to_owned());
            let e = self.counters.entry(name.to_owned()).or_default();
            *e = (*e).max(n);
        }
    }

    /// Look up one counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Named counters in first-appearance order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_order
            .iter()
            .map(move |k| (k.as_str(), self.counters[k]))
    }

    /// Primitive-level statistics in first-appearance order.
    pub fn primitives(&self) -> impl Iterator<Item = (&str, &TraceStat)> {
        self.prim_order
            .iter()
            .map(move |k| (k.as_str(), &self.prims[k]))
    }

    /// Operator-level statistics in first-appearance order.
    pub fn operators(&self) -> impl Iterator<Item = (&str, &TraceStat)> {
        self.op_order
            .iter()
            .map(move |k| (k.as_str(), &self.ops[k]))
    }

    /// Look up one primitive's stats.
    pub fn primitive(&self, sig: &str) -> Option<&TraceStat> {
        self.prims.get(sig)
    }

    /// Fold a parallel worker's profiler into this one: primitive and
    /// operator stats merge into the global tables (preserving
    /// first-appearance order), and a [`WorkerTrace`] summary is kept.
    /// Note the merged `nanos` are summed *CPU* time across workers —
    /// wall-clock speedup shows up in `wall_nanos` instead.
    pub fn absorb_worker(&mut self, label: impl Into<String>, wall_nanos: u64, worker: Profiler) {
        let mut tuples = 0u64;
        for (op, st) in worker.operators() {
            if op.starts_with("Aggr") {
                tuples += st.tuples;
            }
        }
        for sig in &worker.prim_order {
            let st = worker.prims[sig];
            if !self.prims.contains_key(sig) {
                self.prim_order.push(sig.clone());
            }
            let e = self.prims.entry(sig.clone()).or_default();
            e.calls += st.calls;
            e.tuples += st.tuples;
            e.bytes += st.bytes;
            e.nanos += st.nanos;
        }
        for op in &worker.op_order {
            let st = worker.ops[op];
            if !self.ops.contains_key(op) {
                self.op_order.push(op.clone());
            }
            let e = self.ops.entry(op.clone()).or_default();
            e.calls += st.calls;
            e.tuples += st.tuples;
            e.nanos += st.nanos;
        }
        for name in &worker.counter_order {
            if !self.counters.contains_key(name) {
                self.counter_order.push(name.clone());
            }
            let e = self.counters.entry(name.clone()).or_default();
            if worker.max_names.contains(name) {
                // High-water marks (largest partition, worst compression
                // ratio) stay maxima across workers; summing them would
                // scale with the thread count.
                self.max_names.insert(name.clone());
                *e = (*e).max(worker.counters[name]);
            } else {
                *e += worker.counters[name];
            }
        }
        self.workers.push(WorkerTrace {
            label: label.into(),
            wall_nanos,
            tuples,
        });
    }

    /// Per-worker summaries of a parallel run (empty when sequential).
    pub fn workers(&self) -> &[WorkerTrace] {
        &self.workers
    }

    /// Render a Table 5-style trace: per-primitive rows then per-operator
    /// rollup.
    pub fn render_table5(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{:>10} {:>8} {:>10} {:>8} {:>6}  X100 primitive",
            "input", "total", "time", "BW", "avg."
        )
        .expect("write to String");
        writeln!(
            s,
            "{:>10} {:>8} {:>10} {:>8} {:>6}",
            "count", "MB", "(us)", "MB/s", "cycles"
        )
        .expect("write to String");
        for (sig, st) in self.primitives() {
            writeln!(
                s,
                "{:>10} {:>8.1} {:>10.0} {:>8.0} {:>6.1}  {}",
                st.tuples,
                st.bytes as f64 / (1 << 20) as f64,
                st.nanos as f64 / 1000.0,
                st.mb_per_sec(),
                st.cycles_per_tuple(),
                sig
            )
            .expect("write to String");
        }
        writeln!(s, "\n{:>10} {:>10}  X100 operator", "tuples", "time (us)")
            .expect("write to String");
        for (op, st) in self.operators() {
            writeln!(
                s,
                "{:>10} {:>10.0}  {}",
                st.tuples,
                st.nanos as f64 / 1000.0,
                op
            )
            .expect("write to String");
        }
        if !self.counters.is_empty() {
            writeln!(s, "\n{:>10}  event counter", "count").expect("write to String");
            for (name, n) in self.counters() {
                writeln!(s, "{n:>10}  {name}").expect("write to String");
            }
        }
        if !self.workers.is_empty() {
            writeln!(s, "\n{:>10} {:>10}  parallel worker", "tuples", "wall (us)")
                .expect("write to String");
            for w in &self.workers {
                writeln!(
                    s,
                    "{:>10} {:>10.0}  {}",
                    w.tuples,
                    w.wall_nanos as f64 / 1000.0,
                    w.label
                )
                .expect("write to String");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new(false);
        let t = p.start();
        assert!(t.is_none());
        p.record_prim("map_add_f64_col_f64_col", t, 1024, 8192);
        assert_eq!(p.primitives().count(), 0);
    }

    #[test]
    fn enabled_profiler_aggregates() {
        let mut p = Profiler::new(true);
        for _ in 0..3 {
            let t = p.start();
            std::hint::black_box(0);
            p.record_prim("map_mul_f64_col_f64_col", t, 1000, 24_000);
        }
        let st = p.primitive("map_mul_f64_col_f64_col").expect("recorded");
        assert_eq!(st.calls, 3);
        assert_eq!(st.tuples, 3000);
        assert_eq!(st.bytes, 72_000);
        assert!(st.ns_per_tuple() >= 0.0);
    }

    #[test]
    fn order_is_first_appearance() {
        let mut p = Profiler::new(true);
        for sig in ["z_prim", "a_prim", "z_prim"] {
            let t = p.start();
            p.record_prim(sig, t, 1, 1);
        }
        let order: Vec<&str> = p.primitives().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["z_prim", "a_prim"]);
    }

    #[test]
    fn counters_aggregate_and_render() {
        let mut p = Profiler::new(true);
        p.add_counter("join_bloom_rejected", 10);
        p.add_counter("join_bloom_rejected", 5);
        p.max_counter("join_partition_max_rows", 100);
        p.max_counter("join_partition_max_rows", 40);
        assert_eq!(p.counter("join_bloom_rejected"), Some(15));
        assert_eq!(p.counter("join_partition_max_rows"), Some(100));
        // Worker counters fold in additively — except high-water marks,
        // which take the max (summing would scale with thread count).
        let mut w = Profiler::new(true);
        w.add_counter("join_bloom_rejected", 7);
        w.max_counter("join_partition_max_rows", 60);
        w.max_counter("compress_ratio", 65);
        p.absorb_worker("worker-0", 1, w);
        assert_eq!(p.counter("join_bloom_rejected"), Some(22));
        assert_eq!(p.counter("join_partition_max_rows"), Some(100));
        assert_eq!(p.counter("compress_ratio"), Some(65));
        let mut w2 = Profiler::new(true);
        w2.max_counter("compress_ratio", 65);
        p.absorb_worker("worker-1", 1, w2);
        assert_eq!(p.counter("compress_ratio"), Some(65), "max, not sum");
        let out = p.render_table5();
        assert!(out.contains("event counter"));
        assert!(out.contains("join_bloom_rejected"));
    }

    #[test]
    fn disabled_profiler_skips_counters() {
        let mut p = Profiler::new(false);
        p.add_counter("join_bloom_rejected", 3);
        assert_eq!(p.counter("join_bloom_rejected"), None);
    }

    #[test]
    fn stat_derivations() {
        let st = TraceStat {
            calls: 1,
            tuples: 1000,
            bytes: 1 << 20,
            nanos: 1_000_000,
        };
        assert!((st.mb_per_sec() - 1000.0).abs() < 1e-9);
        assert!((st.ns_per_tuple() - 1000.0).abs() < 1e-9);
        assert!((st.cycles_per_tuple() - 1300.0).abs() < 1e-9);
        let empty = TraceStat::default();
        assert_eq!(empty.mb_per_sec(), 0.0);
        assert_eq!(empty.ns_per_tuple(), 0.0);
    }

    #[test]
    fn render_contains_rows() {
        let mut p = Profiler::new(true);
        let t = p.start();
        p.record_prim("map_add_f64_col_f64_col", t, 10, 80);
        let t = p.start();
        p.record_op("Scan", t, 10);
        let out = p.render_table5();
        assert!(out.contains("map_add_f64_col_f64_col"));
        assert!(out.contains("Scan"));
        assert!(out.contains("X100 primitive"));
    }
}
