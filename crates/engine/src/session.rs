//! Sessions: the catalog, execution options, and result materialization.

use crate::batch::OutField;
use crate::govern::{CancelToken, QueryContext};
use crate::ops::Operator;
use crate::plan::Plan;
use crate::profile::Profiler;
use crate::PlanError;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use x100_storage::{ColumnBM, FaultPlan, Table};
use x100_vector::{SelectStrategy, Value, Vector, DEFAULT_VECTOR_SIZE};

/// Default morsel size for parallel scans: large enough to amortize
/// per-morsel dispatch, small enough to balance skewed selections.
pub const DEFAULT_MORSEL_SIZE: usize = 64 * 1024;

/// Default cache budget for one join hash-table partition: roughly half
/// of a (paper-era) 256 KiB L2 cache, leaving the other half for the
/// probe-side working set (paper §3, Table 2: the hot loop must stay
/// cache-resident).
pub const DEFAULT_JOIN_CACHE_BUDGET: usize = 128 * 1024;

/// Execution options of one query run.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Values per vector (paper default 1024; Fig. 10 sweeps this).
    pub vector_size: usize,
    /// Enable per-primitive / per-operator tracing (Table 5).
    pub profile: bool,
    /// Enable compound-primitive fusion (§4.2; off for ablation).
    pub compound_primitives: bool,
    /// Select primitive code shape (Fig. 2).
    pub select_strategy: SelectStrategy,
    /// Fuse `Select` over a `Scan` of a checkpoint-compressed column
    /// into a compressed-execution path: the predicate is evaluated in
    /// encoded space over the packed lanes (or rewritten against the
    /// dictionary) and only surviving positions are ever decoded. Off
    /// for ablation (decode-then-select).
    pub compressed_pushdown: bool,
    /// Worker threads for morsel-driven parallel execution. `1` (the
    /// default) runs the unchanged single-threaded pipeline; `> 1`
    /// parallelizes aggregation-rooted scan pipelines (other plan
    /// shapes silently fall back to single-threaded execution).
    pub threads: usize,
    /// Rows per morsel for parallel scans (`0` = one morsel per whole
    /// fragment range / delta). Ignored when `threads == 1`.
    pub morsel_size: usize,
    /// Byte budget one radix partition of a join build table should fit
    /// in (keys + payload + hash/bucket/chain overhead). The build phase
    /// picks the smallest partition-bit count that keeps the average
    /// partition under this budget.
    pub join_cache_budget: usize,
    /// Explicit radix partition bits for join builds (`Some(0)` forces
    /// the monolithic single-table layout; `None` derives the bit count
    /// from `join_cache_budget`).
    pub join_partition_bits: Option<u32>,
    /// Byte budget for governed operator state (hash-join builds,
    /// aggregation tables, Order/TopN buffers). Exceeding it aborts the
    /// query with [`PlanError::ResourceExhausted`]. `None` = unbounded.
    pub mem_budget: Option<usize>,
    /// Byte budget for on-disk spill runs. `Some` arms graceful
    /// degradation: when a [`MemTracker`] probe would overflow
    /// `mem_budget`, aggregation and Order/TopN spill compressed runs
    /// to a per-query temp directory instead of aborting, and only
    /// exhausting *this* budget too raises
    /// [`PlanError::ResourceExhausted`]. `None` keeps the PR 3 hard
    /// abort.
    pub spill_budget: Option<usize>,
    /// Wall-clock budget; converted to a deadline when execution
    /// starts. Expiry aborts with [`PlanError::DeadlineExceeded`].
    pub timeout: Option<Duration>,
    /// External cancellation token; triggering it aborts the query with
    /// [`PlanError::Cancelled`] at the next per-vector check.
    pub cancel: Option<CancelToken>,
    /// Chunk-read fault injection plan for the attached ColumnBM
    /// (active only with the `fault-inject` cargo feature).
    pub fault_plan: Option<FaultPlan>,
    /// Testing aid: deliberately panic inside the pipeline after this
    /// many governor checks (exercises worker-panic containment).
    pub panic_probe: Option<u64>,
    /// Escalate provable fact violations (e.g. a `Fetch1Join` whose
    /// every `#rowId` is proven out of bounds) from runtime errors to
    /// bind-time [`crate::CheckViolation::FactViolation`]s. Defaults to
    /// the presence of the `X100_ENFORCE_FACTS` environment variable
    /// (the differential CI harness sets it).
    pub enforce_facts: bool,
    /// Allow the binder to dispatch `_unchecked` gather twins where the
    /// facts analyzer proves the fetch bounds ([`crate::facts`]).
    /// `false` forces the checked kernels everywhere (ablation /
    /// differential baseline).
    pub unchecked_fetch: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            vector_size: DEFAULT_VECTOR_SIZE,
            profile: false,
            compound_primitives: true,
            select_strategy: SelectStrategy::Branch,
            compressed_pushdown: true,
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
            join_cache_budget: DEFAULT_JOIN_CACHE_BUDGET,
            join_partition_bits: None,
            mem_budget: None,
            spill_budget: None,
            timeout: None,
            cancel: None,
            fault_plan: None,
            panic_probe: None,
            enforce_facts: std::env::var_os("X100_ENFORCE_FACTS").is_some(),
            unchecked_fetch: true,
        }
    }
}

impl ExecOptions {
    /// Options with a specific vector size.
    pub fn with_vector_size(vector_size: usize) -> Self {
        ExecOptions {
            vector_size,
            ..Default::default()
        }
    }

    /// Enable tracing.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enable or disable compressed-execution predicate pushdown
    /// (enabled by default; `false` forces decode-then-select).
    pub fn with_compressed_pushdown(mut self, on: bool) -> Self {
        self.compressed_pushdown = on;
        self
    }

    /// Use `threads` parallel workers.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use `morsel_size`-row morsels for parallel scans.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size;
        self
    }

    /// Use an explicit radix partition-bit count for join builds
    /// (`0` forces the monolithic table).
    pub fn with_join_partition_bits(mut self, bits: u32) -> Self {
        self.join_partition_bits = Some(bits);
        self
    }

    /// Use `bytes` as the per-partition cache budget for join builds.
    pub fn with_join_cache_budget(mut self, bytes: usize) -> Self {
        self.join_cache_budget = bytes.max(1);
        self
    }

    /// Cap governed operator memory at `bytes`.
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Allow up to `bytes` of on-disk spill runs before a memory-budget
    /// overflow becomes fatal (graceful degradation; see
    /// [`ExecOptions::spill_budget`]).
    pub fn with_spill_budget(mut self, bytes: usize) -> Self {
        self.spill_budget = Some(bytes);
        self
    }

    /// Abort the query once `timeout` wall-clock time has elapsed.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attach an external cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Inject chunk-read faults per `plan` (needs the `fault-inject`
    /// cargo feature to actually fire).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Testing aid: panic inside the pipeline after `checks` governor
    /// checkpoints (see [`ExecOptions::panic_probe`]).
    pub fn with_panic_probe(mut self, checks: u64) -> Self {
        self.panic_probe = Some(checks);
        self
    }

    /// Turn provable fact violations into bind-time errors
    /// (see [`ExecOptions::enforce_facts`]).
    pub fn with_enforce_facts(mut self, on: bool) -> Self {
        self.enforce_facts = on;
        self
    }

    /// Enable or disable fact-proven `_unchecked` gather dispatch
    /// (enabled by default; see [`ExecOptions::unchecked_fetch`]).
    pub fn with_unchecked_fetch(mut self, on: bool) -> Self {
        self.unchecked_fetch = on;
        self
    }

    /// Build the per-query governor context from these options.
    pub(crate) fn query_context(&self) -> Arc<QueryContext> {
        // A SIGKILLed process skips every Drop and leaves its spill
        // dirs behind; reclaim dead processes' dirs once per process,
        // before the first query can spill.
        static SPILL_GC: std::sync::Once = std::sync::Once::new();
        SPILL_GC.call_once(|| {
            crate::spill::gc_stale_spill_dirs();
        });
        Arc::new(QueryContext::new(
            self.mem_budget,
            self.spill_budget,
            self.timeout,
            self.cancel.clone(),
            self.fault_plan.clone(),
            self.panic_probe,
        ))
    }
}

/// The catalog: named tables plus an optional buffer manager.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    bm: Option<Arc<ColumnBM>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table under its own name.
    pub fn register(&mut self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        self.tables.insert(arc.name().to_owned(), arc.clone());
        arc
    }

    /// Register a pre-shared table.
    pub fn register_arc(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, PlanError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| PlanError::Invalid(format!("unknown table `{name}`")))
    }

    /// Table names in the catalog.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Attach a (simulated) ColumnBM buffer manager; scans will account
    /// their accesses against it.
    pub fn attach_buffer_manager(&mut self, bm: Arc<ColumnBM>) {
        self.bm = Some(bm);
    }

    /// The attached buffer manager, if any.
    pub fn buffer_manager(&self) -> Option<Arc<ColumnBM>> {
        self.bm.clone()
    }
}

/// A fully materialized query result (selection applied, columns
/// compacted).
#[derive(Debug)]
pub struct QueryResult {
    fields: Vec<OutField>,
    cols: Vec<Vector>,
    rows: usize,
}

impl QueryResult {
    /// Output schema.
    pub fn fields(&self) -> &[OutField] {
        &self.fields
    }

    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column index by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// A column by index.
    pub fn column(&self, i: usize) -> &Vector {
        &self.cols[i]
    }

    /// A column by name.
    ///
    /// # Panics
    /// Panics if absent.
    pub fn column_by_name(&self, name: &str) -> &Vector {
        let i = self
            .col_index(name)
            .unwrap_or_else(|| panic!("no result column `{name}`"));
        &self.cols[i]
    }

    /// One cell as a [`Value`].
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].get_value(row)
    }

    /// Render rows as strings (tests, display); floats use `{:.4}`.
    pub fn row_strings(&self) -> Vec<String> {
        (0..self.rows)
            .map(|r| {
                (0..self.cols.len())
                    .map(|c| self.value(r, c).to_string())
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    }

    /// Render a readable table.
    pub fn to_table_string(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{}",
            self.fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(" | ")
        )
        .expect("write to String");
        for row in self.row_strings() {
            writeln!(s, "{}", row.replace('|', " | ")).expect("write to String");
        }
        s
    }
}

/// Execute a plan to completion, materializing the result.
///
/// With `opts.threads > 1`, aggregation-rooted scan pipelines run
/// morsel-parallel (see [`crate::ops::MergeAggrOp`]); unsupported plan
/// shapes transparently fall back to the single-threaded path.
pub fn execute(
    db: &Database,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<(QueryResult, Profiler), PlanError> {
    // Static verification gate: every plan is checked against the
    // primitive catalog before any operator is constructed. The same
    // walk runs the facts analyzer; its proofs ride into the binder via
    // the query context.
    let summary = crate::check::check_plan(db, plan, opts)?;
    let ctx = opts.query_context();
    ctx.provide_plan_facts(summary.facts);
    if opts.threads > 1 {
        if let Some((result, mut prof)) =
            crate::ops::parallel::try_execute_parallel(db, plan, opts, &ctx)?
        {
            ctx.publish(&mut prof);
            return Ok((result, prof));
        }
    }
    let mut op = plan.bind_governed(db, opts, &ctx)?;
    let mut prof = Profiler::new(opts.profile);
    let result = run_operator(op.as_mut(), &mut prof)?;
    ctx.publish(&mut prof);
    Ok((result, prof))
}

/// Drain an operator into a compacted [`QueryResult`].
pub fn run_operator(op: &mut dyn Operator, prof: &mut Profiler) -> Result<QueryResult, PlanError> {
    let fields = op.fields().to_vec();
    let mut cols: Vec<Vector> = fields
        .iter()
        .map(|f| Vector::with_capacity(f.ty, 0))
        .collect();
    let mut rows = 0usize;
    while let Some(batch) = op.next(prof)? {
        match batch.sel.as_deref() {
            None => {
                for (dst, src) in cols.iter_mut().zip(batch.columns.iter()) {
                    crate::ops::extend_range(dst, src, 0, batch.len);
                }
                rows += batch.len;
            }
            Some(sel) => {
                for (dst, src) in cols.iter_mut().zip(batch.columns.iter()) {
                    for i in sel.iter() {
                        crate::ops::push_from(dst, src, i);
                    }
                }
                rows += sel.len();
            }
        }
    }
    Ok(QueryResult { fields, cols, rows })
}
