//! # x100-engine — the X100 vectorized query processor
//!
//! The paper's core contribution (§4): a Volcano-style pull pipeline
//! whose unit of exchange is not a tuple but a *vector* of ~1000 values,
//! executed by vectorized primitives.
//!
//! * [`batch`] — the dataflow unit ([`Batch`]): `Rc`-shared column
//!   vectors + an optional selection vector.
//! * [`expr`] — the expression AST of X100 algebra plans.
//! * [`compile`] — lowering expressions to primitive programs, with
//!   compound-primitive fusion (§4.2).
//! * [`ops`] — the operators of Fig. 7: `Scan`, `Select`, `Project`,
//!   `Aggr` (hash / direct / ordered), `Fetch1Join`, `FetchNJoin`,
//!   `CartProd`, nested-loop and hash `Join`, `TopN`, `Order`, `Array`.
//! * [`plan`] — declarative plan trees bound into operator pipelines.
//! * [`parser`] / [`render`] — the textual X100 algebra of the paper's
//!   Figs. 6 & 9: parse it, and pretty-print plans back (EXPLAIN).
//! * [`facts`] — plan-level abstract interpretation: value-range /
//!   sortedness / row-count facts that prove fetch bounds (unchecked
//!   gather twins) and constant-fold provable selections.
//! * [`govern`] — the per-query resource governor: memory budgets,
//!   cancellation/deadlines, worker-panic containment, fault injection.
//! * [`profile`] — per-primitive and per-operator tracing (Table 5).
//! * [`session`] — the catalog ([`Database`]), execution options
//!   (vector size, select strategy, compound toggle), and result
//!   materialization.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod batch;
pub mod check;
pub mod compile;
pub mod expr;
pub mod facts;
pub mod govern;
pub mod ops;
pub mod parser;
pub mod plan;
pub mod profile;
pub mod render;
pub mod session;
pub mod spill;

pub use batch::{Batch, OutField};
pub use check::{check_plan, explain_check, explain_facts, verify_program, CheckSummary};
/// Typed engine error (alias of [`PlanError`]): binding, validation and
/// execution failures that used to be panics surface as this.
pub use compile::PlanError as EngineError;
pub use compile::{CheckViolation, ExprProg, PlanError};
pub use expr::{AggExpr, AggFunc, ArithOp, Expr};
pub use facts::{ColFact, FactRange, NodeFacts, PlanFacts};
pub use govern::{CancelToken, MemTracker, QueryContext};
pub use ops::{AggrPartial, MergeAggrOp, MergeSpec, Operator, PartialAcc};
pub use parser::{parse_expr, parse_plan};
pub use plan::Plan;
pub use profile::{Profiler, TraceStat, WorkerTrace};
pub use render::{render_expr, render_plan};
pub use session::{Database, ExecOptions, QueryResult, DEFAULT_MORSEL_SIZE};
pub use spill::{gc_stale_spill_dirs, global_spill_used, set_global_spill_budget, spill_root};
pub use x100_storage::{
    DurableError, DurableOptions, DurableSource, FaultPlan, FaultSite, PinnedFault,
};
