//! Bind-time plan and primitive-program verification.
//!
//! X100's expression compiler emits straight-line primitive programs
//! whose inner loops carry no per-tuple interpretation overhead (§4.2,
//! Table 5) — which also means every type or selection-vector mistake
//! the compiler makes becomes a silent wrong answer or a panic deep
//! inside a kernel. This module makes ill-formed programs unrepresentable
//! at bind time: [`check_plan`] walks a [`Plan`] exactly the way the
//! binder does — deriving each node's output shape and enum-dictionary
//! metadata without constructing operators — compiles every expression
//! the binder would compile, and validates each emitted primitive
//! instruction against the typed catalog
//! ([`x100_vector::PrimitiveRegistry`]).
//!
//! Four defect classes are rejected, each as a typed
//! [`PlanError::PlanCheck`] with a precise node path:
//!
//! 1. **Type mismatches** ([`CheckViolation::TypeMismatch`]) — a
//!    primitive fed operands that disagree with its registered
//!    signature, or an expression that cannot type at all.
//! 2. **Selection-vector misuse** ([`CheckViolation::SelVectorMisuse`])
//!    — a `select_*` output fed where a dense vector is required (e.g. a
//!    position-dependent scatter running under a selection); see
//!    [`verify_program`].
//! 3. **Undecoded enum columns**
//!    ([`CheckViolation::UndecodedEnumColumn`]) — a dictionary-code
//!    column used as an arithmetic or cast operand without the
//!    sanctioned `Fetch1Join(ENUM)` decode. Bare code references,
//!    equality predicates (rewritten to code comparisons), and group-by
//!    keys are fine; doing *math* on codes is always a bug.
//! 4. **Unknown signatures** ([`CheckViolation::UnknownSignature`]) — a
//!    compiled instruction whose signature the registry has never heard
//!    of, including instances the interpreter cannot dispatch (a
//!    `map_eq_u64_col_col` projection would panic in kernel dispatch;
//!    here it is rejected before execution).
//!
//! The checker runs automatically in [`crate::session::execute`] and
//! [`Plan::bind`]; [`explain_check`] renders the walk for humans.

use crate::batch::OutField;
use crate::compile::{CheckViolation, ExprProg, Instr, Src};
use crate::expr::{AggExpr, AggFunc, Expr};
use crate::facts::{self, ColFact, FactRange, NodeFacts, PlanFacts};
use crate::plan::{plan_key, DirectKeySpec, Plan};
use crate::session::{Database, ExecOptions};
use crate::PlanError;
use std::sync::OnceLock;
use x100_storage::EnumDict;
use x100_vector::{CmpOp, PrimitiveRegistry, ScalarType, Value, VecShape};

/// What one [`check_plan`] walk verified (also the `--explain-check`
/// data source).
#[derive(Debug, Default)]
pub struct CheckSummary {
    /// Plan nodes visited.
    pub nodes: usize,
    /// Expression programs compiled and verified.
    pub programs: usize,
    /// Primitive instructions validated against the registry.
    pub instrs: usize,
    /// Human-readable walk log, one line per node / program.
    pub report: Vec<String>,
    /// The abstract states and proof sinks the facts analyzer inferred
    /// during the same walk ([`crate::facts`]); the binder consumes
    /// `fetch_proofs` (unchecked gather dispatch) and
    /// `select_verdicts` (constant folding).
    pub facts: PlanFacts,
}

impl CheckSummary {
    /// Render the walk log (the `--explain-check` output body).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for line in &self.report {
            s.push_str(line);
            s.push('\n');
        }
        s.push_str(&format!(
            "plan check OK: {} nodes, {} programs, {} primitive instructions verified\n",
            self.nodes, self.programs, self.instrs
        ));
        s
    }
}

/// The process-wide primitive catalog (built once; signatures are
/// 'static).
fn registry() -> &'static PrimitiveRegistry {
    static REG: OnceLock<PrimitiveRegistry> = OnceLock::new();
    REG.get_or_init(PrimitiveRegistry::builtin)
}

/// Node shape the walker threads: output fields plus per-column enum
/// dictionary metadata, exactly as the binder derives them.
type Shape = (Vec<OutField>, Vec<Option<EnumDict>>);

/// Statically verify `plan` against `db` without executing it.
///
/// Walks the plan tree the way [`Plan::bind`] would, compiles every
/// expression program, and validates primitive typing, selection-vector
/// discipline, enum-decode discipline, and registry membership.
/// Non-check errors the binder would raise anyway (unknown tables or
/// columns, structural problems) surface unwrapped.
pub fn check_plan(
    db: &Database,
    plan: &Plan,
    opts: &ExecOptions,
) -> Result<CheckSummary, PlanError> {
    let mut c = Checker {
        db,
        opts,
        reg: registry(),
        summary: CheckSummary::default(),
    };
    c.walk(plan, "root")?;
    Ok(c.summary)
}

/// Verify a linear primitive program, given as its signature list, for
/// registry membership and selection-vector discipline.
///
/// The discipline: a `select_*` (or any selection-producing) primitive
/// switches the rest of the program to run *under* that selection;
/// dense-only position-dependent primitives (scatters, Bloom inserts,
/// sort permutations, hash-table maintenance — `consumes_sel == false`
/// in the catalog) must never appear there, because they would read a
/// selection vector where a dense vector is required.
pub fn verify_program<'a, I>(sigs: I) -> Result<(), PlanError>
where
    I: IntoIterator<Item = &'a str>,
{
    let reg = registry();
    let mut under_sel = false;
    for (i, sig) in sigs.into_iter().enumerate() {
        let path = format!("program.instr[{i}]");
        let desc = reg.get(sig).ok_or_else(|| PlanError::PlanCheck {
            path: path.clone(),
            violation: CheckViolation::UnknownSignature {
                signature: sig.to_owned(),
            },
        })?;
        if under_sel && !desc.info.consumes_sel {
            return Err(PlanError::PlanCheck {
                path,
                violation: CheckViolation::SelVectorMisuse {
                    signature: sig.to_owned(),
                    detail: "dense-only primitive runs under a selection vector \
                             (a select_* output upstream feeds it positions, \
                             but it requires a dense vector)"
                        .to_owned(),
                },
            });
        }
        if desc.info.produces_sel {
            under_sel = true;
        }
    }
    Ok(())
}

/// Run [`check_plan`] and render the result for humans — the engine of
/// the `--explain-check` CLI flag.
pub fn explain_check(db: &Database, plan: &Plan, opts: &ExecOptions) -> String {
    match check_plan(db, plan, opts) {
        Ok(summary) => summary.render(),
        Err(PlanError::PlanCheck { path, violation }) => {
            let class = match &violation {
                CheckViolation::TypeMismatch { .. } => "type-mismatch",
                CheckViolation::SelVectorMisuse { .. } => "sel-vector-misuse",
                CheckViolation::UndecodedEnumColumn { .. } => "undecoded-enum-column",
                CheckViolation::UnknownSignature { .. } => "unknown-signature",
                CheckViolation::SpillUnsupported { .. } => "spill-unsupported",
                CheckViolation::FactViolation { .. } => "fact-violation",
            };
            format!("plan check FAILED [{class}]\n  at   {path}\n  why  {violation}\n")
        }
        Err(other) => format!("plan check could not run: {other}\n"),
    }
}

/// Run [`check_plan`] and render the per-node abstract-interpretation
/// dump ([`crate::facts`]) — the engine of the `--explain-facts` CLI
/// flag.
pub fn explain_facts(db: &Database, plan: &Plan, opts: &ExecOptions) -> String {
    match check_plan(db, plan, opts) {
        Ok(summary) => summary.facts.render(),
        Err(PlanError::PlanCheck { path, violation }) => {
            format!("facts unavailable: plan check FAILED\n  at   {path}\n  why  {violation}\n")
        }
        Err(other) => format!("facts unavailable: {other}\n"),
    }
}

struct Checker<'a> {
    db: &'a Database,
    opts: &'a ExecOptions,
    reg: &'static PrimitiveRegistry,
    summary: CheckSummary,
}

impl<'a> Checker<'a> {
    /// Compile `e` against `fields`, wrapping the compiler's type errors
    /// as `PlanCheck` at `path` (name-resolution errors pass through
    /// unwrapped, matching the binder).
    fn compile_at(
        &mut self,
        e: &Expr,
        fields: &[OutField],
        path: &str,
    ) -> Result<ExprProg, PlanError> {
        let prog = ExprProg::compile(
            e,
            fields,
            self.opts.vector_size,
            self.opts.compound_primitives,
        )
        .map_err(|err| match err {
            PlanError::TypeMismatch(detail) => PlanError::PlanCheck {
                path: path.to_owned(),
                violation: CheckViolation::TypeMismatch {
                    signature: format!("{e:?}"),
                    detail,
                },
            },
            other => other,
        })?;
        self.summary.programs += 1;
        Ok(prog)
    }

    /// Validate every instruction of a compiled program: registry
    /// membership, operand typing against the registered signature, and
    /// the enum-decode rule.
    fn verify_prog(
        &mut self,
        prog: &ExprProg,
        fields: &[OutField],
        dicts: &[Option<EnumDict>],
        path: &str,
    ) -> Result<(), PlanError> {
        let src_ty = |s: Src| -> ScalarType {
            match s {
                Src::Col(i) => fields[i as usize].ty,
                Src::Reg(i) => prog.reg_types()[i as usize],
            }
        };
        for (i, (instr, sig)) in prog.instr_list().iter().enumerate() {
            self.summary.instrs += 1;
            let ipath = format!("{path}.instr[{i}]");
            let desc = self.reg.get(sig).ok_or_else(|| PlanError::PlanCheck {
                path: ipath.clone(),
                violation: CheckViolation::UnknownSignature {
                    signature: sig.clone(),
                },
            })?;
            let (context, srcs) = col_operands(instr);
            // Positional typing: the instruction's column operands must
            // match the registered signature's column inputs.
            let col_tys: Vec<ScalarType> = desc
                .info
                .inputs
                .iter()
                .filter(|a| a.shape == VecShape::Col)
                .map(|a| a.ty)
                .collect();
            if col_tys.len() == srcs.len() {
                for (want, &s) in col_tys.iter().zip(srcs.iter()) {
                    let got = src_ty(s);
                    if got != *want {
                        return Err(PlanError::PlanCheck {
                            path: ipath,
                            violation: CheckViolation::TypeMismatch {
                                signature: sig.clone(),
                                detail: format!("operand is {got}, primitive expects {want}"),
                            },
                        });
                    }
                }
            }
            // Enum-decode discipline: codes may be referenced, compared,
            // and grouped on — never fed to arithmetic or casts.
            let escapes = matches!(
                instr,
                Instr::ArithCC { .. }
                    | Instr::ArithCV { .. }
                    | Instr::ArithVC { .. }
                    | Instr::Cast { .. }
                    | Instr::FusedSubValMul { .. }
                    | Instr::FusedAddValMul { .. }
            );
            if escapes {
                for &s in &srcs {
                    if let Src::Col(ci) = s {
                        if dicts.get(ci as usize).is_some_and(|d| d.is_some()) {
                            return Err(PlanError::PlanCheck {
                                path: ipath,
                                violation: CheckViolation::UndecodedEnumColumn {
                                    column: fields[ci as usize].name.clone(),
                                    context: context.to_owned(),
                                },
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Mirror the select operator's predicate splitting
    /// ([`crate::ops::SelectOp`]): derive the `select_*` signature chain
    /// a conjunction compiles to and validate each one. Returns the
    /// signature chain (also fed to [`verify_program`]).
    fn check_select(
        &mut self,
        pred: &Expr,
        fields: &[OutField],
        dicts: &[Option<EnumDict>],
        path: &str,
    ) -> Result<Vec<String>, PlanError> {
        let mut sigs = Vec::new();
        self.select_steps(pred, fields, dicts, path, &mut sigs)?;
        for (i, sig) in sigs.iter().enumerate() {
            if !self.reg.contains(sig) {
                return Err(PlanError::PlanCheck {
                    path: format!("{path}.step[{i}]"),
                    violation: CheckViolation::UnknownSignature {
                        signature: sig.clone(),
                    },
                });
            }
        }
        verify_program(sigs.iter().map(|s| s.as_str()))?;
        Ok(sigs)
    }

    fn select_steps(
        &mut self,
        pred: &Expr,
        fields: &[OutField],
        dicts: &[Option<EnumDict>],
        path: &str,
        out: &mut Vec<String>,
    ) -> Result<(), PlanError> {
        let sel_val_supported = |reg: &PrimitiveRegistry, ty: ScalarType| {
            reg.contains(&format!("select_eq_{ty}_col_val"))
        };
        let sel_col_supported = |reg: &PrimitiveRegistry, ty: ScalarType| {
            reg.contains(&format!("select_eq_{ty}_col_col"))
        };
        match pred {
            Expr::And(l, r) => {
                self.select_steps(l, fields, dicts, path, out)?;
                self.select_steps(r, fields, dicts, path, out)
            }
            Expr::Lit(Value::Bool(_)) => Ok(()),
            Expr::Cmp(op, l, r) => {
                let lty = self.compile_at(l, fields, path)?;
                self.verify_prog(&lty, fields, dicts, path)?;
                if lty.result_type() == ScalarType::Str {
                    match (op, r.as_ref()) {
                        (CmpOp::Eq | CmpOp::Ne, Expr::Lit(Value::Str(_))) => {
                            out.push("select_eq_str_col_val".to_owned());
                            Ok(())
                        }
                        _ => Err(PlanError::PlanCheck {
                            path: path.to_owned(),
                            violation: CheckViolation::TypeMismatch {
                                signature: "select_eq_str_col_val".to_owned(),
                                detail: "string predicates support only = / != literal".to_owned(),
                            },
                        }),
                    }
                } else if let Expr::Lit(v) = r.as_ref() {
                    if (lty.result_type().is_integer() && v.scalar_type() == ScalarType::F64)
                        || !sel_val_supported(self.reg, lty.result_type())
                    {
                        // Promoting / unsupported comparison: the
                        // boolean-map fallback path.
                        let prog = self.compile_at(pred, fields, path)?;
                        self.verify_prog(&prog, fields, dicts, path)?;
                        out.push("select_true_bool_col".to_owned());
                        Ok(())
                    } else {
                        out.push(format!(
                            "select_{}_{}_col_val",
                            op.sig_name(),
                            lty.result_type().sig_name()
                        ));
                        Ok(())
                    }
                } else {
                    let rty = self.compile_at(r, fields, path)?;
                    self.verify_prog(&rty, fields, dicts, path)?;
                    if rty.result_type() != lty.result_type()
                        || !sel_col_supported(self.reg, lty.result_type())
                    {
                        let prog = self.compile_at(pred, fields, path)?;
                        self.verify_prog(&prog, fields, dicts, path)?;
                        out.push("select_true_bool_col".to_owned());
                        Ok(())
                    } else {
                        out.push(format!(
                            "select_{}_{}_col_col",
                            op.sig_name(),
                            lty.result_type().sig_name()
                        ));
                        Ok(())
                    }
                }
            }
            other => {
                let prog = self.compile_at(other, fields, path)?;
                if prog.result_type() != ScalarType::Bool {
                    return Err(PlanError::PlanCheck {
                        path: path.to_owned(),
                        violation: CheckViolation::TypeMismatch {
                            signature: "select_true_bool_col".to_owned(),
                            detail: format!(
                                "selection predicate must be boolean, got {}",
                                prog.result_type()
                            ),
                        },
                    });
                }
                self.verify_prog(&prog, fields, dicts, path)?;
                out.push("select_true_bool_col".to_owned());
                Ok(())
            }
        }
    }

    /// Mirror one aggregate's binding ([`AggFunc`] typing rules), verify
    /// its argument program and update signature, and return its output
    /// field plus the abstract fact of the aggregate value (`cf` are the
    /// input column facts, `rows_max` bounds the rows any one group can
    /// absorb).
    fn check_agg(
        &mut self,
        spec: &AggExpr,
        fields: &[OutField],
        dicts: &[Option<EnumDict>],
        cf: &[ColFact],
        rows_max: Option<u64>,
        path: &str,
    ) -> Result<(OutField, ColFact), PlanError> {
        let (sig, out_ty, fact) = match spec.func {
            AggFunc::Count => (
                "aggr_count_u32_col".to_owned(),
                ScalarType::I64,
                facts::agg_fact(AggFunc::Count, None, rows_max),
            ),
            _ => {
                let arg = spec.arg.as_ref().ok_or_else(|| {
                    PlanError::Invalid(format!("aggregate {} needs an argument", spec.name))
                })?;
                let raw = self.compile_at(arg, fields, path)?;
                let want = match (spec.func, raw.result_type()) {
                    (AggFunc::Avg, _) => ScalarType::F64,
                    (_, t) if t.is_integer() => ScalarType::I64,
                    _ => ScalarType::F64,
                };
                let prog = if raw.result_type() == want {
                    raw
                } else {
                    self.compile_at(&Expr::Cast(want, Box::new(arg.clone())), fields, path)?
                };
                self.verify_prog(&prog, fields, dicts, path)?;
                let argf = facts::eval_prog(&prog, cf, self.reg);
                let fname = match spec.func {
                    AggFunc::Sum | AggFunc::Avg => "sum",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                    AggFunc::Count => unreachable!("handled above"),
                };
                let out_ty = match spec.func {
                    AggFunc::Avg => ScalarType::F64,
                    _ => want,
                };
                (
                    format!("aggr_{}_{}_col_u32_col", fname, want.sig_name()),
                    out_ty,
                    facts::agg_fact(spec.func, Some(&argf), rows_max),
                )
            }
        };
        if !self.reg.contains(&sig) {
            return Err(PlanError::PlanCheck {
                path: path.to_owned(),
                violation: CheckViolation::UnknownSignature { signature: sig },
            });
        }
        Ok((OutField::new(spec.name.clone(), out_ty), fact))
    }

    fn note(&mut self, path: &str, what: String) {
        self.summary.nodes += 1;
        self.summary.report.push(format!("{path}: {what}"));
    }

    /// Record `nf` as the inferred facts of `plan`: one
    /// `--explain-facts` line plus the per-node map entry the binder's
    /// proof sinks key into.
    fn put_facts(&mut self, plan: &Plan, path: &str, fields: &[OutField], nf: NodeFacts) {
        self.summary
            .facts
            .lines
            .push(facts::render_line(path, fields, &nf));
        self.summary.facts.nodes.insert(plan_key(plan), nf);
    }

    /// The already-recorded facts of a child node (⊤ of the right width
    /// if the child somehow was not modeled).
    fn child_facts(&self, p: &Plan, width: usize) -> NodeFacts {
        self.summary
            .facts
            .nodes
            .get(&plan_key(p))
            .cloned()
            .unwrap_or_else(|| NodeFacts::top(width))
    }

    /// Facts for a `Select` node: try the constant-fold verdict (binder
    /// sink), then refine the surviving rows' column facts by the
    /// predicate's conjuncts.
    fn select_facts(
        &mut self,
        plan: &Plan,
        input: &Plan,
        pred: &Expr,
        fields: &[OutField],
        path: &str,
    ) {
        let mut nf = self.child_facts(input, fields.len());
        if let Some(v) = facts::pred_verdict(pred, fields, &nf, self.reg) {
            self.summary.facts.select_verdicts.insert(plan_key(plan), v);
            if !v {
                nf.rows_max = Some(0);
            }
        }
        facts::refine_with_pred(pred, fields, &mut nf);
        self.put_facts(plan, path, fields, nf);
    }

    /// When a spill budget is configured, the buffering kernel this
    /// operator leans on must advertise spill capability in the catalog
    /// (`SigInfo::spills`) — otherwise the budget is a promise the
    /// executor cannot keep, and graceful degradation silently becomes
    /// a hard `ResourceExhausted`. Catches a new buffering operator
    /// wired in without spill support.
    fn check_spill_capable(
        &mut self,
        sig: &str,
        operator: &str,
        path: &str,
    ) -> Result<(), PlanError> {
        if self.opts.spill_budget.is_none() {
            return Ok(());
        }
        if !self.reg.get(sig).is_some_and(|d| d.info.spills) {
            return Err(PlanError::PlanCheck {
                path: path.to_owned(),
                violation: CheckViolation::SpillUnsupported {
                    signature: sig.to_owned(),
                    operator: operator.to_owned(),
                },
            });
        }
        Ok(())
    }

    /// Walk one plan node, returning its output shape. Mirrors
    /// [`Plan::bind_inner`]'s field and dictionary derivation without
    /// constructing operators.
    fn walk(&mut self, plan: &Plan, path: &str) -> Result<Shape, PlanError> {
        match plan {
            Plan::Scan {
                table,
                cols,
                code_cols,
                ..
            } => {
                let t = self.db.table(table)?;
                let mut fields = Vec::new();
                let mut dicts = Vec::new();
                let mut col_facts = Vec::new();
                for name in cols {
                    let ci = t
                        .column_index(name)
                        .ok_or_else(|| PlanError::UnknownColumn(name.clone()))?;
                    let sc = t.column(ci);
                    // Checkpoint-compressed columns decode on refill:
                    // the decompress primitive the scan will call must
                    // be cataloged, same rule as the enum fetch below.
                    if let Some(cc) = sc.compressed() {
                        let sig = cc.decode_sig();
                        self.summary.instrs += 1;
                        if !self.reg.contains(sig) {
                            return Err(PlanError::PlanCheck {
                                path: format!("{path}.Scan.col[{name}]"),
                                violation: CheckViolation::UnknownSignature {
                                    signature: sig.to_owned(),
                                },
                            });
                        }
                    }
                    let as_codes = code_cols.contains(name);
                    let ty = match (sc.dict(), as_codes) {
                        (None, _) => sc.field().logical,
                        (Some(_), true) => sc.physical_type(),
                        (Some(dict), false) => {
                            // Auto-decode via Fetch1Join(ENUM): the
                            // gather signature must be cataloged.
                            let sig = format!(
                                "map_fetch_{}_col_{}_col",
                                sc.physical_type().sig_name(),
                                dict.value_type().sig_name()
                            );
                            self.summary.instrs += 1;
                            if !self.reg.contains(&sig) {
                                return Err(PlanError::PlanCheck {
                                    path: format!("{path}.Scan.col[{name}]"),
                                    violation: CheckViolation::UnknownSignature { signature: sig },
                                });
                            }
                            dict.value_type()
                        }
                    };
                    dicts.push(if as_codes { sc.dict().cloned() } else { None });
                    fields.push(OutField::new(name.clone(), ty));
                    col_facts.push(facts::source_col_fact(&t, ci, as_codes));
                }
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max: u64::try_from(t.total_rows()).ok(),
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(path, format!("Scan `{table}` → {} cols", fields.len()));
                Ok((fields, dicts))
            }
            Plan::Select { input, pred } => {
                // Mirror the binder's fusion decision exactly: when the
                // child is a compressed scan and (part of) the predicate
                // compiles to encoded space, the binder emits a fused
                // `CompressedScanSelect` refill instead of Scan→Select.
                // The encoded-space comparison and the selective decode
                // it triggers must both be cataloged primitives.
                if let Plan::Scan {
                    table,
                    cols,
                    code_cols,
                    ..
                } = input.as_ref()
                {
                    if let Some(f) = crate::plan::fuse_scan_select(
                        self.db, table, cols, code_cols, pred, self.opts,
                    ) {
                        let (fields, dicts) = self.walk(input, &format!("{path}.Select.input"))?;
                        let t = self.db.table(table)?;
                        self.summary.instrs += 1;
                        if !self.reg.contains(f.push.sig()) {
                            return Err(PlanError::PlanCheck {
                                path: format!("{path}.Select.pushdown[{}]", f.col),
                                violation: CheckViolation::UnknownSignature {
                                    signature: f.push.sig().to_owned(),
                                },
                            });
                        }
                        // Co-columns materialize lazily: each compressed
                        // column with a positional decode kernel will
                        // call it, so it must be registered too.
                        for name in cols {
                            let ci = t
                                .column_index(name)
                                .ok_or_else(|| PlanError::UnknownColumn(name.clone()))?;
                            if let Some(sig) =
                                t.column(ci).compressed().and_then(|cc| cc.decode_sel_sig())
                            {
                                self.summary.instrs += 1;
                                if !self.reg.contains(sig) {
                                    return Err(PlanError::PlanCheck {
                                        path: format!("{path}.Select.decode_sel[{name}]"),
                                        violation: CheckViolation::UnknownSignature {
                                            signature: sig.to_owned(),
                                        },
                                    });
                                }
                            }
                        }
                        let steps = match &f.residual {
                            None => Vec::new(),
                            Some(res) => {
                                let res = crate::plan::rewrite_enum_literals(res, &fields, &dicts);
                                self.check_select(
                                    &res,
                                    &fields,
                                    &dicts,
                                    &format!("{path}.Select.residual"),
                                )?
                            }
                        };
                        let full = crate::plan::rewrite_enum_literals(pred, &fields, &dicts);
                        self.select_facts(plan, input, &full, &fields, path);
                        self.note(
                            path,
                            format!(
                                "CompressedScanSelect `{}` [{}] residual [{}]",
                                f.col,
                                f.push.sig(),
                                steps.join(", ")
                            ),
                        );
                        return Ok((fields, dicts));
                    }
                }
                let (fields, dicts) = self.walk(input, &format!("{path}.Select.input"))?;
                let pred = crate::plan::rewrite_enum_literals(pred, &fields, &dicts);
                let sigs =
                    self.check_select(&pred, &fields, &dicts, &format!("{path}.Select.pred"))?;
                self.select_facts(plan, input, &pred, &fields, path);
                self.note(path, format!("Select → steps [{}]", sigs.join(", ")));
                Ok((fields, dicts))
            }
            Plan::Project { input, exprs } => {
                let (fields, dicts) = self.walk(input, &format!("{path}.Project.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let mut out_fields = Vec::new();
                let mut out_dicts = Vec::new();
                let mut col_facts = Vec::new();
                for (i, (name, e)) in exprs.iter().enumerate() {
                    let e = crate::plan::rewrite_enum_literals(e, &fields, &dicts);
                    let epath = format!("{path}.Project.expr[{i}]");
                    let prog = self.compile_at(&e, &fields, &epath)?;
                    self.verify_prog(&prog, &fields, &dicts, &epath)?;
                    out_dicts.push(match &e {
                        Expr::Col(c) => fields
                            .iter()
                            .position(|f| &f.name == c)
                            .and_then(|ci| dicts[ci].clone()),
                        _ => None,
                    });
                    col_facts.push(facts::eval_prog(&prog, &in_nf.cols, self.reg));
                    out_fields.push(OutField::new(name.clone(), prog.result_type()));
                }
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max: in_nf.rows_max,
                };
                self.put_facts(plan, path, &out_fields, nf);
                self.note(path, format!("Project → {} exprs", exprs.len()));
                Ok((out_fields, out_dicts))
            }
            Plan::Aggr { input, keys, aggs } => {
                let (fields, dicts) = self.walk(input, &format!("{path}.Aggr.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                // Mirror the binder's physical choice: direct iff every
                // key is a bare reference to a dictionary code column.
                let direct: Option<Vec<DirectKeySpec>> = keys
                    .iter()
                    .map(|(name, e)| match e {
                        Expr::Col(c) => {
                            let i = fields.iter().position(|f| &f.name == c)?;
                            dicts[i].as_ref().map(|_| DirectKeySpec {
                                name: name.clone(),
                                col: c.clone(),
                            })
                        }
                        _ => None,
                    })
                    .collect();
                match direct {
                    Some(dkeys) if !dkeys.is_empty() => {
                        self.check_direct(plan, &fields, &dicts, &in_nf, &dkeys, aggs, path)
                    }
                    _ => {
                        let mut out_fields = Vec::new();
                        let mut col_facts = Vec::new();
                        // Group count ≤ input rows, and ≤ the product of
                        // the keys' distinct bounds when all are known.
                        let mut key_distinct = Some(1u64);
                        for (i, (name, e)) in keys.iter().enumerate() {
                            let kpath = format!("{path}.Aggr.key[{i}]");
                            let prog = self.compile_at(e, &fields, &kpath)?;
                            self.verify_prog(&prog, &fields, &dicts, &kpath)?;
                            let key_dict = match e {
                                Expr::Col(c)
                                    if matches!(
                                        prog.result_type(),
                                        ScalarType::U8 | ScalarType::U16
                                    ) =>
                                {
                                    fields
                                        .iter()
                                        .position(|f| &f.name == c)
                                        .and_then(|ci| dicts[ci].as_ref())
                                }
                                _ => None,
                            };
                            let kf = match key_dict {
                                // Decoded at emission: only the distinct
                                // bound survives into value space.
                                Some(d) => ColFact {
                                    distinct_max: Some(d.cardinality() as u64),
                                    ..ColFact::top()
                                },
                                None => {
                                    let mut kf = facts::eval_prog(&prog, &in_nf.cols, self.reg);
                                    kf.sorted = false; // hash order is arbitrary
                                    kf
                                }
                            };
                            key_distinct = key_distinct
                                .and_then(|p| kf.distinct_max.and_then(|d| p.checked_mul(d)));
                            col_facts.push(kf);
                            let out_ty = key_dict.map_or(prog.result_type(), |d| d.value_type());
                            out_fields.push(OutField::new(name.clone(), out_ty));
                        }
                        for (i, spec) in aggs.iter().enumerate() {
                            let apath = format!("{path}.Aggr.agg[{i}]");
                            let (of, af) = self.check_agg(
                                spec,
                                &fields,
                                &dicts,
                                &in_nf.cols,
                                in_nf.rows_max,
                                &apath,
                            )?;
                            out_fields.push(of);
                            col_facts.push(af);
                        }
                        self.check_spill_capable(
                            "aggr_hashtable_maintain",
                            "HashAggr",
                            &format!("{path}.Aggr"),
                        )?;
                        let rows_max = match (in_nf.rows_max, key_distinct) {
                            (Some(r), Some(k)) => Some(r.min(k)),
                            (r, k) => r.or(k),
                        };
                        let nf = NodeFacts {
                            cols: col_facts,
                            rows_max,
                        };
                        self.put_facts(plan, path, &out_fields, nf);
                        self.note(
                            path,
                            format!("HashAggr → {} keys, {} aggs", keys.len(), aggs.len()),
                        );
                        let n = out_fields.len();
                        Ok((out_fields, vec![None; n]))
                    }
                }
            }
            Plan::DirectAggr { input, keys, aggs } => {
                let (fields, dicts) = self.walk(input, &format!("{path}.DirectAggr.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                self.check_direct(plan, &fields, &dicts, &in_nf, keys, aggs, path)
            }
            Plan::OrdAggr { input, keys, aggs } => {
                let (fields, dicts) = self.walk(input, &format!("{path}.OrdAggr.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let mut out_fields = Vec::new();
                let mut col_facts = Vec::new();
                for (i, (name, e)) in keys.iter().enumerate() {
                    let kpath = format!("{path}.OrdAggr.key[{i}]");
                    let prog = self.compile_at(e, &fields, &kpath)?;
                    self.verify_prog(&prog, &fields, &dicts, &kpath)?;
                    // Ordered aggregation emits groups in input key
                    // order, so a sorted input key stays sorted.
                    col_facts.push(facts::eval_prog(&prog, &in_nf.cols, self.reg));
                    out_fields.push(OutField::new(name.clone(), prog.result_type()));
                }
                for (i, spec) in aggs.iter().enumerate() {
                    let apath = format!("{path}.OrdAggr.agg[{i}]");
                    let (of, af) =
                        self.check_agg(spec, &fields, &dicts, &in_nf.cols, in_nf.rows_max, &apath)?;
                    out_fields.push(of);
                    col_facts.push(af);
                }
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max: in_nf.rows_max,
                };
                self.put_facts(plan, path, &out_fields, nf);
                self.note(
                    path,
                    format!("OrdAggr → {} keys, {} aggs", keys.len(), aggs.len()),
                );
                let n = out_fields.len();
                Ok((out_fields, vec![None; n]))
            }
            Plan::Fetch1Join {
                input,
                table,
                rowid,
                fetch,
                fetch_codes,
            } => {
                let (mut fields, mut dicts) =
                    self.walk(input, &format!("{path}.Fetch1Join.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let t = self.db.table(table)?;
                let rpath = format!("{path}.Fetch1Join.rowid");
                let raw = self.compile_at(rowid, &fields, &rpath)?;
                // The rowid may be a code column being decoded — that IS
                // the sanctioned decode, so the enum-escape rule does not
                // apply to its (widening) program.
                match raw.result_type() {
                    ScalarType::U32 | ScalarType::U8 | ScalarType::U16 => {}
                    other => {
                        return Err(PlanError::PlanCheck {
                            path: rpath,
                            violation: CheckViolation::TypeMismatch {
                                signature: "map_fetch_u32_col".to_owned(),
                                detail: format!(
                                "Fetch1Join rowid expression must be u32 (join index), got {other}"
                            ),
                            },
                        })
                    }
                }
                // Fetch-bounds proof: the `_unchecked` gather twins read
                // only the contiguous fragment arrays, so the proof
                // obligation is `#rowId ⊆ [0, fragment_rows)` (delta rows
                // would be out of bounds for the raw-slice kernels). The
                // proof is only attempted for true u32 join indexes; enum
                // code rowids decode against the dictionary instead.
                let rid_range = if raw.result_type() == ScalarType::U32 {
                    facts::eval_prog(&raw, &in_nf.cols, self.reg)
                        .range
                        .and_then(|r| r.as_int())
                } else {
                    None
                };
                let frag = t.fragment_rows() as u64;
                let total = t.total_rows() as u64;
                let proved = rid_range
                    .is_some_and(|(lo, hi)| lo >= 0 && u64::try_from(hi).is_ok_and(|h| h < frag));
                self.summary
                    .facts
                    .fetch_proofs
                    .insert(plan_key(plan), proved);
                if self.opts.enforce_facts && in_nf.rows_max != Some(0) {
                    if let Some((lo, _)) = rid_range {
                        if u64::try_from(lo).is_ok_and(|l| l >= total) {
                            return Err(PlanError::PlanCheck {
                                path: rpath,
                                violation: CheckViolation::FactViolation {
                                    detail: format!(
                                        "every #rowId is proven >= {total}, but table \
                                         `{table}` has only {total} rows: the fetch is \
                                         certainly out of bounds"
                                    ),
                                },
                            });
                        }
                    }
                }
                let mut col_facts = in_nf.cols.clone();
                for (i, (src, alias)) in fetch.iter().enumerate() {
                    let ci = t
                        .column_index(src)
                        .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", t.name(), src)))?;
                    let ty = t.column(ci).field().logical;
                    let sig = format!("map_fetch_u32_col_{}_col", ty.sig_name());
                    self.summary.instrs += 1;
                    if !self.reg.contains(&sig) {
                        return Err(PlanError::PlanCheck {
                            path: format!("{path}.Fetch1Join.fetch[{i}]"),
                            violation: CheckViolation::UnknownSignature { signature: sig },
                        });
                    }
                    fields.push(OutField::new(alias.clone(), ty));
                    dicts.push(None);
                    let mut f = facts::source_col_fact(&t, ci, false);
                    f.sorted = false; // gather order follows the rowids
                    col_facts.push(f);
                }
                for (i, (src, alias)) in fetch_codes.iter().enumerate() {
                    let ci = t
                        .column_index(src)
                        .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", t.name(), src)))?;
                    let sc = t.column(ci);
                    let Some(dict) = sc.dict() else {
                        return Err(PlanError::PlanCheck {
                            path: format!("{path}.Fetch1Join.fetch_codes[{i}]"),
                            violation: CheckViolation::TypeMismatch {
                                signature: format!("map_fetch_u32_col_{}_col", src),
                                detail: format!(
                                    "code fetch of `{src}` requires an enum dictionary column"
                                ),
                            },
                        });
                    };
                    fields.push(OutField::new(alias.clone(), sc.physical_type()));
                    dicts.push(Some(dict.clone()));
                    let mut f = facts::source_col_fact(&t, ci, true);
                    f.sorted = false;
                    col_facts.push(f);
                }
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max: in_nf.rows_max,
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(
                    path,
                    format!(
                        "Fetch1Join `{table}` → +{} fetched, +{} code cols",
                        fetch.len(),
                        fetch_codes.len()
                    ),
                );
                Ok((fields, dicts))
            }
            Plan::FetchNJoin {
                input,
                table,
                lo,
                cnt,
                fetch,
            } => {
                let (mut fields, mut dicts) =
                    self.walk(input, &format!("{path}.FetchNJoin.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let t = self.db.table(table)?;
                let mut range_facts = Vec::new();
                for (which, e) in [("lo", lo), ("cnt", cnt)] {
                    let epath = format!("{path}.FetchNJoin.{which}");
                    let prog = self.compile_at(e, &fields, &epath)?;
                    self.verify_prog(&prog, &fields, &dicts, &epath)?;
                    if prog.result_type() != ScalarType::U32 {
                        return Err(PlanError::PlanCheck {
                            path: epath,
                            violation: CheckViolation::TypeMismatch {
                                signature: "map_fetch_u32_col".to_owned(),
                                detail: format!(
                                    "FetchNJoin range expressions must be u32, got {}",
                                    prog.result_type()
                                ),
                            },
                        });
                    }
                    range_facts.push(
                        facts::eval_prog(&prog, &in_nf.cols, self.reg)
                            .range
                            .and_then(|r| r.as_int()),
                    );
                }
                // Fetch-bounds proof: every gathered position is
                // `lo + k, k < cnt`, so the obligation is
                // `max(lo) + max(cnt) <= fragment_rows`.
                let frag = t.fragment_rows() as u64;
                let (lo_r, cnt_r) = (range_facts[0], range_facts[1]);
                let proved = match (lo_r, cnt_r) {
                    (Some((llo, lhi)), Some((_, chi))) if llo >= 0 => u64::try_from(lhi)
                        .ok()
                        .zip(u64::try_from(chi).ok())
                        .and_then(|(a, b)| a.checked_add(b))
                        .is_some_and(|end| end <= frag),
                    _ => false,
                };
                self.summary
                    .facts
                    .fetch_proofs
                    .insert(plan_key(plan), proved);
                let rows_max = in_nf.rows_max.and_then(|r| {
                    let chi = u64::try_from(cnt_r?.1).ok()?;
                    r.checked_mul(chi)
                });
                let mut col_facts = in_nf.cols.clone();
                for (src, alias) in fetch {
                    let ci = t
                        .column_index(src)
                        .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", t.name(), src)))?;
                    fields.push(OutField::new(alias.clone(), t.column(ci).field().logical));
                    dicts.push(None);
                    let mut f = facts::source_col_fact(&t, ci, false);
                    f.sorted = false;
                    col_facts.push(f);
                }
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max,
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(
                    path,
                    format!("FetchNJoin `{table}` → +{} cols", fetch.len()),
                );
                Ok((fields, dicts))
            }
            Plan::CartProd {
                input,
                table,
                fetch,
            } => {
                let (mut fields, mut dicts) =
                    self.walk(input, &format!("{path}.CartProd.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let t = self.db.table(table)?;
                let mut col_facts = in_nf.cols.clone();
                for (src, alias) in fetch {
                    let ci = t
                        .column_index(src)
                        .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", t.name(), src)))?;
                    fields.push(OutField::new(alias.clone(), t.column(ci).field().logical));
                    dicts.push(None);
                    let mut f = facts::source_col_fact(&t, ci, false);
                    f.sorted = false;
                    col_facts.push(f);
                }
                let rows_max = in_nf
                    .rows_max
                    .and_then(|r| r.checked_mul(t.total_rows() as u64));
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max,
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(path, format!("CartProd `{table}` → +{} cols", fetch.len()));
                Ok((fields, dicts))
            }
            Plan::Join {
                input,
                table,
                pred,
                fetch,
            } => {
                let (mut fields, mut dicts) = self.walk(input, &format!("{path}.Join.input"))?;
                let in_nf = self.child_facts(input, fields.len());
                let t = self.db.table(table)?;
                let mut col_facts = in_nf.cols.clone();
                for (src, alias) in fetch {
                    let ci = t
                        .column_index(src)
                        .ok_or_else(|| PlanError::UnknownColumn(format!("{}.{}", t.name(), src)))?;
                    fields.push(OutField::new(alias.clone(), t.column(ci).field().logical));
                    dicts.push(None);
                    let mut f = facts::source_col_fact(&t, ci, false);
                    f.sorted = false;
                    col_facts.push(f);
                }
                let pred = crate::plan::rewrite_enum_literals(pred, &fields, &dicts);
                self.check_select(&pred, &fields, &dicts, &format!("{path}.Join.pred"))?;
                let rows_max = in_nf
                    .rows_max
                    .and_then(|r| r.checked_mul(t.total_rows() as u64));
                let mut nf = NodeFacts {
                    cols: col_facts,
                    rows_max,
                };
                facts::refine_with_pred(&pred, &fields, &mut nf);
                self.put_facts(plan, path, &fields, nf);
                self.note(path, format!("Join `{table}` → +{} cols", fetch.len()));
                Ok((fields, dicts))
            }
            Plan::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                payload,
                join_type,
            } => {
                let (bfields, bdicts) = self.walk(build, &format!("{path}.HashJoin.build"))?;
                let (mut fields, mut dicts) =
                    self.walk(probe, &format!("{path}.HashJoin.probe"))?;
                let build_nf = self.child_facts(build, bfields.len());
                let probe_nf = self.child_facts(probe, fields.len());
                let mut btys = Vec::new();
                for (i, e) in build_keys.iter().enumerate() {
                    let kpath = format!("{path}.HashJoin.build_key[{i}]");
                    let prog = self.compile_at(e, &bfields, &kpath)?;
                    self.verify_prog(&prog, &bfields, &bdicts, &kpath)?;
                    btys.push(prog.result_type());
                }
                for (i, e) in probe_keys.iter().enumerate() {
                    let kpath = format!("{path}.HashJoin.probe_key[{i}]");
                    let prog = self.compile_at(e, &fields, &kpath)?;
                    self.verify_prog(&prog, &fields, &dicts, &kpath)?;
                    if let Some(&bty) = btys.get(i) {
                        if prog.result_type() != bty {
                            return Err(PlanError::PlanCheck {
                                path: kpath,
                                violation: CheckViolation::TypeMismatch {
                                    signature: format!("map_hash_{}_col", bty.sig_name()),
                                    detail: format!(
                                        "join key {i} type mismatch: build {}, probe {}",
                                        bty,
                                        prog.result_type()
                                    ),
                                },
                            });
                        }
                    }
                }
                let mut col_facts: Vec<ColFact> = probe_nf
                    .cols
                    .iter()
                    .cloned()
                    .map(|mut f| {
                        f.sorted = false; // match order scrambles rows
                        f
                    })
                    .collect();
                for (src, alias) in payload {
                    let ci = bfields
                        .iter()
                        .position(|f| &f.name == src)
                        .ok_or_else(|| PlanError::UnknownColumn(src.clone()))?;
                    fields.push(OutField::new(alias.clone(), bfields[ci].ty));
                    dicts.push(None);
                    // LeftOuter fills unmatched rows with default values
                    // (0 / ""), which the build-side range need not
                    // contain — widen to ⊤ there.
                    col_facts.push(match join_type {
                        crate::ops::JoinType::LeftOuter => ColFact::top(),
                        _ => {
                            let mut f = build_nf.cols.get(ci).cloned().unwrap_or_else(ColFact::top);
                            f.sorted = false;
                            f
                        }
                    });
                }
                let rows_max = match join_type {
                    // Semi/anti emit each probe row at most once;
                    // LeftOuter at least once per probe row, at most
                    // once per match (plus the default row).
                    crate::ops::JoinType::LeftSemi | crate::ops::JoinType::LeftAnti => {
                        probe_nf.rows_max
                    }
                    crate::ops::JoinType::Inner => probe_nf
                        .rows_max
                        .and_then(|p| build_nf.rows_max.and_then(|b| p.checked_mul(b))),
                    crate::ops::JoinType::LeftOuter => probe_nf
                        .rows_max
                        .and_then(|p| build_nf.rows_max.and_then(|b| p.checked_mul(b.max(1)))),
                };
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max,
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(
                    path,
                    format!(
                        "HashJoin → {} keys, +{} payload cols",
                        build_keys.len(),
                        payload.len()
                    ),
                );
                Ok((fields, dicts))
            }
            Plan::TopN { input, keys, .. } | Plan::Order { input, keys } => {
                let kind = if matches!(plan, Plan::TopN { .. }) {
                    "TopN"
                } else {
                    "Order"
                };
                let (fields, dicts) = self.walk(input, &format!("{path}.{kind}.input"))?;
                for k in keys {
                    if !fields.iter().any(|f| f.name == k.col) {
                        return Err(PlanError::UnknownColumn(k.col.clone()));
                    }
                }
                // The permutation sort is dense-only; it runs over the
                // operator's own compacted buffer, never under a
                // selection.
                self.summary.instrs += 1;
                self.check_spill_capable("sort_permutation", kind, &format!("{path}.{kind}"))?;
                let mut nf = self.child_facts(input, fields.len());
                for f in &mut nf.cols {
                    // `sorted` means sorted in *scan* order, which the
                    // permutation destroys (the sort key's own order is
                    // not tracked — keys may be descending).
                    f.sorted = false;
                }
                if let Plan::TopN { limit, .. } = plan {
                    let lim = *limit as u64;
                    nf.rows_max = Some(nf.rows_max.map_or(lim, |r| r.min(lim)));
                }
                self.put_facts(plan, path, &fields, nf);
                self.note(path, format!("{kind} → {} sort keys", keys.len()));
                Ok((fields, dicts))
            }
            Plan::Array { dims } => {
                let fields: Vec<OutField> = (0..dims.len())
                    .map(|i| OutField::new(format!("d{i}"), ScalarType::I64))
                    .collect();
                let n = fields.len();
                let col_facts = dims
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| ColFact {
                        range: (d > 0).then_some(FactRange::Int(0, d - 1)),
                        distinct_max: u64::try_from(d).ok(),
                        // Row-major enumeration: the outermost dimension
                        // is non-decreasing.
                        sorted: i == 0,
                        ..ColFact::top()
                    })
                    .collect();
                let rows_max = dims.iter().try_fold(1u64, |acc, &d| {
                    u64::try_from(d).ok().and_then(|d| acc.checked_mul(d))
                });
                let nf = NodeFacts {
                    cols: col_facts,
                    rows_max,
                };
                self.put_facts(plan, path, &fields, nf);
                self.note(path, format!("Array → {n} dims"));
                Ok((fields, vec![None; n]))
            }
        }
    }

    /// Mirror `bind_direct`: keys must be code columns (dictionary or
    /// raw u8/u16).
    #[allow(clippy::too_many_arguments)]
    fn check_direct(
        &mut self,
        plan: &Plan,
        fields: &[OutField],
        dicts: &[Option<EnumDict>],
        in_nf: &NodeFacts,
        keys: &[DirectKeySpec],
        aggs: &[AggExpr],
        path: &str,
    ) -> Result<Shape, PlanError> {
        let mut out_fields = Vec::new();
        let mut col_facts = Vec::new();
        // The direct-group table has one slot per code combination, so
        // the group count is bounded by the product of the key domains.
        let mut groups = Some(1u64);
        for k in keys {
            let i = fields
                .iter()
                .position(|f| f.name == k.col)
                .ok_or_else(|| PlanError::UnknownColumn(k.col.clone()))?;
            match (&dicts[i], fields[i].ty) {
                (Some(d), _) => {
                    out_fields.push(OutField::new(k.name.clone(), d.value_type()));
                    let card = d.cardinality() as u64;
                    groups = groups.and_then(|g| g.checked_mul(card));
                    col_facts.push(ColFact {
                        distinct_max: Some(card),
                        ..ColFact::top()
                    });
                }
                (None, ScalarType::U8 | ScalarType::U16) => {
                    out_fields.push(OutField::new(k.name.clone(), fields[i].ty));
                    let card = if fields[i].ty == ScalarType::U8 {
                        1u64 << 8
                    } else {
                        1u64 << 16
                    };
                    groups = groups.and_then(|g| g.checked_mul(card));
                    let mut kf = in_nf.cols.get(i).cloned().unwrap_or_else(ColFact::top);
                    kf.sorted = false;
                    col_facts.push(kf);
                }
                (None, ty) => {
                    return Err(PlanError::PlanCheck {
                        path: format!("{path}.DirectAggr.key[{}]", k.col),
                        violation: CheckViolation::TypeMismatch {
                            signature: "map_directgrp_u8_col".to_owned(),
                            detail: format!(
                                "direct aggregation key `{}` is {ty}, not a code column",
                                k.col
                            ),
                        },
                    })
                }
            }
        }
        for (i, spec) in aggs.iter().enumerate() {
            let apath = format!("{path}.DirectAggr.agg[{i}]");
            let (of, af) =
                self.check_agg(spec, fields, dicts, &in_nf.cols, in_nf.rows_max, &apath)?;
            out_fields.push(of);
            col_facts.push(af);
        }
        let rows_max = match (in_nf.rows_max, groups) {
            (Some(r), Some(g)) => Some(r.min(g)),
            (r, g) => r.or(g),
        };
        let nf = NodeFacts {
            cols: col_facts,
            rows_max,
        };
        self.put_facts(plan, path, &out_fields, nf);
        self.note(
            path,
            format!("DirectAggr → {} keys, {} aggs", keys.len(), aggs.len()),
        );
        let n = out_fields.len();
        Ok((out_fields, vec![None; n]))
    }
}

/// The batch-column operands of one instruction, with the context label
/// the enum-escape rule reports.
fn col_operands(instr: &Instr) -> (&'static str, Vec<Src>) {
    match instr {
        Instr::ArithCC { l, r, .. } => ("arithmetic operand", vec![*l, *r]),
        Instr::ArithCV { l, .. } => ("arithmetic operand", vec![*l]),
        Instr::ArithVC { r, .. } => ("arithmetic operand", vec![*r]),
        Instr::CmpCC { l, r, .. } => ("comparison operand", vec![*l, *r]),
        Instr::CmpCV { l, .. } => ("comparison operand", vec![*l]),
        Instr::StrEqCV { l, .. } => ("string comparison operand", vec![*l]),
        Instr::And { l, r, .. } | Instr::Or { l, r, .. } => ("boolean operand", vec![*l, *r]),
        Instr::Not { s, .. } => ("boolean operand", vec![*s]),
        Instr::Cast { s, .. } => ("cast operand", vec![*s]),
        Instr::Fill { .. } => ("constant", Vec::new()),
        Instr::FusedSubValMul { a, b, .. } | Instr::FusedAddValMul { a, b, .. } => {
            ("fused arithmetic operand", vec![*a, *b])
        }
        Instr::YearOf { s, .. } => ("year() operand", vec![*s]),
        Instr::StrContainsCV { s, .. } => ("contains() operand", vec![*s]),
    }
}
