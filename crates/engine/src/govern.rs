//! Per-query resource governor: memory budgets, cancellation,
//! deadlines, and fault-injection state.
//!
//! One [`QueryContext`] is created per `execute()` call and shared
//! (`Arc`) by every operator the plan binds — including all morsel
//! workers of a parallel run. It provides:
//!
//! * **Memory accounting** — stateful operators (hash-join build,
//!   aggregation hash tables, Order/TopN buffers) register a
//!   [`MemTracker`] and grow their charge as their footprint grows.
//!   Exceeding [`QueryContext::mem_budget`] aborts the query with a
//!   typed [`PlanError::ResourceExhausted`] instead of OOM-ing, and
//!   cancels sibling workers.
//! * **Cancellation & deadlines** — vectorized operators call
//!   [`QueryContext::check`] once per vector; the check is a couple of
//!   atomic loads, amortized over ~1k tuples (the same trick that makes
//!   vectorized interpretation cheap makes governance cheap).
//!   [`CancelToken`] lets a caller kill a query from another thread.
//! * **Fault injection** — carries the per-query
//!   [`x100_storage::FaultState`] consulted by chunk reads, plus a
//!   deliberate panic probe used to exercise worker-panic containment.
//!
//! Counters are published into the profiler at the end of execution:
//! `gov_mem_peak`, `gov_cancel_checks`, `io_retries`,
//! `io_faults_injected`.

// Under `--cfg loom` the governor's atomics are the loom shim's, so the
// model in `tests/loom_govern.rs` exercises this exact code with
// schedule points injected at every atomic operation.
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use x100_storage::{FaultPlan, FaultState};

use crate::compile::PlanError;
use crate::profile::Profiler;

/// The one bounded-backoff retry loop every `FaultSite` shares — chunk
/// reads, spill IO, checkpoint writes, and the durable store's
/// manifest/chunk-file steps all retry through this helper (it lives in
/// the storage crate; re-exported here because the governor owns the
/// retry policy).
pub use x100_storage::retry_with_backoff;

/// A cloneable cancellation token: cancel a running query from any
/// thread. Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trigger cancellation: the query errors with
    /// [`PlanError::Cancelled`] at its next per-vector check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the token has been triggered.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Shared per-query execution context (see module docs).
#[derive(Debug)]
pub struct QueryContext {
    mem_budget: Option<usize>,
    mem_used: AtomicUsize,
    mem_peak: AtomicUsize,
    /// Disk budget for spill runs; `None` disables spilling entirely
    /// (budget overflow then aborts as before the spill subsystem).
    spill_budget: Option<usize>,
    spill_used: AtomicUsize,
    spill_peak: AtomicUsize,
    /// Lazily created spill-run registry + temp-dir owner: no file or
    /// directory is touched until the first operator actually spills.
    spill: std::sync::Mutex<Option<Arc<crate::spill::SpillManager>>>,
    deadline: Option<Instant>,
    cancel: CancelToken,
    cancel_checks: AtomicU64,
    fault: Option<FaultState>,
    panic_probe: Option<u64>,
    panic_fired: AtomicBool,
    /// Facts the bind-time analyzer proved for this query's plan
    /// ([`crate::facts::PlanFacts`]), set once between `check_plan` and
    /// binding. Binder sinks (unchecked fetch dispatch, selection
    /// folding) read it; unset means no proofs (e.g. a bare
    /// `bind_governed` without a prior check) and the binder stays on
    /// the checked paths.
    plan_facts: std::sync::OnceLock<crate::facts::PlanFacts>,
}

impl QueryContext {
    /// Build a context from the governor knobs. `timeout` is converted
    /// to an absolute deadline now, i.e. at query start.
    pub fn new(
        mem_budget: Option<usize>,
        spill_budget: Option<usize>,
        timeout: Option<Duration>,
        cancel: Option<CancelToken>,
        fault_plan: Option<FaultPlan>,
        panic_probe: Option<u64>,
    ) -> Self {
        QueryContext {
            mem_budget,
            mem_used: AtomicUsize::new(0),
            mem_peak: AtomicUsize::new(0),
            spill_budget,
            spill_used: AtomicUsize::new(0),
            spill_peak: AtomicUsize::new(0),
            spill: std::sync::Mutex::new(None),
            deadline: timeout.map(|t| Instant::now() + t),
            cancel: cancel.unwrap_or_default(),
            cancel_checks: AtomicU64::new(0),
            fault: fault_plan.map(FaultState::new),
            panic_probe,
            panic_fired: AtomicBool::new(false),
            plan_facts: std::sync::OnceLock::new(),
        }
    }

    /// Attach the checker's plan facts (first caller wins; later calls
    /// are ignored, keeping the proofs consistent with the checked
    /// plan).
    pub fn provide_plan_facts(&self, facts: crate::facts::PlanFacts) {
        let _ = self.plan_facts.set(facts);
    }

    /// The plan facts attached by [`QueryContext::provide_plan_facts`],
    /// if any.
    pub fn plan_facts(&self) -> Option<&crate::facts::PlanFacts> {
        self.plan_facts.get()
    }

    /// A context with no budget, no deadline, and no faults — used by
    /// direct `Plan::bind` callers that drive operators by hand.
    pub fn unbounded() -> Arc<Self> {
        Arc::new(Self::new(None, None, None, None, None, None))
    }

    /// The query's memory budget in bytes, if any.
    pub fn mem_budget(&self) -> Option<usize> {
        self.mem_budget
    }

    /// The query's spill (disk) budget in bytes, if any. `Some` is what
    /// arms graceful degradation: operators whose [`MemTracker`] probe
    /// fails spill runs to disk instead of aborting.
    pub fn spill_budget(&self) -> Option<usize> {
        self.spill_budget
    }

    /// High-water mark of spilled disk bytes.
    pub fn spill_peak(&self) -> usize {
        self.spill_peak.load(Ordering::Relaxed)
    }

    /// The query-wide spill manager, creating its temp directory on
    /// first use. Errors are typed as spill-write I/O failures.
    pub fn spill_manager(&self) -> Result<Arc<crate::spill::SpillManager>, PlanError> {
        let mut guard = self.spill.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = guard.as_ref() {
            return Ok(Arc::clone(m));
        }
        let m = Arc::new(crate::spill::SpillManager::create()?);
        *guard = Some(Arc::clone(&m));
        Ok(m)
    }

    /// The spill manager if any operator has spilled yet.
    pub fn spill_manager_if_created(&self) -> Option<Arc<crate::spill::SpillManager>> {
        self.spill
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(Arc::clone)
    }

    /// Charge `bytes` of spilled disk space. Overflowing the spill
    /// budget is the end of graceful degradation: *both* budgets are
    /// gone, so the query cancels and aborts with
    /// [`PlanError::ResourceExhausted`] like a memory overflow.
    pub fn charge_spill(&self, operator: &str, bytes: usize) -> Result<(), PlanError> {
        let total = self.spill_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.spill_peak.fetch_max(total, Ordering::Relaxed);
        if let Some(budget) = self.spill_budget {
            if total > budget {
                self.spill_used.fetch_sub(bytes, Ordering::Relaxed);
                self.cancel.cancel();
                return Err(PlanError::ResourceExhausted {
                    operator: format!("{operator} (spill budget)"),
                    requested: total,
                    budget,
                });
            }
        }
        Ok(())
    }

    /// Return spilled bytes to the disk budget (run files deleted).
    pub fn release_spill(&self, bytes: usize) {
        self.spill_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// High-water mark of governed memory, in bytes.
    pub fn mem_peak(&self) -> usize {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// Per-query fault-injection state for chunk reads, if configured.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Cancel the query (also used internally: the first fatal error
    /// cancels so sibling morsel workers unwind at their next check).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The cancellation/deadline checkpoint, called once per vector.
    /// Cost when idle: one atomic increment + one atomic load (the
    /// deadline clock is only read when a deadline exists).
    pub fn check(&self) -> Result<(), PlanError> {
        let checks = self.cancel_checks.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(n) = self.panic_probe {
            if checks > n && !self.panic_fired.swap(true, Ordering::SeqCst) {
                panic!("deliberate panic probe (ExecOptions::with_panic_probe)");
            }
        }
        if self.cancel.is_cancelled() {
            return Err(PlanError::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.cancel.cancel();
                return Err(PlanError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Charge `bytes` against the budget; on overflow the charge is
    /// rolled back, siblings are cancelled, and a typed error returns.
    fn charge(&self, operator: &str, bytes: usize) -> Result<(), PlanError> {
        let total = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.mem_peak.fetch_max(total, Ordering::Relaxed);
        if let Some(budget) = self.mem_budget {
            if total > budget {
                self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
                self.cancel.cancel();
                return Err(PlanError::ResourceExhausted {
                    operator: operator.to_string(),
                    requested: total,
                    budget,
                });
            }
        }
        Ok(())
    }

    /// Probe variant of [`QueryContext::charge`]: a would-overflow is
    /// rolled back and reported as `false` *without* cancelling the
    /// query — the caller degrades (spills to disk) instead of dying.
    fn try_charge(&self, bytes: usize) -> bool {
        let total = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.mem_peak.fetch_max(total, Ordering::Relaxed);
        if let Some(budget) = self.mem_budget {
            if total > budget {
                self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    fn release(&self, bytes: usize) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Fold the governor counters into a profiler (end of execution).
    pub fn publish(&self, prof: &mut Profiler) {
        prof.max_counter("gov_mem_peak", self.mem_peak() as u64);
        prof.add_counter(
            "gov_cancel_checks",
            self.cancel_checks.load(Ordering::Relaxed),
        );
        if let Some(f) = &self.fault {
            prof.add_counter("io_retries", f.retries());
            prof.add_counter("io_faults_injected", f.injected());
        }
        if let Some(m) = self.spill_manager_if_created() {
            m.publish(prof);
            prof.max_counter("gov_spill_peak", self.spill_peak() as u64);
        }
    }
}

/// Best-effort human-readable cause of a caught worker panic.
pub(crate) fn panic_cause(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One operator's handle on the query's memory budget. The operator
/// calls [`MemTracker::ensure`] with its current total footprint as it
/// grows; the tracker charges only the delta and releases everything
/// when dropped (or explicitly on `reset`).
#[derive(Debug)]
pub struct MemTracker {
    ctx: Arc<QueryContext>,
    operator: &'static str,
    charged: usize,
}

impl MemTracker {
    /// A tracker charging as `operator` against `ctx`.
    pub fn new(ctx: Arc<QueryContext>, operator: &'static str) -> Self {
        MemTracker {
            ctx,
            operator,
            charged: 0,
        }
    }

    /// Grow the charge to `total` bytes. No-op if already at or above.
    pub fn ensure(&mut self, total: usize) -> Result<(), PlanError> {
        if total > self.charged {
            self.ctx.charge(self.operator, total - self.charged)?;
            self.charged = total;
        }
        Ok(())
    }

    /// Probe-grow to `total` bytes: like [`MemTracker::ensure`], except
    /// a budget overflow rolls the delta back and returns `false`
    /// instead of cancelling the query — the spill paths use this to
    /// detect pressure and degrade, so a probe must never kill the
    /// query the way a hard [`MemTracker::ensure`] overflow does.
    pub fn try_ensure(&mut self, total: usize) -> bool {
        if total <= self.charged {
            return true;
        }
        if self.ctx.try_charge(total - self.charged) {
            self.charged = total;
            true
        } else {
            false
        }
    }

    /// The context this tracker charges against.
    pub fn context(&self) -> &Arc<QueryContext> {
        &self.ctx
    }

    /// Bytes currently charged by this tracker.
    pub fn charged(&self) -> usize {
        self.charged
    }

    /// Return the full charge to the budget (e.g. on operator reset).
    pub fn release_all(&mut self) {
        self.ctx.release(self.charged);
        self.charged = 0;
    }
}

impl Drop for MemTracker {
    fn drop(&mut self) {
        self.ctx.release(self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_overflow_is_typed_and_rolled_back() {
        let ctx = Arc::new(QueryContext::new(Some(100), None, None, None, None, None));
        let mut t = MemTracker::new(ctx.clone(), "test-op");
        assert!(t.ensure(60).is_ok());
        let err = t.ensure(160).unwrap_err();
        match err {
            PlanError::ResourceExhausted {
                requested, budget, ..
            } => {
                assert_eq!(requested, 160);
                assert_eq!(budget, 100);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Rolled back: the successful 60 is still charged, peak saw 160.
        assert_eq!(t.charged(), 60);
        assert_eq!(ctx.mem_peak(), 160);
        // A budget error cancels the query for sibling workers.
        assert_eq!(ctx.check(), Err(PlanError::Cancelled));
    }

    #[test]
    fn tracker_drop_releases_charge() {
        let ctx = Arc::new(QueryContext::new(Some(100), None, None, None, None, None));
        {
            let mut t = MemTracker::new(ctx.clone(), "a");
            t.ensure(90).unwrap();
        }
        let mut t2 = MemTracker::new(ctx, "b");
        assert!(t2.ensure(90).is_ok(), "charge was released on drop");
    }

    #[test]
    fn cancel_token_trips_check() {
        let tok = CancelToken::new();
        let ctx = QueryContext::new(None, None, None, Some(tok.clone()), None, None);
        assert!(ctx.check().is_ok());
        tok.cancel();
        assert_eq!(ctx.check(), Err(PlanError::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_check() {
        let ctx = QueryContext::new(None, None, Some(Duration::ZERO), None, None, None);
        assert_eq!(ctx.check(), Err(PlanError::DeadlineExceeded));
        // Deadline expiry cancels, so later checks see Cancelled.
        assert_eq!(ctx.check(), Err(PlanError::Cancelled));
    }

    #[test]
    fn check_counts_are_published() {
        let ctx = QueryContext::new(None, None, None, None, None, None);
        for _ in 0..5 {
            ctx.check().unwrap();
        }
        let mut prof = Profiler::new(true);
        ctx.publish(&mut prof);
        assert_eq!(prof.counter("gov_cancel_checks"), Some(5));
    }
}
