//! Plan-level abstract interpretation: value-range, sortedness and
//! row-count facts over bound plans.
//!
//! The bind-time verifier ([`crate::check`]) walks the plan once; this
//! module supplies the *abstract domain* it threads through that walk:
//! per column a [`ColFact`] (value range, distinct bound, sortedness,
//! dictionary domain), per node a [`NodeFacts`] (columns + row-count
//! bound). Facts originate from fragment statistics harvested at table
//! build time ([`x100_storage::ColumnStats`]) and from enum dictionary
//! domains, are refined by `Select` predicates, and flow through
//! compiled expression programs via the per-primitive transfer
//! functions declared in the registry ([`x100_vector::FactTransfer`]).
//!
//! Sinks (consumed by the binder):
//! * **fetch-bounds proofs** — when every `#rowId` a `Fetch1Join` /
//!   `FetchNJoin` gathers is proven `< fragment_rows`, the op dispatches
//!   the `_unchecked` kernel twins (paper-style "on the metal" loops);
//! * **selection folding** — predicates proven always-true bind to a
//!   pass-through, always-false to an empty scan;
//! * **no-overflow proofs** — integer interval arithmetic widens to ⊤
//!   exactly when the result type could overflow, so a non-⊤ integer
//!   range doubles as an overflow-freedom certificate.
//!
//! The analysis is conservatively sound: any unknown primitive,
//! [`FactTransfer::Opaque`] kernel, pending insert delta, NaN-bearing
//! float fragment, or unmodeled operator widens to ⊤ and the engine
//! runs exactly as without the analyzer.

use crate::batch::OutField;
use crate::compile::{ExprProg, Instr, Src};
use crate::expr::{AggFunc, ArithOp, Expr};
use std::collections::HashMap;
use x100_storage::{ColumnStats, Table};
use x100_vector::{CmpOp, FactTransfer, PrimitiveRegistry, ScalarType, Value};

/// Largest integer magnitude exactly representable in an `f64`.
const F64_EXACT_INT: i64 = 1 << 53;

/// A closed, finite value interval. `Float` ranges never contain NaN or
/// infinities (sources reject them; arithmetic that could produce them
/// widens to ⊤ = `None` at the [`ColFact`] level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactRange {
    /// Integer interval `[lo, hi]` (also used for booleans as `[0,1]`).
    Int(i64, i64),
    /// Finite float interval `[lo, hi]`.
    Float(f64, f64),
}

impl FactRange {
    /// The integer endpoints, if this is an integer range.
    pub fn as_int(&self) -> Option<(i64, i64)> {
        match self {
            FactRange::Int(a, b) => Some((*a, *b)),
            FactRange::Float(..) => None,
        }
    }

    /// Endpoints as floats (exact for small integers, widened for big).
    fn as_float(&self) -> (f64, f64) {
        match *self {
            FactRange::Int(a, b) => (a as f64, b as f64),
            FactRange::Float(a, b) => (a, b),
        }
    }

    /// Whether `v` lies within the interval (integer ranges accept any
    /// numeric value that equals an integer in range).
    pub fn contains_value(&self, v: &Value) -> bool {
        match self {
            FactRange::Int(a, b) => {
                let x = match v {
                    Value::F64(f) => {
                        return f.is_finite() && *f >= *a as f64 && *f <= *b as f64;
                    }
                    other => other.as_i64(),
                };
                x >= *a && x <= *b
            }
            FactRange::Float(a, b) => {
                let x = v.as_f64();
                x.is_finite() && x >= *a && x <= *b
            }
        }
    }
}

/// Abstract state of one column at one plan node. `None` fields mean ⊤
/// (nothing known).
#[derive(Debug, Clone, PartialEq)]
pub struct ColFact {
    /// Value range, `None` = ⊤.
    pub range: Option<FactRange>,
    /// Whether the column is proven NULL-free. The engine has no NULL
    /// representation today, so this is always `true`; it is carried so
    /// the domain (and its consumers) survive a nullable future.
    pub non_null: bool,
    /// Upper bound on the number of distinct values, `None` = ⊤.
    pub distinct_max: Option<u64>,
    /// Whether values are non-decreasing in scan order.
    pub sorted: bool,
    /// For enum-code columns: the dictionary cardinality (the code
    /// domain is `[0, dict_card)`); `None` for plain columns.
    pub dict_card: Option<u32>,
}

impl ColFact {
    /// The ⊤ element: nothing known (except engine-wide NULL-freedom).
    pub fn top() -> ColFact {
        ColFact {
            range: None,
            non_null: true,
            distinct_max: None,
            sorted: false,
            dict_card: None,
        }
    }

    /// A fact carrying only a range (derived expression results).
    fn from_range(range: Option<FactRange>) -> ColFact {
        ColFact {
            range,
            ..ColFact::top()
        }
    }
}

/// Abstract state of one plan node's output.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFacts {
    /// One fact per output column, positionally aligned with the node's
    /// output fields.
    pub cols: Vec<ColFact>,
    /// Upper bound on the total number of rows the node emits, `None`
    /// = ⊤. (No lower bound is tracked: morsel-parallel workers each
    /// see a slice of the input, so a lower bound would be unsound
    /// per-worker.)
    pub rows_max: Option<u64>,
}

impl NodeFacts {
    /// ⊤ for an `n`-column node.
    pub fn top(n: usize) -> NodeFacts {
        NodeFacts {
            cols: vec![ColFact::top(); n],
            rows_max: None,
        }
    }
}

/// All facts inferred for one plan: per-node states plus the proof
/// sinks the binder consumes. Nodes are keyed by [`crate::plan::plan_key`]
/// (the plan node's address — stable because plans are checked and
/// bound behind the same immutable borrow).
#[derive(Debug, Clone, Default)]
pub struct PlanFacts {
    /// Per-node abstract state.
    pub nodes: HashMap<usize, NodeFacts>,
    /// Fetch-bounds proofs per `Fetch1Join`/`FetchNJoin` node: `true`
    /// when every gathered `#rowId` is proven within the fragment.
    pub fetch_proofs: HashMap<usize, bool>,
    /// Constant-fold verdicts per `Select` node: `Some(true)` =
    /// provably always-true (pass-through), `Some(false)` = provably
    /// always-false (empty result).
    pub select_verdicts: HashMap<usize, bool>,
    /// Human-readable per-node dump lines, in walk order (the
    /// `--explain-facts` payload).
    pub lines: Vec<String>,
}

impl PlanFacts {
    /// The inferred abstract state at `node` (a node of the plan this
    /// `PlanFacts` was computed for), if the walk recorded one.
    pub fn node(&self, node: &crate::plan::Plan) -> Option<&NodeFacts> {
        self.nodes.get(&crate::plan::plan_key(node))
    }

    /// The fetch-bounds verdict at a `Fetch1Join`/`FetchNJoin` node:
    /// `Some(true)` when every gathered `#rowId` is proven within the
    /// checkpointed fragment, `Some(false)` when the proof failed
    /// (delta rows, unknown range), `None` for non-fetch nodes.
    pub fn fetch_proved(&self, node: &crate::plan::Plan) -> Option<bool> {
        self.fetch_proofs.get(&crate::plan::plan_key(node)).copied()
    }

    /// The constant-fold verdict at a `Select` node, when its predicate
    /// was decided statically.
    pub fn select_verdict(&self, node: &crate::plan::Plan) -> Option<bool> {
        self.select_verdicts
            .get(&crate::plan::plan_key(node))
            .copied()
    }

    /// Render the per-node dump plus a summary footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        let proofs = self.fetch_proofs.values().filter(|p| **p).count();
        let folds = self.select_verdicts.len();
        out.push_str(&format!(
            "facts: {} nodes, {} fetch-bound proofs, {} select folds\n",
            self.nodes.len(),
            proofs,
            folds
        ));
        out
    }
}

/// The representable bounds of an integer scalar type (`None` for
/// non-integer types).
fn ty_bounds(ty: ScalarType) -> Option<(i64, i64)> {
    Some(match ty {
        ScalarType::I8 => (i8::MIN as i64, i8::MAX as i64),
        ScalarType::I16 => (i16::MIN as i64, i16::MAX as i64),
        ScalarType::I32 => (i32::MIN as i64, i32::MAX as i64),
        ScalarType::I64 => (i64::MIN, i64::MAX),
        ScalarType::U8 => (0, u8::MAX as i64),
        ScalarType::U16 => (0, u16::MAX as i64),
        ScalarType::U32 => (0, u32::MAX as i64),
        ScalarType::Bool => (0, 1),
        _ => return None,
    })
}

/// Lift a stats [`Value`] pair into a range (respecting the NaN/Str
/// `None` convention of [`ColumnStats`]).
fn range_from_stats(min: &Option<Value>, max: &Option<Value>) -> Option<FactRange> {
    match (min, max) {
        (Some(Value::F64(a)), Some(Value::F64(b))) => {
            if a.is_finite() && b.is_finite() {
                Some(FactRange::Float(*a, *b))
            } else {
                None
            }
        }
        (Some(a), Some(b)) => match (a, b) {
            (Value::Str(_), _) | (_, Value::Str(_)) => None,
            (Value::U64(x), Value::U64(y)) => {
                let lo = i64::try_from(*x).ok()?;
                let hi = i64::try_from(*y).ok()?;
                Some(FactRange::Int(lo, hi))
            }
            _ => Some(FactRange::Int(a.as_i64(), b.as_i64())),
        },
        _ => None,
    }
}

/// Source fact for one stored column of `t`, as the scan emits it.
///
/// `as_codes = true` reads the physical enum codes; `false` the decoded
/// values. Pending insert deltas widen plain-column ranges to ⊤
/// (fragment stats do not cover the delta), but *not* enum-code or
/// decoded-value facts: deltas store codes into the same dictionary, so
/// the dictionary domain stays a sound bound.
pub fn source_col_fact(t: &Table, ci: usize, as_codes: bool) -> ColFact {
    let sc = t.column(ci);
    match sc.dict() {
        Some(d) => {
            let card = d.cardinality() as u32;
            if as_codes {
                // Code domain: [0, card). Fragment stats may be tighter,
                // but only when no delta rows exist.
                let range = t
                    .column_stats(ci)
                    .as_ref()
                    .and_then(|s| range_from_stats(&s.min, &s.max))
                    .or(Some(FactRange::Int(0, card.saturating_sub(1) as i64)));
                ColFact {
                    range,
                    non_null: true,
                    distinct_max: Some(card as u64),
                    sorted: t.column_stats(ci).map(|s| s.sorted).unwrap_or(false),
                    dict_card: Some(card),
                }
            } else {
                // Decoded values are drawn from the dictionary; its
                // min/max bound every row, delta or not.
                let ds = ColumnStats::compute(d.values());
                ColFact {
                    range: range_from_stats(&ds.min, &ds.max),
                    non_null: true,
                    distinct_max: Some(card as u64),
                    sorted: false,
                    dict_card: None,
                }
            }
        }
        None => match t.column_stats(ci) {
            Some(s) => ColFact {
                range: range_from_stats(&s.min, &s.max),
                non_null: true,
                distinct_max: None,
                sorted: s.sorted,
                dict_card: None,
            },
            // Pending delta: fragment stats don't cover it — widen.
            None => ColFact::top(),
        },
    }
}

/// Saturating interval arithmetic for one integer operation; `None`
/// when the exact result could leave `[ty_lo, ty_hi]` (the no-overflow
/// proof fails) or overflow `i64` during computation.
fn int_interval(
    op: ArithOp,
    (la, lb): (i64, i64),
    (ra, rb): (i64, i64),
    ty: ScalarType,
) -> Option<FactRange> {
    let (tlo, thi) = ty_bounds(ty)?;
    let (lo, hi) = match op {
        ArithOp::Add => (la.checked_add(ra)?, lb.checked_add(rb)?),
        ArithOp::Sub => (la.checked_sub(rb)?, lb.checked_sub(ra)?),
        ArithOp::Mul => {
            let p = [
                la.checked_mul(ra)?,
                la.checked_mul(rb)?,
                lb.checked_mul(ra)?,
                lb.checked_mul(rb)?,
            ];
            (*p.iter().min()?, *p.iter().max()?)
        }
        // Integer division lowers to f64 in the compiler; unreachable
        // here, treat as ⊤ defensively.
        ArithOp::Div => return None,
    };
    if lo < tlo || hi > thi {
        return None; // could overflow the result type: widen to ⊤
    }
    Some(FactRange::Int(lo, hi))
}

/// Float interval arithmetic. Endpoint evaluation is sound for a single
/// rounded operation because round-to-nearest is monotone: for any x in
/// [la,lb], y in [ra,rb], fl(x∘y) lies between the fl-evaluated extreme
/// endpoint products. Results that could be non-finite widen to ⊤.
fn float_interval(op: ArithOp, (la, lb): (f64, f64), (ra, rb): (f64, f64)) -> Option<FactRange> {
    let (lo, hi) = match op {
        ArithOp::Add => (la + ra, lb + rb),
        ArithOp::Sub => (la - rb, lb - ra),
        ArithOp::Mul => {
            let p = [la * ra, la * rb, lb * ra, lb * rb];
            let lo = p.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        }
        ArithOp::Div => {
            if ra <= 0.0 && rb >= 0.0 {
                return None; // divisor interval contains zero
            }
            let p = [la / ra, la / rb, lb / ra, lb / rb];
            let lo = p.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        }
    };
    if lo.is_finite() && hi.is_finite() {
        Some(FactRange::Float(lo, hi))
    } else {
        None
    }
}

/// Interval transfer for a binary arithmetic instruction in type `ty`.
fn arith_range(
    op: ArithOp,
    ty: ScalarType,
    l: Option<FactRange>,
    r: Option<FactRange>,
) -> Option<FactRange> {
    let (l, r) = (l?, r?);
    if ty == ScalarType::F64 {
        float_interval(op, l.as_float(), r.as_float())
    } else {
        int_interval(op, l.as_int()?, r.as_int()?, ty)
    }
}

/// Comparison fold: `Some(Int(1,1))` when provably always true over the
/// operand ranges, `Some(Int(0,0))` when provably always false, else
/// the boolean domain `[0,1]`.
fn cmp_range(op: CmpOp, l: Option<FactRange>, r: Option<FactRange>) -> FactRange {
    let bool_top = FactRange::Int(0, 1);
    let (Some(l), Some(r)) = (l, r) else {
        return bool_top;
    };
    // Compare in float space when either side is float (exact when both
    // sides stay within 2^53, which integer stats-derived ranges do for
    // all realistic data; larger values just fail to fold).
    let exact = |x: f64| x.abs() <= F64_EXACT_INT as f64;
    let ((la, lb), (ra, rb)) = match (l, r) {
        (FactRange::Int(a, b), FactRange::Int(c, d)) => {
            ((a as f64, b as f64), (c as f64, d as f64))
        }
        _ => {
            let (la, lb) = l.as_float();
            let (ra, rb) = r.as_float();
            if !(exact(la) && exact(lb) && exact(ra) && exact(rb))
                && matches!(l, FactRange::Int(..)) != matches!(r, FactRange::Int(..))
            {
                return bool_top; // mixed int/float beyond exact f64 range
            }
            ((la, lb), (ra, rb))
        }
    };
    let always = |b: bool| {
        if b {
            FactRange::Int(1, 1)
        } else {
            FactRange::Int(0, 0)
        }
    };
    match op {
        CmpOp::Lt if lb < ra => always(true),
        CmpOp::Lt if la >= rb => always(false),
        CmpOp::Le if lb <= ra => always(true),
        CmpOp::Le if la > rb => always(false),
        CmpOp::Gt if la > rb => always(true),
        CmpOp::Gt if lb <= ra => always(false),
        CmpOp::Ge if la >= rb => always(true),
        CmpOp::Ge if lb < ra => always(false),
        CmpOp::Eq if la == lb && ra == rb && la == ra => always(true),
        CmpOp::Eq if lb < ra || la > rb => always(false),
        CmpOp::Ne if lb < ra || la > rb => always(true),
        CmpOp::Ne if la == lb && ra == rb && la == ra => always(false),
        _ => bool_top,
    }
}

/// Range of a literal.
fn value_range(v: &Value) -> Option<FactRange> {
    Some(match v {
        Value::F64(x) => {
            if !x.is_finite() {
                return None;
            }
            FactRange::Float(*x, *x)
        }
        Value::Bool(b) => FactRange::Int(*b as i64, *b as i64),
        Value::Str(_) => return None,
        Value::U64(x) => {
            let v = i64::try_from(*x).ok()?;
            FactRange::Int(v, v)
        }
        other => {
            let v = other.as_i64();
            FactRange::Int(v, v)
        }
    })
}

/// Cast transfer: the input range carries to the target type. Integer →
/// `F64` is exact only within ±2^53; bool → numeric keeps `[0,1]`.
fn cast_range(to: ScalarType, r: Option<FactRange>) -> Option<FactRange> {
    let r = r?;
    match (r, to) {
        (FactRange::Int(a, b), ScalarType::F64) => {
            if a.abs() <= F64_EXACT_INT && b.abs() <= F64_EXACT_INT {
                Some(FactRange::Float(a as f64, b as f64))
            } else {
                None
            }
        }
        (FactRange::Int(..), _) => Some(r),
        (FactRange::Float(..), ScalarType::F64) => Some(r),
        // Float → integer casts don't exist in the compiler today.
        (FactRange::Float(..), _) => None,
    }
}

/// Abstract-interpret a compiled expression program over the input
/// column facts, returning the fact of the program's result.
///
/// Every instruction is gated on its registry entry: an unknown
/// signature or a [`FactTransfer::Opaque`] transfer yields ⊤ for that
/// register (conservative soundness), and the interpretation continues
/// — downstream instructions see `None` operands and stay ⊤.
pub fn eval_prog(prog: &ExprProg, cols: &[ColFact], reg: &PrimitiveRegistry) -> ColFact {
    let nregs = prog.reg_types().len();
    let mut regs: Vec<Option<FactRange>> = vec![None; nregs];
    let col_range = |s: Src, regs: &[Option<FactRange>]| -> Option<FactRange> {
        match s {
            Src::Col(i) => cols.get(i as usize).and_then(|c| c.range),
            Src::Reg(i) => regs.get(i as usize).copied().flatten(),
        }
    };
    for (instr, sig) in prog.instr_list() {
        let modeled = reg
            .get(sig)
            .map(|d| d.info.transfer != FactTransfer::Opaque)
            .unwrap_or(false);
        let (dst, range) = if !modeled {
            let dst = match instr {
                Instr::ArithCC { dst, .. }
                | Instr::ArithCV { dst, .. }
                | Instr::ArithVC { dst, .. }
                | Instr::CmpCC { dst, .. }
                | Instr::CmpCV { dst, .. }
                | Instr::StrEqCV { dst, .. }
                | Instr::And { dst, .. }
                | Instr::Or { dst, .. }
                | Instr::Not { dst, .. }
                | Instr::Cast { dst, .. }
                | Instr::Fill { dst, .. }
                | Instr::FusedSubValMul { dst, .. }
                | Instr::FusedAddValMul { dst, .. }
                | Instr::YearOf { dst, .. }
                | Instr::StrContainsCV { dst, .. } => *dst,
            };
            (dst, None)
        } else {
            match instr {
                Instr::ArithCC { op, ty, l, r, dst } => (
                    *dst,
                    arith_range(*op, *ty, col_range(*l, &regs), col_range(*r, &regs)),
                ),
                Instr::ArithCV { op, ty, l, v, dst } => (
                    *dst,
                    arith_range(*op, *ty, col_range(*l, &regs), value_range(v)),
                ),
                Instr::ArithVC { op, ty, v, r, dst } => (
                    *dst,
                    arith_range(*op, *ty, value_range(v), col_range(*r, &regs)),
                ),
                Instr::CmpCC { op, l, r, dst, .. } => (
                    *dst,
                    Some(cmp_range(*op, col_range(*l, &regs), col_range(*r, &regs))),
                ),
                Instr::CmpCV { op, l, v, dst, .. } => (
                    *dst,
                    Some(cmp_range(*op, col_range(*l, &regs), value_range(v))),
                ),
                Instr::StrEqCV { dst, .. } | Instr::StrContainsCV { dst, .. } => {
                    (*dst, Some(FactRange::Int(0, 1)))
                }
                Instr::And { l, r, dst } => {
                    let f = |s: Src| match col_range(s, &regs) {
                        Some(FactRange::Int(a, b)) => (a.clamp(0, 1), b.clamp(0, 1)),
                        _ => (0, 1),
                    };
                    let ((la, lb), (ra, rb)) = (f(*l), f(*r));
                    (*dst, Some(FactRange::Int(la.min(ra), lb.min(rb))))
                }
                Instr::Or { l, r, dst } => {
                    let f = |s: Src| match col_range(s, &regs) {
                        Some(FactRange::Int(a, b)) => (a.clamp(0, 1), b.clamp(0, 1)),
                        _ => (0, 1),
                    };
                    let ((la, lb), (ra, rb)) = (f(*l), f(*r));
                    (*dst, Some(FactRange::Int(la.max(ra), lb.max(rb))))
                }
                Instr::Not { s, dst } => {
                    let r = match col_range(*s, &regs) {
                        Some(FactRange::Int(a, b)) => {
                            FactRange::Int(1 - b.clamp(0, 1), 1 - a.clamp(0, 1))
                        }
                        _ => FactRange::Int(0, 1),
                    };
                    (*dst, Some(r))
                }
                Instr::Cast { to, s, dst, .. } => (*dst, cast_range(*to, col_range(*s, &regs))),
                Instr::Fill { v, dst } => (*dst, value_range(v)),
                Instr::FusedSubValMul { v, a, b, dst } => {
                    let inner = arith_range(
                        ArithOp::Sub,
                        ScalarType::F64,
                        value_range(&Value::F64(*v)),
                        col_range(*a, &regs),
                    );
                    (
                        *dst,
                        arith_range(ArithOp::Mul, ScalarType::F64, inner, col_range(*b, &regs)),
                    )
                }
                Instr::FusedAddValMul { v, a, b, dst } => {
                    let inner = arith_range(
                        ArithOp::Add,
                        ScalarType::F64,
                        value_range(&Value::F64(*v)),
                        col_range(*a, &regs),
                    );
                    (
                        *dst,
                        arith_range(ArithOp::Mul, ScalarType::F64, inner, col_range(*b, &regs)),
                    )
                }
                Instr::YearOf { s, dst } => {
                    // year() is monotone in days-since-epoch: map endpoints.
                    let r = col_range(*s, &regs).and_then(|r| {
                        let (a, b) = r.as_int()?;
                        let (a, b) = (i32::try_from(a).ok()?, i32::try_from(b).ok()?);
                        let lo = x100_vector::date::from_days(a).0 as i64;
                        let hi = x100_vector::date::from_days(b).0 as i64;
                        Some(FactRange::Int(lo, hi))
                    });
                    (*dst, r)
                }
            }
        };
        if let Some(slot) = regs.get_mut(dst as usize) {
            *slot = range;
        }
    }
    match prog.result_src() {
        Src::Col(i) => cols.get(i as usize).cloned().unwrap_or_else(ColFact::top),
        Src::Reg(i) => ColFact::from_range(regs.get(i as usize).copied().flatten()),
    }
}

/// Extract `col ⊙ lit` (flipping `lit ⊙ col`) from one conjunct.
fn conjunct_parts(e: &Expr) -> Option<(&str, CmpOp, &Value)> {
    let Expr::Cmp(op, l, r) = e else { return None };
    match (l.as_ref(), r.as_ref()) {
        (Expr::Col(c), Expr::Lit(v)) => Some((c.as_str(), *op, v)),
        (Expr::Lit(v), Expr::Col(c)) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            Some((c.as_str(), flipped, v))
        }
        _ => None,
    }
}

fn flatten_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::And(l, r) => {
            flatten_conjuncts(l, out);
            flatten_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

/// Refine column facts by the `col ⊙ literal` conjuncts of a selection
/// predicate (the rows that survive satisfy every conjunct).
///
/// Integer columns may refine starting from their type bounds even when
/// the current range is ⊤; float columns refine only when a finite
/// range is already known (fragment stats reject non-finite data, so a
/// known range certifies the column is NaN/∞-free — without that, a
/// `x < 5.0` conjunct says nothing about NaN rows).
pub fn refine_with_pred(pred: &Expr, fields: &[OutField], nf: &mut NodeFacts) {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(pred, &mut conjuncts);
    for c in conjuncts {
        let Some((name, op, lit)) = conjunct_parts(c) else {
            continue;
        };
        let Some(ci) = fields.iter().position(|f| f.name == name) else {
            continue;
        };
        let ty = fields[ci].ty;
        let Some(fact) = nf.cols.get_mut(ci) else {
            continue;
        };
        if ty == ScalarType::F64 {
            let Some(FactRange::Float(mut lo, mut hi)) = fact.range else {
                continue;
            };
            let v = lit.as_f64();
            if !v.is_finite() {
                continue;
            }
            match op {
                CmpOp::Lt | CmpOp::Le => hi = hi.min(v),
                CmpOp::Gt | CmpOp::Ge => lo = lo.max(v),
                CmpOp::Eq => {
                    lo = v.max(lo);
                    hi = v.min(hi);
                }
                CmpOp::Ne => continue,
            }
            if lo <= hi {
                fact.range = Some(FactRange::Float(lo, hi));
                if matches!(op, CmpOp::Eq) {
                    fact.distinct_max = Some(1);
                }
            }
        } else if let Some((tlo, thi)) = ty_bounds(ty) {
            // Exact integer literal required (a float literal against an
            // integer column would need careful rounding; skip).
            let v = match lit {
                Value::F64(_) | Value::Str(_) | Value::Bool(_) => continue,
                Value::U64(x) => match i64::try_from(*x) {
                    Ok(v) => v,
                    Err(_) => continue,
                },
                other => other.as_i64(),
            };
            let (mut lo, mut hi) = fact.range.and_then(|r| r.as_int()).unwrap_or((tlo, thi));
            match op {
                CmpOp::Lt => hi = hi.min(v.saturating_sub(1)),
                CmpOp::Le => hi = hi.min(v),
                CmpOp::Gt => lo = lo.max(v.saturating_add(1)),
                CmpOp::Ge => lo = lo.max(v),
                CmpOp::Eq => {
                    lo = lo.max(v);
                    hi = hi.min(v);
                }
                CmpOp::Ne => continue,
            }
            if lo <= hi {
                fact.range = Some(FactRange::Int(lo, hi));
                if matches!(op, CmpOp::Eq) {
                    fact.distinct_max = Some(1);
                }
            }
        }
    }
}

/// Try to prove a selection predicate always-true / always-false over
/// the input facts. `None` = undecided.
pub fn pred_verdict(
    pred: &Expr,
    fields: &[OutField],
    nf: &NodeFacts,
    reg: &PrimitiveRegistry,
) -> Option<bool> {
    // A cheap throwaway compile (vector size 1, no fusion) — the checker
    // verifies the real program separately; this one only feeds the
    // abstract interpreter.
    let prog = ExprProg::compile(pred, fields, 1, false).ok()?;
    if prog.result_type() != ScalarType::Bool {
        return None;
    }
    let fact = eval_prog(&prog, &nf.cols, reg);
    match fact.range {
        Some(FactRange::Int(1, 1)) => Some(true),
        Some(FactRange::Int(0, 0)) => Some(false),
        _ => None,
    }
}

/// Transfer for one aggregate output: `func(arg)` grouped with at most
/// `rows_max` input rows per group (and at least one — empty groups are
/// never emitted).
pub fn agg_fact(func: AggFunc, arg: Option<&ColFact>, rows_max: Option<u64>) -> ColFact {
    match func {
        AggFunc::Count => {
            let hi = rows_max.and_then(|n| i64::try_from(n).ok());
            ColFact::from_range(hi.map(|h| FactRange::Int(0, h)))
        }
        AggFunc::Min | AggFunc::Max => ColFact::from_range(arg.and_then(|a| a.range)),
        AggFunc::Avg => {
            // The running sum is f64; the epilogue divides by count.
            // The mean of values in [lo,hi] lies in [lo,hi], but the
            // f64 accumulation drifts with the term count — widen by
            // the same n·ε cushion as SUM (⊤ when n is unbounded).
            let r = arg.and_then(|a| a.range).and_then(|r| {
                let (lo, hi) = r.as_float();
                widen_float_sum(lo, hi, rows_max?)
            });
            ColFact::from_range(r)
        }
        AggFunc::Sum => {
            let range = (|| {
                let r = arg.and_then(|a| a.range)?;
                let n = rows_max?;
                match r {
                    FactRange::Int(lo, hi) => {
                        let n = i64::try_from(n).ok()?;
                        // k ∈ [1, n] rows per group: endpoints are
                        // min(lo, lo·n) and max(hi, hi·n).
                        let lo2 = lo.min(lo.checked_mul(n)?);
                        let hi2 = hi.max(hi.checked_mul(n)?);
                        Some(FactRange::Int(lo2, hi2))
                    }
                    FactRange::Float(lo, hi) => {
                        let lo2 = lo.min(lo * n as f64);
                        let hi2 = hi.max(hi * n as f64);
                        widen_float_sum(lo2, hi2, n)
                    }
                }
            })();
            ColFact::from_range(range)
        }
    }
}

/// Widen a float interval for the rounding drift of an `n`-term
/// sequential sum: each of up to `terms` additions can round by at most
/// ε·|partial|, so the cushion `4·n·ε·max(|lo|,|hi|)` dominates the
/// accumulated error for all n below 2^50.
fn widen_float_sum(lo: f64, hi: f64, terms: u64) -> Option<FactRange> {
    let mag = lo.abs().max(hi.abs());
    let cushion = 4.0 * (terms as f64) * f64::EPSILON * mag;
    let (lo, hi) = (lo - cushion, hi + cushion);
    if lo.is_finite() && hi.is_finite() {
        Some(FactRange::Float(lo, hi))
    } else {
        None
    }
}

/// Format one node's facts as a single `--explain-facts` line.
pub fn render_line(path: &str, fields: &[OutField], nf: &NodeFacts) -> String {
    let mut s = format!("{path}: rows<=");
    match nf.rows_max {
        Some(n) => s.push_str(&n.to_string()),
        None => s.push('?'),
    }
    for (i, f) in fields.iter().enumerate() {
        let cf = nf.cols.get(i);
        s.push_str(&format!(" {}=", f.name));
        match cf.and_then(|c| c.range) {
            Some(FactRange::Int(a, b)) => s.push_str(&format!("[{a},{b}]")),
            Some(FactRange::Float(a, b)) => s.push_str(&format!("[{a},{b}]")),
            None => s.push('T'),
        }
        if let Some(c) = cf {
            if c.sorted {
                s.push_str("/s");
            }
            if let Some(d) = c.distinct_max {
                s.push_str(&format!("/d{d}"));
            }
            if let Some(d) = c.dict_card {
                s.push_str(&format!("/e{d}"));
            }
        }
    }
    s
}
