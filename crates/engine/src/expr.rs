//! The expression language of X100 algebra plans.
//!
//! Mirrors the paper's `Exp<*>` arguments: column references, literals,
//! arithmetic, comparisons, boolean connectives, and casts. Expressions
//! are *unbound* names here; [`crate::compile`] binds them against an
//! input dataflow shape and lowers them to vectorized primitive
//! programs.

use x100_vector::{CmpOp, ScalarType, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (f64 only).
    Div,
}

impl ArithOp {
    /// Signature fragment (`add`, `sub`, …).
    pub fn sig_name(self) -> &'static str {
        match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "sub",
            ArithOp::Mul => "mul",
            ArithOp::Div => "div",
        }
    }
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to an input column by name.
    Col(String),
    /// A literal constant.
    Lit(Value),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Widening / numeric cast, e.g. `dbl(count_order)` in Fig. 9.
    Cast(ScalarType, Box<Expr>),
    /// Calendar year of an `i32` days-since-epoch date
    /// (`EXTRACT(YEAR FROM …)` — used by Q7/Q8/Q9).
    Year(Box<Expr>),
    /// Substring containment on a string column
    /// (`col LIKE '%needle%'` — used by Q9/Q13/Q16/Q20).
    StrContains(Box<Expr>, String),
}

impl Expr {
    /// All column names referenced by this expression, in first-use order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Lit(_) => {}
            Expr::Arith(_, l, r) | Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) | Expr::Cast(_, e) | Expr::Year(e) | Expr::StrContains(e, _) => {
                e.collect_columns(out)
            }
        }
    }
}

/// Column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Literal constant.
pub fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}

/// `f64` literal.
pub fn lit_f64(v: f64) -> Expr {
    Expr::Lit(Value::F64(v))
}

/// `i64` literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::Lit(Value::I64(v))
}

/// `i32` literal (also used for dates as days-since-epoch).
pub fn lit_i32(v: i32) -> Expr {
    Expr::Lit(Value::I32(v))
}

/// String literal.
pub fn lit_str(v: impl Into<String>) -> Expr {
    Expr::Lit(Value::Str(v.into()))
}

/// Date literal `YYYY-MM-DD` → `i32` days.
pub fn lit_date(y: i32, m: u32, d: u32) -> Expr {
    Expr::Lit(Value::I32(x100_vector::date::to_days(y, m, d)))
}

/// `l + r`.
pub fn add(l: Expr, r: Expr) -> Expr {
    Expr::Arith(ArithOp::Add, Box::new(l), Box::new(r))
}

/// `l - r`.
pub fn sub(l: Expr, r: Expr) -> Expr {
    Expr::Arith(ArithOp::Sub, Box::new(l), Box::new(r))
}

/// `l * r`.
pub fn mul(l: Expr, r: Expr) -> Expr {
    Expr::Arith(ArithOp::Mul, Box::new(l), Box::new(r))
}

/// `l / r`.
pub fn div(l: Expr, r: Expr) -> Expr {
    Expr::Arith(ArithOp::Div, Box::new(l), Box::new(r))
}

/// Comparison.
pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
    Expr::Cmp(op, Box::new(l), Box::new(r))
}

/// `l < r`.
pub fn lt(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Lt, l, r)
}

/// `l <= r`.
pub fn le(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Le, l, r)
}

/// `l > r`.
pub fn gt(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Gt, l, r)
}

/// `l >= r`.
pub fn ge(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Ge, l, r)
}

/// `l == r`.
pub fn eq(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Eq, l, r)
}

/// `l != r`.
pub fn ne(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Ne, l, r)
}

/// `l AND r`.
pub fn and(l: Expr, r: Expr) -> Expr {
    Expr::And(Box::new(l), Box::new(r))
}

/// `l OR r`.
pub fn or(l: Expr, r: Expr) -> Expr {
    Expr::Or(Box::new(l), Box::new(r))
}

/// `NOT e`.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// Cast `e` to `ty`.
pub fn cast(ty: ScalarType, e: Expr) -> Expr {
    Expr::Cast(ty, Box::new(e))
}

/// `EXTRACT(YEAR FROM e)` for `i32` day-since-epoch dates.
pub fn year(e: Expr) -> Expr {
    Expr::Year(Box::new(e))
}

/// `e LIKE '%needle%'`.
pub fn contains(e: Expr, needle: impl Into<String>) -> Expr {
    Expr::StrContains(Box::new(e), needle.into())
}

/// Aggregate functions of the X100 `Aggr` operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// SUM(expr).
    Sum,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
    /// COUNT(*) (argument ignored).
    Count,
    /// AVG(expr) = SUM/COUNT epilogue.
    Avg,
}

/// One aggregate in an `Aggr` operator: `name = func(arg)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Output column name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` only for `Count`).
    pub arg: Option<Expr>,
}

impl AggExpr {
    /// `SUM(arg) AS name`.
    pub fn sum(name: impl Into<String>, arg: Expr) -> Self {
        AggExpr {
            name: name.into(),
            func: AggFunc::Sum,
            arg: Some(arg),
        }
    }

    /// `MIN(arg) AS name`.
    pub fn min(name: impl Into<String>, arg: Expr) -> Self {
        AggExpr {
            name: name.into(),
            func: AggFunc::Min,
            arg: Some(arg),
        }
    }

    /// `MAX(arg) AS name`.
    pub fn max(name: impl Into<String>, arg: Expr) -> Self {
        AggExpr {
            name: name.into(),
            func: AggFunc::Max,
            arg: Some(arg),
        }
    }

    /// `COUNT(*) AS name`.
    pub fn count(name: impl Into<String>) -> Self {
        AggExpr {
            name: name.into(),
            func: AggFunc::Count,
            arg: None,
        }
    }

    /// `AVG(arg) AS name`.
    pub fn avg(name: impl Into<String>, arg: Expr) -> Self {
        AggExpr {
            name: name.into(),
            func: AggFunc::Avg,
            arg: Some(arg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // Q1's discountprice: *( -(1.0, l_discount), l_extendedprice )
        let e = mul(sub(lit_f64(1.0), col("l_discount")), col("l_extendedprice"));
        assert_eq!(e.columns(), vec!["l_discount", "l_extendedprice"]);
    }

    #[test]
    fn columns_dedup_in_order() {
        let e = add(col("a"), mul(col("b"), col("a")));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn date_literal() {
        let e = lit_date(1998, 9, 2);
        match e {
            Expr::Lit(Value::I32(d)) => assert_eq!(x100_vector::date::format(d), "1998-09-02"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn agg_builders() {
        let a = AggExpr::sum("sum_qty", col("l_quantity"));
        assert_eq!(a.func, AggFunc::Sum);
        assert_eq!(a.name, "sum_qty");
        let c = AggExpr::count("count_order");
        assert!(c.arg.is_none());
    }
}
